#!/usr/bin/env sh
# Benchmark-regression gate: diff freshly produced bench artifacts
# against the baselines committed at HEAD and fail on regressions beyond
# a per-metric tolerance. POSIX sh + awk only (no jq on the runners).
#
# Baselines come from `git show HEAD:<file>` — the bench runs overwrite
# the working-tree files, so the committed copy *is* the baseline. A PR
# that regresses performance can only go green by committing the worse
# numbers as the new baseline, which puts the regression in the diff
# where reviewers see it.
#
# Gated metrics:
#   BENCH_serve.json       req_per_s per (mode, workers, shards, batch)
#                          config — higher is better; loose tolerance
#                          (default 15%) because throughput on shared
#                          runners is noisy — plus shed_fraction, gated
#                          with an absolute slack (default 0.05). Records
#                          predating the sharded schema carry no mode key
#                          and parse as mode="legacy", shards=1, batch=1;
#                          a legacy baseline facing a sharded-schema
#                          fresh artifact is skipped with a migration
#                          message (commit the fresh artifact to migrate)
#                          rather than failed on phantom-missing keys.
#                          Sharded-schema fresh records must carry
#                          p999_ms and shed_fraction — the open-loop
#                          harness always emits them, so their absence
#                          means a truncated artifact. PR CI reruns only
#                          one worker count (SERVE_SMOKE=1 writes
#                          BENCH_serve_smoke.json), so baseline records
#                          for worker counts absent from the fresh
#                          artifact are skipped, not failed; dropping a
#                          mode *within* a measured worker count still
#                          fails.
#   BENCH_estimators.json  nodes_expanded and block_reads per
#                          (network, algorithm) — lower is better; tight
#                          tolerance (default 2%) because both counters
#                          are deterministic. wall_ms, preprocess_ms and
#                          hierarchy_ms are recorded but never gated
#                          (wall clock is machine-dependent). CI reruns
#                          everything except the metro-100k long-haul
#                          section (BENCH_estimators_smoke.json), so
#                          baseline records for networks absent from the
#                          fresh artifact are skipped, not failed;
#                          dropping an algorithm *within* a measured
#                          network still fails.
#   BENCH_scaling.json     nodes_expanded, block_reads and physical_reads
#                          per (network, layout, workload, algorithm) —
#                          lower is better, same tight tolerance (all
#                          three counters are deterministic: seeded
#                          generator, deterministic pool). Records
#                          predating the workload field key as
#                          "regional". CI reruns only the 10k smoke
#                          scale (BENCH_scaling_smoke.json), so baseline
#                          records for scales absent from the fresh
#                          artifact are skipped, not failed — scale
#                          coverage is a run-mode choice; dropping an
#                          algorithm, layout or workload *within* a
#                          measured scale still fails.
# A (network, algorithm) or workers key present in the baseline but
# missing from the fresh artifact fails the gate: silently dropping a
# bench configuration must not read as a pass.
#
# Usage:
#   ci/compare-bench.sh                  # gate working-tree artifacts vs HEAD
#   ci/compare-bench.sh --self-test      # prove the gate trips on an
#                                        # injected >15% regression
#   ci/compare-bench.sh --serve BASE FRESH        # gate one pair directly
#   ci/compare-bench.sh --estimators BASE FRESH   # gate one pair directly
#   ci/compare-bench.sh --scaling BASE FRESH      # gate one pair directly
set -eu

SERVE_TOL=${SERVE_TOL:-0.15}
SHED_SLACK=${SHED_SLACK:-0.05}
EST_TOL=${EST_TOL:-0.02}

# --- serve: req_per_s + shed per (mode, workers, shards, batch) ------------
compare_serve() {
    base=$1 fresh=$2
    awk -v tol="$SERVE_TOL" -v shed_slack="$SHED_SLACK" '
        function str(key,    s) {
            if (match($0, "\"" key "\":\"[^\"]*\"")) {
                s = substr($0, RSTART, RLENGTH)
                sub("\"" key "\":\"", "", s)
                sub("\"$", "", s)
                return s
            }
            return ""
        }
        function num(key,    s) {
            if (match($0, "\"" key "\":[0-9.]+")) {
                s = substr($0, RSTART, RLENGTH)
                sub("\"" key "\":", "", s)
                return s + 0
            }
            return -1
        }
        # Split the configs array into one record per {...} chunk.
        {
            n = split($0, chunk, "{")
            for (i = 1; i <= n; i++) {
                if (chunk[i] !~ /"workers"/) continue
                $0 = chunk[i]
                w = num("workers"); r = num("req_per_s")
                if (w < 0 || r < 0) continue
                # Pre-sharding artifacts carry none of the mode keys.
                m = str("mode"); if (m == "") m = "legacy"
                sh = num("shards"); if (sh < 0) sh = 1
                b = num("batch"); if (b < 0) b = 1
                key = m "|w" w "|s" sh "|b" b
                if (NR == FNR) {
                    base_rps[key] = r
                    base_w[key] = w
                    base_shed[key] = num("shed_fraction")
                    if (m != "legacy") base_mode = 1
                } else {
                    fresh_rps[key] = r
                    fresh_shed[key] = num("shed_fraction")
                    seen[key] = 1
                    fresh_workers[w] = 1
                    if (m != "legacy") {
                        fresh_mode = 1
                        if (num("p999_ms") < 0 || num("shed_fraction") < 0) {
                            printf "FAIL serve: %s lacks p999_ms/shed_fraction (truncated artifact?)\n", key
                            schema_fail = 1
                        }
                    }
                }
            }
        }
        END {
            if (schema_fail) exit 1
            # A legacy (pre-sharding) baseline cannot gate a
            # sharded-schema run: no key overlaps, so every record
            # would read as dropped. Skip with a migration message.
            if (!base_mode && fresh_mode) {
                print "skip serve: baseline predates the sharded schema — commit the fresh artifact to migrate the baseline"
                exit 0
            }
            fail = 0
            for (k in base_rps) {
                # A worker count the fresh run did not measure at all
                # (SERVE_SMOKE runs one) is skipped; a dropped mode
                # within a measured worker count is a failure.
                if (!(base_w[k] in fresh_workers)) {
                    printf "skip serve: %s (worker count not measured by this run)\n", k
                    continue
                }
                if (!(k in seen)) {
                    printf "FAIL serve: %s missing from fresh artifact\n", k
                    fail = 1
                    continue
                }
                floor = base_rps[k] * (1 - tol)
                if (fresh_rps[k] < floor) {
                    printf "FAIL serve: %s req_per_s %.1f < %.1f (baseline %.1f, tol %.0f%%)\n", \
                        k, fresh_rps[k], floor, base_rps[k], tol * 100
                    fail = 1
                } else {
                    printf "ok   serve: %s req_per_s %.1f (baseline %.1f)\n", \
                        k, fresh_rps[k], base_rps[k]
                }
                if (base_shed[k] >= 0 && fresh_shed[k] >= 0 \
                    && fresh_shed[k] > base_shed[k] + shed_slack) {
                    printf "FAIL serve: %s shed_fraction %.4f > baseline %.4f + %.2f slack\n", \
                        k, fresh_shed[k], base_shed[k], shed_slack
                    fail = 1
                }
            }
            exit fail
        }
    ' "$base" "$fresh"
}

# --- estimators: nodes_expanded / block_reads per record, lower is better --
compare_estimators() {
    base=$1 fresh=$2
    awk -v tol="$EST_TOL" '
        function str(key,    s) {
            if (match($0, "\"" key "\":\"[^\"]*\"")) {
                s = substr($0, RSTART, RLENGTH)
                sub("\"" key "\":\"", "", s)
                sub("\"$", "", s)
                return s
            }
            return ""
        }
        function num(key,    s) {
            if (match($0, "\"" key "\":[0-9.]+")) {
                s = substr($0, RSTART, RLENGTH)
                sub("\"" key "\":", "", s)
                return s + 0
            }
            return -1
        }
        /"benchmark":"estimator_quality"/ {
            net = str("network")
            key = net "|" str("algorithm")
            ne = num("nodes_expanded"); br = num("block_reads")
            if (NR == FNR) { base_ne[key] = ne; base_br[key] = br; base_net[key] = net }
            else { fresh_ne[key] = ne; fresh_br[key] = br; seen[key] = 1; nets[net] = 1 }
        }
        END {
            fail = 0
            for (k in base_ne) {
                # A network the fresh run did not measure at all (smoke
                # mode skips the metro-100k long-haul section) is
                # skipped; a dropped algorithm within a measured network
                # is a failure.
                if (!(base_net[k] in nets)) {
                    printf "skip estimators: %s (network not measured by this run)\n", k
                    continue
                }
                if (!(k in seen)) {
                    printf "FAIL estimators: %s missing from fresh artifact\n", k
                    fail = 1
                    continue
                }
                bad = 0
                if (fresh_ne[k] > base_ne[k] * (1 + tol)) {
                    printf "FAIL estimators: %s nodes_expanded %d > baseline %d (tol %.0f%%)\n", \
                        k, fresh_ne[k], base_ne[k], tol * 100
                    bad = 1
                }
                if (fresh_br[k] > base_br[k] * (1 + tol)) {
                    printf "FAIL estimators: %s block_reads %d > baseline %d (tol %.0f%%)\n", \
                        k, fresh_br[k], base_br[k], tol * 100
                    bad = 1
                }
                if (bad) fail = 1
                else printf "ok   estimators: %s expanded %d (baseline %d), reads %d (baseline %d)\n", \
                    k, fresh_ne[k], base_ne[k], fresh_br[k], base_br[k]
            }
            exit fail
        }
    ' "$base" "$fresh"
}

# --- scaling: three deterministic counters per (network, layout, algo) -----
compare_scaling() {
    base=$1 fresh=$2
    awk -v tol="$EST_TOL" '
        function str(key,    s) {
            if (match($0, "\"" key "\":\"[^\"]*\"")) {
                s = substr($0, RSTART, RLENGTH)
                sub("\"" key "\":\"", "", s)
                sub("\"$", "", s)
                return s
            }
            return ""
        }
        function num(key,    s) {
            if (match($0, "\"" key "\":[0-9.]+")) {
                s = substr($0, RSTART, RLENGTH)
                sub("\"" key "\":", "", s)
                return s + 0
            }
            return -1
        }
        /"benchmark":"scaling"/ {
            net = str("network")
            # Artifacts predating the long-haul study carry no workload
            # field; their records are the regional workload.
            w = str("workload"); if (w == "") w = "regional"
            key = net "|" str("layout") "|" w "|" str("algorithm")
            ne = num("nodes_expanded"); br = num("block_reads"); pr = num("physical_reads")
            if (NR == FNR) { base_ne[key] = ne; base_br[key] = br; base_pr[key] = pr; base_net[key] = net }
            else { fresh_ne[key] = ne; fresh_br[key] = br; fresh_pr[key] = pr; seen[key] = 1; nets[net] = 1 }
        }
        END {
            fail = 0
            for (k in base_ne) {
                # A scale the fresh run did not measure at all (smoke
                # mode) is skipped; a dropped config within a measured
                # scale is a failure.
                if (!(base_net[k] in nets)) {
                    printf "skip scaling: %s (scale not measured by this run)\n", k
                    continue
                }
                if (!(k in seen)) {
                    printf "FAIL scaling: %s missing from fresh artifact\n", k
                    fail = 1
                    continue
                }
                bad = 0
                if (fresh_ne[k] > base_ne[k] * (1 + tol)) {
                    printf "FAIL scaling: %s nodes_expanded %d > baseline %d (tol %.0f%%)\n", \
                        k, fresh_ne[k], base_ne[k], tol * 100
                    bad = 1
                }
                if (fresh_br[k] > base_br[k] * (1 + tol)) {
                    printf "FAIL scaling: %s block_reads %d > baseline %d (tol %.0f%%)\n", \
                        k, fresh_br[k], base_br[k], tol * 100
                    bad = 1
                }
                if (fresh_pr[k] > base_pr[k] * (1 + tol)) {
                    printf "FAIL scaling: %s physical_reads %d > baseline %d (tol %.0f%%)\n", \
                        k, fresh_pr[k], base_pr[k], tol * 100
                    bad = 1
                }
                if (bad) fail = 1
                else printf "ok   scaling: %s expanded %d, reads %d, physical %d\n", \
                    k, fresh_ne[k], fresh_br[k], fresh_pr[k]
            }
            exit fail
        }
    ' "$base" "$fresh"
}

# --- first run: no committed baseline --------------------------------------
# When HEAD carries no baseline for a metric file there is nothing to
# gate against — but failing would keep the very first bench run red
# forever. Instead the fresh artifact is *recorded* as the would-be
# baseline: copied into the baseline location (a no-op in the main flow,
# where the fresh file already sits at that path) and reported, so
# committing it is all it takes to arm the gate for the next run.
record_baseline() {
    fresh=$1 target=$2
    if [ ! -f "$fresh" ]; then
        echo "FAIL: no committed baseline AND no fresh artifact for $target"
        return 1
    fi
    if [ "$fresh" != "$target" ]; then
        cp "$fresh" "$target"
    fi
    echo "RECORDED $target: no committed baseline — fresh artifact recorded; commit it to arm the gate"
}

self_test() {
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT
    status=0

    cat > "$tmp/serve_base.json" <<'EOF'
{"benchmark":"serve_throughput","configs":[{"workers":1,"req_per_s":200.00,"p50_ms":80.0},{"workers":4,"req_per_s":750.00,"p50_ms":18.0}]}
EOF
    cat > "$tmp/est_base.json" <<'EOF'
{"benchmark":"estimator_quality","network":"grid30","algorithm":"A* (version 3)","nodes_expanded":1399,"block_reads":66678,"wall_ms":5.0}
{"benchmark":"estimator_quality","network":"grid30","algorithm":"A* (version 4)","nodes_expanded":131,"block_reads":6294,"wall_ms":1.0}
{"benchmark":"estimator_quality","network":"metro-100k","algorithm":"A* (version 4)","nodes_expanded":28286,"block_reads":409898,"wall_ms":15618.0}
{"benchmark":"estimator_quality","network":"metro-100k","algorithm":"A* (version 5)","nodes_expanded":793,"block_reads":2421,"wall_ms":12.0}
EOF

    cat > "$tmp/scaling_base.json" <<'EOF'
{"benchmark":"scaling","network":"metro-10k","layout":"region","algorithm":"Dijkstra","nodes_expanded":856,"block_reads":13043,"physical_reads":106}
{"benchmark":"scaling","network":"metro-10k","layout":"region","workload":"long-haul","algorithm":"A* (version 5)","nodes_expanded":166,"block_reads":558,"physical_reads":0}
{"benchmark":"scaling","network":"metro-10k","layout":"shuffled","algorithm":"Dijkstra","nodes_expanded":856,"block_reads":13670,"physical_reads":733}
{"benchmark":"scaling","network":"metro-100k","layout":"region","algorithm":"Dijkstra","nodes_expanded":856,"block_reads":19181,"physical_reads":822}
EOF

    echo "self-test 1: identical artifacts must pass"
    compare_serve "$tmp/serve_base.json" "$tmp/serve_base.json" || status=1
    compare_estimators "$tmp/est_base.json" "$tmp/est_base.json" || status=1
    compare_scaling "$tmp/scaling_base.json" "$tmp/scaling_base.json" || status=1

    echo "self-test 2: a 30% throughput regression must fail"
    sed 's/"req_per_s":750.00/"req_per_s":525.00/' "$tmp/serve_base.json" \
        > "$tmp/serve_bad.json"
    if compare_serve "$tmp/serve_base.json" "$tmp/serve_bad.json"; then
        echo "self-test FAILED: regressed serve artifact passed the gate"
        status=1
    fi

    echo "self-test 3: a 30% nodes_expanded regression must fail"
    sed 's/"nodes_expanded":131/"nodes_expanded":171/' "$tmp/est_base.json" \
        > "$tmp/est_bad.json"
    if compare_estimators "$tmp/est_base.json" "$tmp/est_bad.json"; then
        echo "self-test FAILED: regressed estimator artifact passed the gate"
        status=1
    fi

    echo "self-test 4: a dropped bench configuration must fail (worker counts are a run-mode choice and skip)"
    sed 's/,{"workers":4[^}]*}//' "$tmp/serve_base.json" > "$tmp/serve_missing.json"
    compare_serve "$tmp/serve_base.json" "$tmp/serve_missing.json" || {
        echo "self-test FAILED: absent worker count (smoke run mode) failed the gate"
        status=1
    }
    grep -v '"A\* (version 4)"' "$tmp/est_base.json" > "$tmp/est_missing.json" || true
    if compare_estimators "$tmp/est_base.json" "$tmp/est_missing.json"; then
        echo "self-test FAILED: missing estimator record passed the gate"
        status=1
    fi

    echo "self-test 5: a scaling physical_reads regression must fail"
    sed 's/"physical_reads":106/"physical_reads":150/' "$tmp/scaling_base.json" \
        > "$tmp/scaling_bad.json"
    if compare_scaling "$tmp/scaling_base.json" "$tmp/scaling_bad.json"; then
        echo "self-test FAILED: regressed scaling artifact passed the gate"
        status=1
    fi

    echo "self-test 6: a smoke run must skip unmeasured scales but gate measured ones"
    grep -v '"metro-100k"' "$tmp/scaling_base.json" > "$tmp/scaling_smoke.json" || true
    compare_scaling "$tmp/scaling_base.json" "$tmp/scaling_smoke.json" || {
        echo "self-test FAILED: smoke artifact with full 10k coverage failed the gate"
        status=1
    }
    grep -v '"layout":"shuffled"' "$tmp/scaling_smoke.json" > "$tmp/scaling_dropped.json" || true
    if compare_scaling "$tmp/scaling_base.json" "$tmp/scaling_dropped.json"; then
        echo "self-test FAILED: dropped layout within a measured scale passed the gate"
        status=1
    fi

    echo "self-test 7: a missing committed baseline must record, not fail"
    rm -f "$tmp/recorded.json"
    if record_baseline "$tmp/serve_base.json" "$tmp/recorded.json" \
        && cmp -s "$tmp/serve_base.json" "$tmp/recorded.json"; then
        :
    else
        echo "self-test FAILED: first run did not record the baseline"
        status=1
    fi
    if record_baseline "$tmp/absent.json" "$tmp/absent_target.json"; then
        echo "self-test FAILED: no baseline and no artifact still passed"
        status=1
    fi

    echo "self-test 8: an estimator smoke run must skip unmeasured networks, and a v5 regression must fail"
    grep -v '"metro-100k"' "$tmp/est_base.json" > "$tmp/est_smoke.json" || true
    compare_estimators "$tmp/est_base.json" "$tmp/est_smoke.json" || {
        echo "self-test FAILED: estimator smoke artifact failed the gate"
        status=1
    }
    sed 's/"nodes_expanded":793/"nodes_expanded":1200/' "$tmp/est_base.json" \
        > "$tmp/est_v5_bad.json"
    if compare_estimators "$tmp/est_base.json" "$tmp/est_v5_bad.json"; then
        echo "self-test FAILED: regressed v5 long-haul record passed the gate"
        status=1
    fi

    echo "self-test 9: a dropped long-haul workload within a measured scale must fail"
    grep -v '"workload":"long-haul"' "$tmp/scaling_base.json" > "$tmp/scaling_no_lh.json" || true
    if compare_scaling "$tmp/scaling_base.json" "$tmp/scaling_no_lh.json"; then
        echo "self-test FAILED: dropped long-haul workload passed the gate"
        status=1
    fi

    echo "self-test 10: the sharded serve schema must gate per (mode, workers) and smoke-skip absent worker counts"
    cat > "$tmp/serve_sharded_base.json" <<'EOF'
{"benchmark":"serve_throughput","open_loop":true,"configs":[{"mode":"global","workers":4,"shards":1,"batch":1,"req_per_s":290.00,"p99_ms":710.0,"p999_ms":715.0,"shed_fraction":0.7900},{"mode":"sharded","workers":4,"shards":8,"batch":8,"req_per_s":2000.00,"p99_ms":2.3,"p999_ms":16.6,"shed_fraction":0.0000},{"mode":"global","workers":8,"shards":1,"batch":1,"req_per_s":550.00,"p99_ms":368.0,"p999_ms":386.0,"shed_fraction":0.6600},{"mode":"sharded","workers":8,"shards":8,"batch":8,"req_per_s":2000.00,"p99_ms":1.6,"p999_ms":16.7,"shed_fraction":0.0000}]}
EOF
    compare_serve "$tmp/serve_sharded_base.json" "$tmp/serve_sharded_base.json" || {
        echo "self-test FAILED: identical sharded serve artifacts failed the gate"
        status=1
    }
    sed 's/"req_per_s":2000.00,"p99_ms":2.3/"req_per_s":1400.00,"p99_ms":2.3/' \
        "$tmp/serve_sharded_base.json" > "$tmp/serve_sharded_bad.json"
    if compare_serve "$tmp/serve_sharded_base.json" "$tmp/serve_sharded_bad.json"; then
        echo "self-test FAILED: regressed sharded mode passed the gate"
        status=1
    fi
    sed 's/"shed_fraction":0.7900/"shed_fraction":0.9500/' \
        "$tmp/serve_sharded_base.json" > "$tmp/serve_shed_bad.json"
    if compare_serve "$tmp/serve_sharded_base.json" "$tmp/serve_shed_bad.json"; then
        echo "self-test FAILED: regressed shed_fraction passed the gate"
        status=1
    fi
    sed 's/,{"mode":"global","workers":8[^}]*},{"mode":"sharded","workers":8[^}]*}//' \
        "$tmp/serve_sharded_base.json" > "$tmp/serve_sharded_smoke.json"
    compare_serve "$tmp/serve_sharded_base.json" "$tmp/serve_sharded_smoke.json" || {
        echo "self-test FAILED: serve smoke artifact (workers=4 only) failed the gate"
        status=1
    }
    sed 's/,{"mode":"sharded","workers":4[^}]*}//' \
        "$tmp/serve_sharded_smoke.json" > "$tmp/serve_mode_dropped.json"
    if compare_serve "$tmp/serve_sharded_base.json" "$tmp/serve_mode_dropped.json"; then
        echo "self-test FAILED: dropped mode within a measured worker count passed the gate"
        status=1
    fi

    echo "self-test 11: a legacy baseline must skip (not fail) a sharded-schema run, and a truncated sharded record must fail"
    compare_serve "$tmp/serve_base.json" "$tmp/serve_sharded_base.json" || {
        echo "self-test FAILED: legacy baseline vs sharded fresh did not skip"
        status=1
    }
    sed 's/"p999_ms":16.6,//' "$tmp/serve_sharded_base.json" > "$tmp/serve_truncated.json"
    if compare_serve "$tmp/serve_sharded_base.json" "$tmp/serve_truncated.json"; then
        echo "self-test FAILED: sharded record without p999_ms passed the gate"
        status=1
    fi

    if [ "$status" -eq 0 ]; then
        echo "compare-bench self-test OK"
    else
        echo "compare-bench self-test FAILED"
    fi
    return "$status"
}

case "${1:-}" in
    --self-test)
        self_test
        ;;
    --serve)
        compare_serve "$2" "$3"
        ;;
    --estimators)
        compare_estimators "$2" "$3"
        ;;
    --scaling)
        compare_scaling "$2" "$3"
        ;;
    "")
        tmp=$(mktemp -d)
        trap 'rm -rf "$tmp"' EXIT
        status=0
        for f in BENCH_serve.json BENCH_estimators.json BENCH_scaling.json; do
            if ! git show "HEAD:$f" > "$tmp/$(basename "$f")" 2>/dev/null; then
                record_baseline "$f" "$f" || status=1
                continue
            fi
            # The scaling and estimator benches' CI smoke runs write
            # separate artifacts; gate against them when present (the
            # committed full artifacts stay the baselines).
            fresh="$f"
            if [ "$f" = "BENCH_serve.json" ] && [ -f BENCH_serve_smoke.json ]; then
                fresh=BENCH_serve_smoke.json
            fi
            if [ "$f" = "BENCH_scaling.json" ] && [ -f BENCH_scaling_smoke.json ]; then
                fresh=BENCH_scaling_smoke.json
            fi
            if [ "$f" = "BENCH_estimators.json" ] && [ -f BENCH_estimators_smoke.json ]; then
                fresh=BENCH_estimators_smoke.json
            fi
            if [ ! -f "$fresh" ]; then
                echo "FAIL: $fresh was not produced by the bench run"
                status=1
                continue
            fi
            case "$f" in
                BENCH_serve.json) compare_serve "$tmp/$f" "$fresh" || status=1 ;;
                BENCH_scaling.json) compare_scaling "$tmp/$f" "$fresh" || status=1 ;;
                *) compare_estimators "$tmp/$f" "$fresh" || status=1 ;;
            esac
        done
        if [ "$status" -ne 0 ]; then
            echo "benchmark-regression gate FAILED"
            exit 1
        fi
        echo "benchmark-regression gate OK"
        ;;
    *)
        echo "usage: $0 [--self-test | --serve BASE FRESH | --estimators BASE FRESH | --scaling BASE FRESH]" >&2
        exit 2
        ;;
esac
