#!/usr/bin/env sh
# Checks that every relative markdown link and every bare mention of a
# tracked .md / .rs / .sh file in the repo's markdown docs points at a
# file that exists, so cross-document references cannot rot.
#
# Usage: ci/check-doc-links.sh   (from the repo root)
set -eu

fail=0

# Markdown files to scan: the tracked docs (tooling config under .claude/
# is not part of the documentation set).
docs=$(git ls-files '*.md' | grep -v '^\.claude/')

for doc in $docs; do
    dir=$(dirname "$doc")

    # 1. Explicit markdown links [text](target) with a relative target.
    #    External links (scheme://, mailto:) and pure anchors are skipped;
    #    in-page anchors on files (FILE.md#section) are checked as FILE.md.
    targets=$(grep -o ']([^)#][^)]*)' "$doc" 2>/dev/null \
        | sed -e 's/^](\(.*\))$/\1/' -e 's/#.*$//' \
        | grep -v '^[a-z+]*://' | grep -v '^mailto:' | sort -u) || true
    for t in $targets; do
        [ -z "$t" ] && continue
        if [ ! -e "$dir/$t" ] && [ ! -e "$t" ]; then
            echo "BROKEN LINK: $doc -> $t"
            fail=1
        fi
    done

    # 2. Repo-style path mentions like `tests/observability.rs` in
    #    backticks must resolve from the repo root (bare module names
    #    such as `astar.rs` are prose shorthand and are not checked).
    mentions=$(grep -o '`[A-Za-z0-9_./-]*/[A-Za-z0-9_.-]*\.\(md\|rs\|sh\|toml\)`' "$doc" 2>/dev/null \
        | tr -d '`' | sort -u) || true
    for m in $mentions; do
        if [ ! -e "$m" ] && [ ! -e "$dir/$m" ]; then
            echo "BROKEN MENTION: $doc -> $m"
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "doc-link check FAILED"
    exit 1
fi
echo "doc-link check OK"
