#!/usr/bin/env sh
# Checks that every relative markdown link and every bare mention of a
# tracked .md / .rs / .sh file in the repo's markdown docs points at a
# file that exists, so cross-document references cannot rot.
#
# Usage: ci/check-doc-links.sh   (from the repo root)
set -eu

fail=0

# Markdown files to scan: the tracked docs (tooling config under .claude/
# is not part of the documentation set).
docs=$(git ls-files '*.md' | grep -v '^\.claude/')

for doc in $docs; do
    dir=$(dirname "$doc")

    # 1. Explicit markdown links [text](target) with a relative target.
    #    External links (scheme://, mailto:) and pure anchors are skipped;
    #    in-page anchors on files (FILE.md#section) are checked as FILE.md.
    targets=$(grep -o ']([^)#][^)]*)' "$doc" 2>/dev/null \
        | sed -e 's/^](\(.*\))$/\1/' -e 's/#.*$//' \
        | grep -v '^[a-z+]*://' | grep -v '^mailto:' | sort -u) || true
    for t in $targets; do
        [ -z "$t" ] && continue
        if [ ! -e "$dir/$t" ] && [ ! -e "$t" ]; then
            echo "BROKEN LINK: $doc -> $t"
            fail=1
        fi
    done

    # 2. Repo-style path mentions like `tests/observability.rs` or
    #    `.github/workflows/ci.yml` in backticks must resolve from the
    #    repo root (bare module names such as `astar.rs` are prose
    #    shorthand and are not checked). The extension list must cover
    #    everything the docs reference — when it lags the docs (as it
    #    once did for .yml and .json), stale references pass silently.
    mentions=$(grep -o '`[A-Za-z0-9_./-]*/[A-Za-z0-9_.-]*\.\(md\|rs\|sh\|toml\|yml\|yaml\|json\)`' "$doc" 2>/dev/null \
        | tr -d '`' | sort -u) || true
    for m in $mentions; do
        if [ ! -e "$m" ] && [ ! -e "$dir/$m" ]; then
            echo "BROKEN MENTION: $doc -> $m"
            fail=1
        fi
    done
done

# 3. Orphan check: every tracked top-level document must be reachable
#    from the rest of the documentation set. A doc nothing links to or
#    mentions is drift — either wire it in or delete it. (README.md is
#    the root; CHANGES.md is the append-only session log.)
for doc in $(git ls-files '*.md' | grep -v '/' ); do
    case "$doc" in
        # README is the root; CHANGES/ISSUE are the growth driver's
        # session log and task file, not part of the documentation set.
        README.md|CHANGES.md|ISSUE.md) continue ;;
    esac
    referenced=0
    for other in $docs; do
        [ "$other" = "$doc" ] && continue
        if grep -q "$doc" "$other" 2>/dev/null; then
            referenced=1
            break
        fi
    done
    if [ "$referenced" -eq 0 ]; then
        echo "ORPHAN DOC: $doc is referenced by no other document"
        fail=1
    fi
done

# 4. Rule-doc drift: every linter rule id declared in the atis-analyze
#    rule table must be documented in ANALYSIS.md, so adding a rule
#    without writing it up (or renaming one without updating the doc)
#    fails the docs gate, not a reviewer's memory.
#    Pass ids live as `pub const ID` in the pass modules (the rule
#    table references them by path, so the literal never appears in
#    rules.rs) — collect both sources.
if [ -f crates/analyze/src/rules.rs ]; then
    rule_ids=$(grep -o 'id: "[a-z-]*"' crates/analyze/src/rules.rs | sed 's/id: "\(.*\)"/\1/')
    pass_ids=$(grep -ho 'pub const ID: &str = "[a-z-]*"' crates/analyze/src/passes/*.rs 2>/dev/null \
        | sed 's/.*"\(.*\)"/\1/') || true
    for id in $rule_ids $pass_ids; do
        if ! grep -q "\`$id\`" ANALYSIS.md; then
            echo "UNDOCUMENTED RULE: $id is not documented in ANALYSIS.md"
            fail=1
        fi
    done
fi

if [ "$fail" -ne 0 ]; then
    echo "doc-link check FAILED"
    exit 1
fi
echo "doc-link check OK"
