//! # atis — single-pair path computation for traveller information systems
//!
//! A full reproduction of Shekhar, Kohli and Coyle, *Path Computation
//! Algorithms for Advanced Traveller Information System (ATIS)*, ICDE 1993.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`graph`] — road networks: grids, cost models, the synthetic
//!   Minneapolis map.
//! * [`storage`] — the paged relational storage engine (edge relation `S`,
//!   node relation `R`, hash/ISAM indexes, four join strategies) with
//!   block-level I/O cost accounting.
//! * [`algorithms`] — database-resident Iterative BFS, Dijkstra and A\*
//!   (versions 1–5), plus in-memory reference implementations.
//! * [`preprocess`] — offline landmark (ALT) preprocessing: landmark
//!   selection and per-epoch forward/backward distance tables, the fuel
//!   for A\* version 4's triangle-inequality bounds.
//! * [`hierarchy`] — contraction-hierarchy preprocessing: nested-
//!   dissection ordering over partition regions, witness-pruned shortcut
//!   overlay, and metric customization, the machinery behind A\*
//!   version 5's bidirectional upward search (see `HIERARCHY.md`).
//! * [`costmodel`] — the paper's algebraic cost models (Tables 1–3) and the
//!   query-optimizer simulation.
//! * [`obs`] — structured observability: iteration-level tracing, a
//!   metrics registry, and model-vs-measured reports (see
//!   `OBSERVABILITY.md`).
//! * [`core`] — the ATIS route-planning service: route computation,
//!   evaluation and display.
//! * [`serve`] — the concurrent query-serving layer: worker pool with
//!   admission control, epoch snapshots for parallel reads under live
//!   updates, and an invalidation-aware route cache (see `SERVING.md`).
//!
//! See `README.md` for a quickstart and `EXPERIMENTS.md` for the
//! reproduction of every table and figure in the paper.
//!
//! ## Example
//!
//! ```
//! use atis::core::RoutePlanner;
//! use atis::{CostModel, Grid, QueryKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 10x10 road grid with ~20% cost variance between blocks.
//! let grid = Grid::new(10, CostModel::TWENTY_PERCENT, 42)?;
//!
//! // The planner holds the map in the paper's relational storage engine;
//! // A* (version 3) is the default algorithm.
//! let planner = RoutePlanner::new(grid.graph())?;
//! let (start, dest) = grid.query_pair(QueryKind::SemiDiagonal);
//! let report = planner.plan(start, dest)?;
//!
//! let route = report.route.expect("grids are connected");
//! assert_eq!(route.source(), start);
//! assert_eq!(route.destination(), dest);
//! assert!(report.cost_units > 0.0); // simulated I/O, Table 4A units
//! # Ok(()) }
//! ```

pub use atis_algorithms as algorithms;
pub use atis_core as core;
pub use atis_costmodel as costmodel;
pub use atis_graph as graph;
pub use atis_hierarchy as hierarchy;
pub use atis_obs as obs;
pub use atis_preprocess as preprocess;
pub use atis_serve as serve;
pub use atis_storage as storage;

pub use atis_algorithms::{Algorithm, RunTrace};
pub use atis_core::{PlanReport, RoutePlanner};
pub use atis_graph::{CostModel, Graph, Grid, Minneapolis, NodeId, Path, QueryKind};

/// One-import convenience for applications:
/// `use atis::prelude::*;`.
pub mod prelude {
    pub use atis_algorithms::{AStarVersion, Algorithm, Database, Estimator, RunTrace};
    pub use atis_core::{
        evaluate_route, plan_alternatives, plan_trip, render_map, render_svg, turn_instructions,
        PlanReport, RoutePlanner,
    };
    pub use atis_graph::{
        CostModel, Graph, GraphBuilder, Grid, Minneapolis, NodeId, Path, Point, QueryKind,
        RadialCity,
    };
    pub use atis_hierarchy::{Hierarchy, HierarchyConfig};
    pub use atis_obs::{JsonlSink, MetricsRegistry, RingSink, TraceEvent, TraceSink};
    pub use atis_preprocess::{LandmarkSelection, LandmarkTables, PreprocessConfig};
    pub use atis_serve::{RouteAnswer, RouteService, ServeConfig, ServeError};
    pub use atis_storage::{CostParams, IoStats, JoinPolicy};
}
