//! `atis` — command-line route planning over interchange-format maps.
//!
//! ```text
//! atis export-map grid 20 1993 variance map.txt   # write a benchmark grid
//! atis export-map minneapolis map.txt             # write the synthetic map
//! atis info map.txt                               # network statistics
//! atis route map.txt 0 399                        # plan with A* (version 3)
//! atis route map.txt 3.5,2.0 28.0,30.5            # endpoints as map coordinates
//! atis route map.txt 0 399 --algorithm dijkstra --svg route.svg
//! atis compare map.txt 0 399                      # all three algorithms
//! ```

use atis::algorithms::{AStarVersion, Algorithm};
use atis::core::{
    evaluate_route, plan_alternatives, plan_trip, render_svg, turn_instructions, RoutePlanner,
    SvgOptions,
};
use atis::graph::{format, Minneapolis};
use atis::{CostModel, Graph, Grid, NodeId};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         atis export-map grid <k> <seed> <uniform|variance|skewed> <file>\n  \
         atis export-map radial <rings> <spokes> <seed> <file>\n  \
         atis export-map minneapolis <file>\n  \
         atis info <file>\n  \
         atis route <file> <from> <to> [--algorithm iterative|dijkstra|astar1|astar2|astar3] [--svg <out>]\n  \
         atis compare <file> <from> <to>\n  \
         atis trip <file> <stop> <stop> [<stop>...]\n  \
         atis alternatives <file> <from> <to> [<k>]"
    );
    ExitCode::from(2)
}

fn fail(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    format::read_graph(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Endpoints are either node ids (`42`) or map coordinates (`x,y`), which
/// snap to the nearest connected node.
fn parse_node(graph: &Graph, token: &str) -> Result<NodeId, String> {
    if let Some((xs, ys)) = token.split_once(',') {
        let x: f64 = xs
            .trim()
            .parse()
            .map_err(|_| format!("invalid x in {token:?}"))?;
        let y: f64 = ys
            .trim()
            .parse()
            .map_err(|_| format!("invalid y in {token:?}"))?;
        return graph
            .nearest_node(atis::graph::Point::new(x, y))
            .ok_or_else(|| "the map has no nodes".to_string());
    }
    let id: u32 = token
        .parse()
        .map_err(|_| format!("invalid node id {token:?}"))?;
    let node = NodeId(id);
    if graph.contains(node) {
        Ok(node)
    } else {
        Err(format!(
            "node {id} is outside the map (0..{})",
            graph.node_count()
        ))
    }
}

fn parse_algorithm(token: &str) -> Result<Algorithm, String> {
    match token {
        "iterative" => Ok(Algorithm::Iterative),
        "dijkstra" => Ok(Algorithm::Dijkstra),
        "astar1" => Ok(Algorithm::AStar(AStarVersion::V1)),
        "astar2" => Ok(Algorithm::AStar(AStarVersion::V2)),
        "astar3" => Ok(Algorithm::AStar(AStarVersion::V3)),
        other => Err(format!("unknown algorithm {other:?}")),
    }
}

fn export_map(args: &[String]) -> Result<(), String> {
    let (graph, file) = match args {
        [kind, file] if kind == "minneapolis" => (Minneapolis::paper().graph().clone(), file),
        [kind, rings, spokes, seed, file] if kind == "radial" => {
            let rings: usize = rings
                .parse()
                .map_err(|_| format!("invalid rings {rings:?}"))?;
            let spokes: usize = spokes
                .parse()
                .map_err(|_| format!("invalid spokes {spokes:?}"))?;
            let seed: u64 = seed.parse().map_err(|_| format!("invalid seed {seed:?}"))?;
            let city = atis::graph::RadialCity::new(rings, spokes, 0.1, seed)
                .map_err(|e| e.to_string())?;
            (city.graph().clone(), file)
        }
        [kind, k, seed, model, file] if kind == "grid" => {
            let k: usize = k.parse().map_err(|_| format!("invalid grid size {k:?}"))?;
            let seed: u64 = seed.parse().map_err(|_| format!("invalid seed {seed:?}"))?;
            let model = match model.as_str() {
                "uniform" => CostModel::Uniform,
                "variance" => CostModel::TWENTY_PERCENT,
                "skewed" => CostModel::Skewed,
                other => return Err(format!("unknown cost model {other:?}")),
            };
            let grid = Grid::new(k, model, seed).map_err(|e| e.to_string())?;
            (grid.graph().clone(), file)
        }
        _ => return Err("export-map: bad arguments (see usage)".into()),
    };
    std::fs::write(file, format::write_graph(&graph)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} directed edges)",
        file,
        graph.node_count(),
        graph.edge_count()
    );
    Ok(())
}

fn info(args: &[String]) -> Result<(), String> {
    let [file] = args else {
        return Err("info: expected one map file".into());
    };
    let graph = load(file)?;
    println!("map: {file}");
    println!("  nodes:          {}", graph.node_count());
    println!("  directed edges: {}", graph.edge_count());
    println!("  average degree: {:.2}", graph.average_degree());
    println!("  min edge cost:  {:.4}", graph.min_edge_cost());
    let one_way = graph
        .edges()
        .filter(|e| graph.edge_cost(e.to, e.from).is_none())
        .count();
    println!("  one-way edges:  {one_way}");
    Ok(())
}

fn route(args: &[String]) -> Result<(), String> {
    if args.len() < 3 {
        return Err("route: expected <file> <from> <to>".into());
    }
    let graph = load(&args[0])?;
    let s = parse_node(&graph, &args[1])?;
    let d = parse_node(&graph, &args[2])?;
    let mut algorithm = Algorithm::AStar(AStarVersion::V3);
    let mut svg_out: Option<&str> = None;
    let mut rest = args[3..].iter();
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--algorithm" => {
                let v = rest.next().ok_or("--algorithm needs a value")?;
                algorithm = parse_algorithm(v)?;
            }
            "--svg" => svg_out = Some(rest.next().ok_or("--svg needs a file")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }

    let planner = RoutePlanner::new(&graph)
        .map_err(|e| e.to_string())?
        .with_algorithm(algorithm);
    let report = planner.plan(s, d).map_err(|e| e.to_string())?;
    let Some(routed) = report.route.clone() else {
        return Err(format!("no route from {s} to {d}"));
    };
    println!(
        "{}: {} segments, cost {:.3}",
        report.algorithm,
        routed.len(),
        routed.cost
    );
    println!(
        "{} iterations, {:.1} simulated I/O units, {:.2} ms wall",
        report.iterations,
        report.cost_units,
        report.wall.as_secs_f64() * 1e3
    );
    let attrs = evaluate_route(&graph, &routed).map_err(|e| e.to_string())?;
    println!(
        "distance {:.2}, est. travel time {:.2}, mean occupancy {:.0}%",
        attrs.distance,
        attrs.travel_time,
        attrs.mean_occupancy * 100.0
    );
    println!("\nDirections:");
    for line in turn_instructions(&graph, &routed) {
        println!("  - {line}");
    }
    if let Some(out) = svg_out {
        let svg = render_svg(
            &graph,
            Some(&routed),
            &[('S', s), ('D', d)],
            &SvgOptions::default(),
        );
        std::fs::write(out, svg).map_err(|e| e.to_string())?;
        println!("\nSVG written to {out}");
    }
    Ok(())
}

fn compare(args: &[String]) -> Result<(), String> {
    let [file, from, to] = args else {
        return Err("compare: expected <file> <from> <to>".into());
    };
    let graph = load(file)?;
    let s = parse_node(&graph, from)?;
    let d = parse_node(&graph, to)?;
    let planner = RoutePlanner::new(&graph).map_err(|e| e.to_string())?;
    println!(
        "{:16} {:>10} {:>12} {:>10}",
        "algorithm", "iterations", "cost units", "path cost"
    );
    for report in planner
        .compare(&Algorithm::TABLE, s, d)
        .map_err(|e| e.to_string())?
    {
        println!(
            "{:16} {:>10} {:>12.1} {:>10.3}",
            report.algorithm,
            report.iterations,
            report.cost_units,
            report.route.as_ref().map_or(f64::NAN, |p| p.cost)
        );
    }
    Ok(())
}

fn trip(args: &[String]) -> Result<(), String> {
    if args.len() < 3 {
        return Err("trip: expected <file> and at least two stops".into());
    }
    let graph = load(&args[0])?;
    let stops: Vec<NodeId> = args[1..]
        .iter()
        .map(|t| parse_node(&graph, t))
        .collect::<Result<_, _>>()?;
    let planner = RoutePlanner::new(&graph).map_err(|e| e.to_string())?;
    let plan = plan_trip(&planner, &stops).map_err(|e| e.to_string())?;
    println!(
        "trip through {} stops: {} segments, cost {:.3}",
        stops.len(),
        plan.route.len(),
        plan.route.cost
    );
    for (i, leg) in plan.legs.iter().enumerate() {
        let route = leg
            .route
            .as_ref()
            .expect("plan_trip rejects unreachable legs");
        println!(
            "  leg {}: {} -> {}  cost {:.3}  ({} iterations, {:.1} I/O units)",
            i + 1,
            route.source(),
            route.destination(),
            route.cost,
            leg.iterations,
            leg.cost_units
        );
    }
    Ok(())
}

fn alternatives(args: &[String]) -> Result<(), String> {
    if !(3..=4).contains(&args.len()) {
        return Err("alternatives: expected <file> <from> <to> [<k>]".into());
    }
    let graph = load(&args[0])?;
    let s = parse_node(&graph, &args[1])?;
    let d = parse_node(&graph, &args[2])?;
    let k: usize = match args.get(3) {
        Some(t) => t.parse().map_err(|_| format!("invalid k {t:?}"))?,
        None => 3,
    };
    let routes = plan_alternatives(&graph, s, d, k, 0.4).map_err(|e| e.to_string())?;
    for (i, route) in routes.iter().enumerate() {
        let attrs = evaluate_route(&graph, route).map_err(|e| e.to_string())?;
        println!(
            "option {}: cost {:.3}, {} segments, est. travel time {:.2}",
            i + 1,
            route.cost,
            route.len(),
            attrs.travel_time
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage();
    };
    let result = match command.as_str() {
        "export-map" => export_map(rest),
        "info" => info(rest),
        "route" => route(rest),
        "compare" => compare(rest),
        "trip" => trip(rest),
        "alternatives" => alternatives(rest),
        "--help" | "-h" | "help" => return usage(),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}
