//! Hierarchy-level errors.

use std::fmt;

/// Errors raised while building or refreshing a contraction hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HierarchyError {
    /// The graph has no nodes, so there is nothing to order or contract.
    EmptyGraph,
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::EmptyGraph => {
                write!(f, "cannot build a hierarchy over an empty graph")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}
