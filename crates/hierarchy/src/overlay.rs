//! Shortcut overlay: elimination fill, metric customization, and
//! witness dormancy.
//!
//! The overlay follows the customizable-contraction-hierarchy split of
//! concerns (Strasser & Zeitz, PAPERS.md):
//!
//! * **Topology** ([`Core`]) depends only on the graph's *structure* and
//!   the contraction order — it is the chordal completion (elimination
//!   fill) of the graph under that order. Every up-arc can carry
//!   traffic in both directions, so one arc record prices both.
//! * **Metric** ([`Pricing`]) is a per-direction cost plus the middle
//!   node (`via`) recorded when a triangle relaxation shortened the
//!   arc; `via` is what lets a query unpack a shortcut back into real
//!   edges. Re-costing the graph re-runs only this pass — the fill is
//!   untouched, which is what makes UPDATE-driven customization cheap.
//! * **Dormancy** is a per-direction flag valid *only at the metric the
//!   witness searches ran against*: a direction is dormant when a
//!   bounded Dijkstra on the original graph found a strictly shorter
//!   path between its endpoints, so no shortest up-down path can need
//!   it. A customized (re-priced, not re-contracted) overlay clears
//!   dormancy down to "cost is finite" — correct for any metric, just
//!   slower, which is why the artifact reports itself degraded.
//!
//! The safety argument for skipping a dormant direction: suppose a
//! shortest up-down `s`–`t` path of cost `D` used direction `(a, b)`
//! with customized cost `c` while some real path `a` ⇝ `b` costs
//! `d < c`. Splicing that real path in place of the arc yields an
//! `s`–`t` walk of cost `D - c + d < D`, and every walk is bounded
//! below by the true distance — contradicting `D`'s optimality. The
//! comparison uses a relative margin (`d < c · (1 − 1e-9)`) so float
//! re-association noise between the two summation orders can never
//! dormant an arc that is actually tied.

use std::collections::BTreeSet;

use atis_graph::{Graph, NodeId, PartitionMap};
use atis_storage::IoStats;

use crate::order::nested_dissection_order;

/// Sentinel for "no middle node": the arc direction is an original edge.
pub(crate) const NO_VIA: u32 = u32::MAX;

/// Relative margin for the witness comparison; absorbs the float
/// re-association difference between a summed shortcut and a summed
/// path without ever dormanting a genuinely tied arc.
const WITNESS_MARGIN: f64 = 1e-9;

/// Metric-independent overlay topology: the contraction order and the
/// elimination fill stored as an up-arc CSR (tails in node-id order,
/// heads sorted by node id within each tail's range).
#[derive(Debug)]
pub(crate) struct Core {
    /// `rank[node] = rank`; higher rank = contracted later.
    pub(crate) rank: Vec<u32>,
    /// `order[rank] = node` (inverse of `rank`).
    pub(crate) order: Vec<u32>,
    /// CSR offsets into `heads`, indexed by tail node id, length `n + 1`.
    pub(crate) first: Vec<u32>,
    /// Up-arc heads (always higher-ranked than the tail), sorted by id.
    pub(crate) heads: Vec<u32>,
}

impl Core {
    /// Orders the graph and computes the elimination fill.
    ///
    /// The fill uses the quotient-graph (minimum-neighbour) rule: when
    /// node `m` is eliminated, instead of inserting the full clique over
    /// its higher-ranked neighbours, arcs are inserted only from the
    /// lowest-ranked up-neighbour to the others. The lowest neighbour is
    /// eliminated before the rest, and its own elimination completes the
    /// clique transitively — the resulting fill is identical (a unit
    /// test checks this against the textbook full-clique rule).
    pub(crate) fn build(graph: &Graph, partition: &PartitionMap) -> Core {
        let order = nested_dissection_order(graph, partition);
        let n = order.len();
        let mut rank = vec![0u32; n];
        for (r, &node) in order.iter().enumerate() {
            rank[node as usize] = r as u32;
        }

        // Up-neighbour sets keyed by tail node id. BTreeSet keeps both
        // membership checks and the final CSR emission deterministic.
        let mut up: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
        for e in graph.edges() {
            let (a, b) = (e.from.0, e.to.0);
            if a == b {
                continue;
            }
            if rank[a as usize] < rank[b as usize] {
                up[a as usize].insert(b);
            } else {
                up[b as usize].insert(a);
            }
        }

        let mut scratch: Vec<u32> = Vec::new();
        for &m in &order {
            let set = &up[m as usize];
            if set.len() < 2 {
                continue;
            }
            scratch.clear();
            scratch.extend(set.iter().copied());
            let &lowest = scratch
                .iter()
                .min_by_key(|&&v| rank[v as usize])
                .expect("set has at least two entries");
            for &v in &scratch {
                if v != lowest {
                    up[lowest as usize].insert(v);
                }
            }
        }

        let mut first = Vec::with_capacity(n + 1);
        let mut heads = Vec::new();
        first.push(0u32);
        for set in &up {
            heads.extend(set.iter().copied());
            first.push(heads.len() as u32);
        }
        Core {
            rank,
            order,
            first,
            heads,
        }
    }

    /// Number of overlay arcs (each prices both directions).
    pub(crate) fn arc_count(&self) -> usize {
        self.heads.len()
    }

    /// The CSR range of up-arc indexes out of `tail`.
    #[inline]
    pub(crate) fn range(&self, tail: u32) -> std::ops::Range<usize> {
        self.first[tail as usize] as usize..self.first[tail as usize + 1] as usize
    }

    /// Index of the up-arc `tail → head`, if present. `heads` is sorted
    /// within each tail's range, so this is a binary search.
    #[inline]
    pub(crate) fn arc_index(&self, tail: u32, head: u32) -> Option<usize> {
        let range = self.range(tail);
        self.heads[range.clone()]
            .binary_search(&head)
            .ok()
            .map(|i| range.start + i)
    }
}

/// Metric state for one overlay: per-direction customized costs, unpack
/// middles, and dormancy flags. `fwd` prices tail → head, `bwd` head →
/// tail.
#[derive(Debug)]
pub(crate) struct Pricing {
    pub(crate) fwd: Vec<f64>,
    pub(crate) bwd: Vec<f64>,
    pub(crate) fwd_via: Vec<u32>,
    pub(crate) bwd_via: Vec<u32>,
    pub(crate) fwd_live: Vec<bool>,
    pub(crate) bwd_live: Vec<bool>,
}

impl Pricing {
    /// Prices every arc direction against `graph`'s current costs via a
    /// bottom-up triangle pass, leaving every finite direction live.
    ///
    /// Arcs are initialised from the cheapest parallel original edge in
    /// each direction (`∞` when absent — one-way streets stay one-way in
    /// the overlay), then for each middle `m` in rank order every pair
    /// of up-arcs `(m→x, m→y)` relaxes the third side `x–y` of the
    /// triangle, which the chordal fill guarantees exists. Processing
    /// middles bottom-up makes each arc final before it is used as a
    /// side, so one pass suffices. `improvements` (tuple updates in the
    /// cost model) counts successful relaxations.
    pub(crate) fn customize(core: &Core, graph: &Graph, io: &mut IoStats) -> Pricing {
        let arcs = core.arc_count();
        let mut pricing = Pricing {
            fwd: vec![f64::INFINITY; arcs],
            bwd: vec![f64::INFINITY; arcs],
            fwd_via: vec![NO_VIA; arcs],
            bwd_via: vec![NO_VIA; arcs],
            fwd_live: vec![false; arcs],
            bwd_live: vec![false; arcs],
        };
        for tail in 0..core.rank.len() as u32 {
            for idx in core.range(tail) {
                let head = core.heads[idx];
                if let Some(c) = graph.edge_cost(NodeId(tail), NodeId(head)) {
                    pricing.fwd[idx] = c;
                }
                if let Some(c) = graph.edge_cost(NodeId(head), NodeId(tail)) {
                    pricing.bwd[idx] = c;
                }
            }
        }

        let mut improvements = 0u64;
        let mut fan: Vec<usize> = Vec::new();
        for &m in &core.order {
            let range = core.range(m);
            if range.len() < 2 {
                continue;
            }
            fan.clear();
            fan.extend(range);
            fan.sort_unstable_by_key(|&idx| core.rank[core.heads[idx] as usize]);
            for i in 0..fan.len() {
                for j in i + 1..fan.len() {
                    let (lo, hi) = (fan[i], fan[j]);
                    let (x, y) = (core.heads[lo], core.heads[hi]);
                    let idx = core
                        .arc_index(x, y)
                        .expect("chordal fill: both up-neighbours of m are adjacent");
                    // x → m → y uses the bwd side of (m, x) and the fwd
                    // side of (m, y); the reverse direction mirrors it.
                    let via_fwd = pricing.bwd[lo] + pricing.fwd[hi];
                    if via_fwd < pricing.fwd[idx] {
                        pricing.fwd[idx] = via_fwd;
                        pricing.fwd_via[idx] = m;
                        improvements += 1;
                    }
                    let via_bwd = pricing.bwd[hi] + pricing.fwd[lo];
                    if via_bwd < pricing.bwd[idx] {
                        pricing.bwd[idx] = via_bwd;
                        pricing.bwd_via[idx] = m;
                        improvements += 1;
                    }
                }
            }
        }

        for idx in 0..arcs {
            pricing.fwd_live[idx] = pricing.fwd[idx].is_finite();
            pricing.bwd_live[idx] = pricing.bwd[idx].is_finite();
        }
        io.update_tuples(improvements);
        pricing
    }

    /// Re-derives dormancy at the current metric: each live direction is
    /// checked by a bounded witness Dijkstra on the original graph and
    /// put to sleep when a strictly shorter real path exists (see the
    /// module docs for why that is safe). Charges one metered block read
    /// per settled witness node — the honesty that keeps preprocessing
    /// comparable to query I/O in HIERARCHY.md's cost tables.
    pub(crate) fn apply_witnesses(
        &mut self,
        core: &Core,
        graph: &Graph,
        settle_limit: usize,
        io: &mut IoStats,
    ) {
        let mut witness = WitnessSearch::new(graph.node_count());
        for tail in 0..core.rank.len() as u32 {
            for idx in core.range(tail) {
                let head = core.heads[idx];
                if self.fwd_live[idx]
                    && witness.shorter_path_exists(
                        graph,
                        tail,
                        head,
                        self.fwd[idx],
                        settle_limit,
                        io,
                    )
                {
                    self.fwd_live[idx] = false;
                }
                if self.bwd_live[idx]
                    && witness.shorter_path_exists(
                        graph,
                        head,
                        tail,
                        self.bwd[idx],
                        settle_limit,
                        io,
                    )
                {
                    self.bwd_live[idx] = false;
                }
            }
        }
    }
}

/// Reusable scratch state for witness searches; generation-stamped so a
/// million tiny Dijkstras share one allocation.
struct WitnessSearch {
    dist: Vec<f64>,
    generation: Vec<u64>,
    current: u64,
    heap: std::collections::BinaryHeap<WitnessEntry>,
}

/// Min-heap entry ordered by distance with node-id tie-break, matching
/// the deterministic heap idiom used across the algorithm crates.
#[derive(PartialEq)]
struct WitnessEntry {
    dist: f64,
    node: u32,
}

impl Eq for WitnessEntry {}

impl Ord for WitnessEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for WitnessEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl WitnessSearch {
    fn new(n: usize) -> WitnessSearch {
        WitnessSearch {
            dist: vec![f64::INFINITY; n],
            generation: vec![0; n],
            current: 0,
            heap: std::collections::BinaryHeap::new(),
        }
    }

    /// Whether a real path `source ⇝ target` strictly shorter than
    /// `bound` exists. Bounded two ways: keys at or beyond the bound are
    /// never expanded (the ball a witness can live in has radius
    /// `bound`), and at most `settle_limit` nodes are settled —
    /// exhausting the limit conservatively reports "no witness", which
    /// keeps the arc live and the overlay correct. One block read is
    /// charged per settled node.
    fn shorter_path_exists(
        &mut self,
        graph: &Graph,
        source: u32,
        target: u32,
        bound: f64,
        settle_limit: usize,
        io: &mut IoStats,
    ) -> bool {
        let cutoff = bound * (1.0 - WITNESS_MARGIN);
        self.current += 1;
        self.heap.clear();
        self.dist[source as usize] = 0.0;
        self.generation[source as usize] = self.current;
        self.heap.push(WitnessEntry {
            dist: 0.0,
            node: source,
        });
        let mut settled = 0usize;
        while let Some(WitnessEntry { dist, node }) = self.heap.pop() {
            if self.generation[node as usize] == self.current && dist > self.dist[node as usize] {
                continue; // lazy deletion
            }
            if dist >= cutoff {
                return false;
            }
            if node == target {
                return true;
            }
            settled += 1;
            io.read_blocks(1);
            if settled >= settle_limit {
                return false;
            }
            for e in graph.neighbors(NodeId(node)) {
                let next = dist + e.cost;
                let v = e.to.0 as usize;
                if self.generation[v] != self.current || next < self.dist[v] {
                    self.generation[v] = self.current;
                    self.dist[v] = next;
                    self.heap.push(WitnessEntry {
                        dist: next,
                        node: e.to.0,
                    });
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_graph::graph::graph_from_arcs;
    use atis_graph::{Metro, MetroSpec, SplitMix64};

    /// Textbook full-clique elimination fill, for cross-checking the
    /// quotient-graph rule used by `Core::build`.
    fn full_clique_fill(graph: &Graph, order: &[u32]) -> BTreeSet<(u32, u32)> {
        let n = order.len();
        let mut rank = vec![0u32; n];
        for (r, &node) in order.iter().enumerate() {
            rank[node as usize] = r as u32;
        }
        let mut up: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
        for e in graph.edges() {
            let (a, b) = (e.from.0, e.to.0);
            if a == b {
                continue;
            }
            if rank[a as usize] < rank[b as usize] {
                up[a as usize].insert(b);
            } else {
                up[b as usize].insert(a);
            }
        }
        for &m in order {
            let neighbours: Vec<u32> = up[m as usize].iter().copied().collect();
            for (i, &x) in neighbours.iter().enumerate() {
                for &y in &neighbours[i + 1..] {
                    if rank[x as usize] < rank[y as usize] {
                        up[x as usize].insert(y);
                    } else {
                        up[y as usize].insert(x);
                    }
                }
            }
        }
        let mut arcs = BTreeSet::new();
        for (tail, set) in up.iter().enumerate() {
            for &head in set {
                arcs.insert((tail as u32, head));
            }
        }
        arcs
    }

    fn random_graph(nodes: u32, arcs: usize, seed: u64) -> Graph {
        let mut rng = SplitMix64::new(seed);
        let mut list = Vec::with_capacity(arcs);
        for _ in 0..arcs {
            let u = rng.next_below(nodes as u64) as u32;
            let v = rng.next_below(nodes as u64) as u32;
            if u != v {
                let cost = 1.0 + rng.next_f64() * 9.0;
                list.push((u, v, cost));
                list.push((v, u, cost));
            }
        }
        graph_from_arcs(nodes as usize, &list).unwrap()
    }

    #[test]
    fn quotient_fill_matches_full_clique_fill() {
        for seed in 0..8 {
            let graph = random_graph(24, 40, seed);
            let partition = PartitionMap::build(&graph, 256);
            let core = Core::build(&graph, &partition);
            let expected = full_clique_fill(&graph, &core.order);
            let mut actual = BTreeSet::new();
            for tail in 0..graph.node_count() as u32 {
                for idx in core.range(tail) {
                    actual.insert((tail, core.heads[idx]));
                }
            }
            assert_eq!(actual, expected, "fill diverged for seed {seed}");
        }
    }

    #[test]
    fn triangle_pass_prices_arcs_at_true_distance_or_above() {
        // Customized cost can exceed the true distance (the up-down
        // restriction), but must never undercut it — undercutting would
        // produce impossible routes.
        let graph = random_graph(16, 30, 9);
        let partition = PartitionMap::build(&graph, 256);
        let core = Core::build(&graph, &partition);
        let mut io = IoStats::new();
        let pricing = Pricing::customize(&core, &graph, &mut io);
        for tail in 0..graph.node_count() as u32 {
            for idx in core.range(tail) {
                let head = core.heads[idx];
                for (cost, s, t) in [
                    (pricing.fwd[idx], tail, head),
                    (pricing.bwd[idx], head, tail),
                ] {
                    if cost.is_finite() {
                        let true_dist = reference_dist(&graph, s, t);
                        assert!(
                            cost >= true_dist - 1e-9,
                            "arc {s}->{t} priced {cost} below true distance {true_dist}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn witness_pass_keeps_original_shortest_edges_live() {
        let metro = Metro::new(MetroSpec::new(2, 2, 11)).unwrap();
        let graph = metro.graph();
        let partition = PartitionMap::build(graph, 256);
        let core = Core::build(graph, &partition);
        let mut io = IoStats::new();
        let mut pricing = Pricing::customize(&core, graph, &mut io);
        let before = pricing.fwd_live.iter().filter(|&&l| l).count()
            + pricing.bwd_live.iter().filter(|&&l| l).count();
        pricing.apply_witnesses(&core, graph, 64, &mut io);
        let after = pricing.fwd_live.iter().filter(|&&l| l).count()
            + pricing.bwd_live.iter().filter(|&&l| l).count();
        assert!(after < before, "witness pass should dormant some arcs");
        assert!(io.block_reads > 0, "witness settles must be metered");
        // A direction whose customized cost equals the true distance
        // must stay live — it may be the only way through.
        for tail in 0..graph.node_count() as u32 {
            for idx in core.range(tail) {
                let head = core.heads[idx];
                if pricing.fwd[idx].is_finite() && !pricing.fwd_live[idx] {
                    let true_dist = reference_dist(graph, tail, head);
                    assert!(
                        true_dist < pricing.fwd[idx],
                        "dormant arc {tail}->{head} has no shorter witness"
                    );
                }
            }
        }
    }

    /// Plain in-memory Dijkstra distance for test oracles.
    fn reference_dist(graph: &Graph, s: u32, t: u32) -> f64 {
        let n = graph.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[s as usize] = 0.0;
        heap.push(WitnessEntry { dist: 0.0, node: s });
        while let Some(WitnessEntry { dist: d, node }) = heap.pop() {
            if d > dist[node as usize] {
                continue;
            }
            for e in graph.neighbors(NodeId(node)) {
                let next = d + e.cost;
                if next < dist[e.to.0 as usize] {
                    dist[e.to.0 as usize] = next;
                    heap.push(WitnessEntry {
                        dist: next,
                        node: e.to.0,
                    });
                }
            }
        }
        dist[t as usize]
    }
}
