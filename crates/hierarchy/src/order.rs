//! Partition-seeded nested-dissection node ordering.
//!
//! Contraction order decides everything about a hierarchy's quality: the
//! overlay's fill-in (how many shortcut arcs the chordal completion
//! needs) and the depth of the upward searches both follow from it. The
//! classic recipe is nested dissection — recursively split the graph on
//! a small separator and rank the separator *above* both halves, so no
//! search path re-enters a part it has left.
//!
//! This ordering reuses the storage layout's [`PartitionMap`]: its
//! BFS-grown 256-node regions are exactly the "cities" of the metro
//! networks, so region structure is a free first dissection level that
//! is also aligned with the heap segments the overlay is priced against.
//! Within each region the interior (no incident cut edge) is ordered by
//! recursive coordinate bisection with a one-sided vertex separator;
//! boundary nodes — the endpoints of inter-region edges — are ordered
//! last by the same recursion over the boundary subgraph, where two
//! boundary nodes of one region count as adjacent (after the interior is
//! contracted away they will be).
//!
//! The order is a pure function of the graph (coordinates, edges,
//! partition), with all ties broken by node id — equal graphs yield
//! equal hierarchies, which the bit-determinism tests pin.

use atis_graph::{Graph, NodeId, PartitionMap};

/// Recursion cutoff: sets this small are ordered by id directly.
const LEAF_SIZE: usize = 8;

/// Computes the contraction order: `order[rank] = node id`, lowest rank
/// (contracted first) at index 0.
pub(crate) fn nested_dissection_order(graph: &Graph, partition: &PartitionMap) -> Vec<u32> {
    let n = graph.node_count();
    let mut boundary = vec![false; n];
    for e in graph.edges() {
        if partition.region_of(e.from) != partition.region_of(e.to) {
            boundary[e.from.index()] = true;
            boundary[e.to.index()] = true;
        }
    }

    let mut order = Vec::with_capacity(n);
    let mut ctx = Bisection::new(graph, partition, n);

    // Interiors first, region by region (regions are already
    // deterministic: PartitionMap seeds them at the lowest unassigned
    // id). Cross-region edges never leave an interior, so each call
    // works on an isolated subgraph.
    let mut interior: Vec<Vec<u32>> = vec![Vec::new(); partition.region_count()];
    for id in 0..n as u32 {
        if !boundary[id as usize] {
            interior[partition.region_of(NodeId(id)) as usize].push(id);
        }
    }
    for nodes in &interior {
        ctx.recurse(nodes, false, &mut order);
    }

    // Boundary last: these are the freeway endpoints every long query
    // climbs through, so they take the top ranks.
    let boundary_nodes: Vec<u32> = (0..n as u32).filter(|&id| boundary[id as usize]).collect();
    ctx.recurse(&boundary_nodes, true, &mut order);

    debug_assert_eq!(order.len(), n, "ordering must cover every node");
    order
}

/// Scratch state for the recursive coordinate bisection. The `mark`
/// array is generation-stamped so recursion levels share it without
/// clearing.
struct Bisection<'a> {
    graph: &'a Graph,
    partition: &'a PartitionMap,
    mark: Vec<u64>,
    generation: u64,
    /// Per-region count of marked nodes (for region-clique adjacency in
    /// the boundary phase).
    region_marked: Vec<u64>,
    region_generation: Vec<u64>,
}

impl<'a> Bisection<'a> {
    fn new(graph: &'a Graph, partition: &'a PartitionMap, n: usize) -> Self {
        Bisection {
            graph,
            partition,
            mark: vec![0; n],
            generation: 0,
            region_marked: vec![0; partition.region_count()],
            region_generation: vec![0; partition.region_count()],
        }
    }

    /// Appends the nodes of `set` to `order` in nested-dissection order.
    /// With `region_clique` set (the boundary phase), two nodes of one
    /// partition region are treated as adjacent even without a direct
    /// edge.
    fn recurse(&mut self, set: &[u32], region_clique: bool, order: &mut Vec<u32>) {
        if set.len() <= LEAF_SIZE {
            let mut leaf = set.to_vec();
            leaf.sort_unstable();
            order.extend_from_slice(&leaf);
            return;
        }

        // Split on the wider coordinate axis at the median.
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for &id in set {
            let p = self.graph.point(NodeId(id));
            min_x = min_x.min(p.x);
            max_x = max_x.max(p.x);
            min_y = min_y.min(p.y);
            max_y = max_y.max(p.y);
        }
        let use_x = (max_x - min_x) >= (max_y - min_y);
        let mut sorted = set.to_vec();
        sorted.sort_unstable_by(|&a, &b| {
            let (pa, pb) = (self.graph.point(NodeId(a)), self.graph.point(NodeId(b)));
            let (ka, kb) = if use_x { (pa.x, pb.x) } else { (pa.y, pb.y) };
            ka.total_cmp(&kb).then(a.cmp(&b))
        });
        let mid = sorted.len() / 2;
        let (left, right) = sorted.split_at(mid);

        // One-sided vertex separator: the left nodes adjacent to the
        // right side. Removing them disconnects left from right, so
        // ranking them above both halves keeps the dissection invariant.
        self.generation += 1;
        let generation = self.generation;
        for &id in right {
            self.mark[id as usize] = generation;
            if region_clique {
                let r = self.partition.region_of(NodeId(id)) as usize;
                if self.region_generation[r] != generation {
                    self.region_generation[r] = generation;
                    self.region_marked[r] = 0;
                }
                self.region_marked[r] += 1;
            }
        }
        let mut interior_left = Vec::with_capacity(left.len());
        let mut separator = Vec::new();
        for &id in left {
            let u = NodeId(id);
            let mut adjacent = self
                .graph
                .neighbors(u)
                .iter()
                .any(|e| self.mark[e.to.index()] == generation);
            if !adjacent && region_clique {
                let r = self.partition.region_of(u) as usize;
                adjacent = self.region_generation[r] == generation && self.region_marked[r] > 0;
            }
            if adjacent {
                separator.push(id);
            } else {
                interior_left.push(id);
            }
        }

        // Degenerate split (e.g. every left node touches the right):
        // fall back to ordering by id so the recursion always shrinks.
        if interior_left.is_empty() && right.len() == set.len() {
            let mut leaf = set.to_vec();
            leaf.sort_unstable();
            order.extend_from_slice(&leaf);
            return;
        }

        self.recurse(&interior_left, region_clique, order);
        self.recurse(right, region_clique, order);
        separator.sort_unstable();
        order.extend_from_slice(&separator);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_graph::{CostModel, Grid, Metro, MetroSpec};

    #[test]
    fn order_is_a_permutation() {
        let m = Metro::new(MetroSpec::new(3, 2, 1993)).unwrap();
        let p = PartitionMap::build(m.graph(), 256);
        let order = nested_dissection_order(m.graph(), &p);
        let mut seen = vec![false; m.graph().node_count()];
        for &id in &order {
            assert!(!seen[id as usize], "node {id} ranked twice");
            seen[id as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn order_is_deterministic() {
        let m = Metro::new(MetroSpec::new(2, 2, 7)).unwrap();
        let p = PartitionMap::build(m.graph(), 256);
        let a = nested_dissection_order(m.graph(), &p);
        let b = nested_dissection_order(m.graph(), &p);
        assert_eq!(a, b);
    }

    #[test]
    fn boundary_nodes_take_the_top_ranks() {
        let m = Metro::new(MetroSpec::new(3, 2, 1993)).unwrap();
        let g = m.graph();
        let p = PartitionMap::build(g, 256);
        let order = nested_dissection_order(g, &p);
        let mut boundary = vec![false; g.node_count()];
        for e in g.edges() {
            if p.region_of(e.from) != p.region_of(e.to) {
                boundary[e.from.index()] = true;
                boundary[e.to.index()] = true;
            }
        }
        let boundary_count = boundary.iter().filter(|&&b| b).count();
        assert!(boundary_count > 0);
        for &id in &order[g.node_count() - boundary_count..] {
            assert!(
                boundary[id as usize],
                "interior node {id} outranks the boundary"
            );
        }
    }

    #[test]
    fn grid_order_works_without_cut_edges() {
        // A single-region graph has no boundary; the whole order is one
        // interior dissection.
        let grid = Grid::new(8, CostModel::Uniform, 0).unwrap();
        let p = PartitionMap::build(grid.graph(), 256);
        let order = nested_dissection_order(grid.graph(), &p);
        assert_eq!(order.len(), grid.graph().node_count());
    }
}
