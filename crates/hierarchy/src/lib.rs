//! Contraction-hierarchy preprocessing for A* version 5.
//!
//! The flat algorithm ladder (v1–v4) tops out at goal-directed search
//! over the base relations: every query still touches a corridor of
//! nodes proportional to its length. This crate trades preprocessing
//! for query work the way the hierarchy literature does (see PAPERS.md):
//! contract nodes in a good order, record shortcuts over the contracted
//! middles, and answer queries with a *bidirectional upward* search
//! that only climbs ranks — on metro networks that means a few hundred
//! settles regardless of trip length, where v4 expands thousands.
//!
//! The build splits into three passes, and the split is the point:
//!
//! 1. **Ordering** (`order`): nested dissection seeded from the storage
//!    layer's [`PartitionMap`] regions — interiors first, the
//!    inter-region boundary last. Pure structure; no costs.
//! 2. **Contraction** (`overlay`): the elimination fill of the graph
//!    under that order, stored as an up-arc CSR. Pure structure too, so
//!    it survives every UPDATE.
//! 3. **Customization** (`overlay`): price every arc direction against
//!    the current costs via triangle relaxations, then (at build time)
//!    run bounded witness searches that put provably useless directions
//!    to sleep.
//!
//! [`Hierarchy`] carries the same staleness contract that
//! `LandmarkTables` established for v4, keyed by
//! [`Graph::cost_fingerprint`]: an UPDATE that raises costs can
//! [`Hierarchy::customized_for`] the overlay in one cheap pass (correct
//! for any metric but *degraded* — witness dormancy is cleared, so
//! queries scan more arcs), while a decrease triggers
//! [`Hierarchy::rebuild_for`], a full re-contraction that restores
//! dormancy. Either way a fingerprint mismatch means *stale*, and the
//! query layer refuses to serve stale-priced shortcuts — that refusal
//! is the typed `HierarchyUnavailable` degrade to v4/v3.
//!
//! All preprocessing is metered in block I/O ([`IoStats`]) so the
//! paper's cost-model lens extends to the build: HIERARCHY.md tabulates
//! what a hierarchy costs to construct and refresh in the same currency
//! queries are charged in.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod order;
mod overlay;

use std::sync::Arc;

use atis_graph::{Graph, NodeId, PartitionMap};
use atis_storage::block::BLOCK_SIZE;
use atis_storage::{EdgeTuple, FixedTuple, IoStats, NodeTuple};

pub use error::HierarchyError;

use overlay::{Core, Pricing, NO_VIA};

/// Bytes per overlay arc record: two endpoint ids (8), two directed
/// customized costs (16), two unpack middles (8), and two dormancy
/// words (16, block-aligned). Sets how many arcs fit a 4 KB block when
/// queries and preprocessing are charged for touching the overlay.
pub const ARC_TUPLE_SIZE: usize = 48;

/// Overlay arc records per 4 KB block (85).
const ARCS_PER_BLOCK: usize = BLOCK_SIZE / ARC_TUPLE_SIZE;

/// Build-time knobs for [`Hierarchy::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Region size handed to [`PartitionMap`] when the ordering seeds
    /// itself from partition regions.
    pub region_target: usize,
    /// Settle budget per witness search. Exhausting it conservatively
    /// keeps the arc live, so a small limit trades build time for a few
    /// extra live arcs — never correctness.
    pub witness_settle_limit: usize,
}

impl HierarchyConfig {
    /// The configuration used throughout the experiments: 256-node
    /// regions (the storage layer's block-aligned choice) and a 64-node
    /// witness budget.
    pub fn paper() -> HierarchyConfig {
        HierarchyConfig {
            region_target: 256,
            witness_settle_limit: 64,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::paper()
    }
}

/// One up-arc out of a node, as seen by the bidirectional upward
/// search. `fwd` prices tail → head travel, `bwd` head → tail; a
/// direction flagged dormant can be skipped without losing any shortest
/// path (see the `overlay` module docs for the witness argument).
#[derive(Debug, Clone, Copy)]
pub struct UpArc {
    /// The higher-ranked endpoint.
    pub head: NodeId,
    /// Customized cost tail → head (`∞` when that direction has no
    /// path through contracted middles — e.g. against a one-way).
    pub fwd: f64,
    /// Customized cost head → tail.
    pub bwd: f64,
    /// Whether the forward direction can appear on a shortest path.
    pub fwd_live: bool,
    /// Whether the backward direction can appear on a shortest path.
    pub bwd_live: bool,
}

/// A contraction hierarchy: contraction order, shortcut overlay, and
/// customized per-direction prices, stamped with the cost fingerprint
/// of the graph it was priced against.
///
/// Cloning is cheap (the topology and pricing are shared behind `Arc`),
/// which is what lets `EpochDb` snapshots carry the hierarchy the same
/// way they carry landmark tables.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    core: Arc<Core>,
    pricing: Arc<Pricing>,
    fingerprint: u64,
    config: HierarchyConfig,
    degraded: bool,
    build_io: IoStats,
}

impl Hierarchy {
    /// Orders, contracts, and customizes a hierarchy for `graph` at its
    /// current costs, with witness dormancy derived at this metric.
    ///
    /// Metered honestly: the build scans the node and edge relations
    /// once, charges one block read per witness settle, and writes the
    /// overlay out at [`ARC_TUPLE_SIZE`] bytes per arc. The total is
    /// available as [`Hierarchy::build_io`] and feeds HIERARCHY.md's
    /// preprocessing cost tables.
    pub fn build(graph: &Graph, config: HierarchyConfig) -> Result<Hierarchy, HierarchyError> {
        if graph.node_count() == 0 {
            return Err(HierarchyError::EmptyGraph);
        }
        let mut io = IoStats::new();
        // One sequential scan of R and S to learn structure and costs.
        io.read_blocks(relation_blocks(graph));

        let partition = PartitionMap::build(graph, config.region_target);
        let core = Core::build(graph, &partition);
        let mut pricing = Pricing::customize(&core, graph, &mut io);
        pricing.apply_witnesses(&core, graph, config.witness_settle_limit, &mut io);

        // Materialize the overlay relation.
        io.write_blocks(overlay_blocks(core.arc_count()));
        io.relations_created += 1;

        Ok(Hierarchy {
            core: Arc::new(core),
            pricing: Arc::new(pricing),
            fingerprint: graph.cost_fingerprint(),
            config,
            degraded: false,
            build_io: io,
        })
    }

    /// Re-prices the overlay against `graph`'s current costs *without*
    /// re-contracting: the elimination fill is metric-independent, so
    /// only the customization pass re-runs. The result is correct for
    /// any metric but **degraded** — witness dormancy was derived at
    /// the old costs and cannot be trusted, so it is cleared down to
    /// "the direction has a finite cost" and queries scan more arcs.
    ///
    /// This is the hierarchy's analogue of `LandmarkTables::patched_for`
    /// and the cheap arm of the UPDATE contract: customize when costs
    /// rise (rush hour), re-contract ([`Hierarchy::rebuild_for`]) when
    /// they fall and the dormancy is worth re-deriving.
    pub fn customized_for(&self, graph: &Graph) -> Hierarchy {
        let mut io = self.build_io;
        // Re-read current costs, rewrite the overlay's price columns.
        io.read_blocks(relation_blocks(graph));
        let pricing = Pricing::customize(&self.core, graph, &mut io);
        io.write_blocks(overlay_blocks(self.core.arc_count()));
        Hierarchy {
            core: Arc::clone(&self.core),
            pricing: Arc::new(pricing),
            fingerprint: graph.cost_fingerprint(),
            config: self.config,
            degraded: true,
            build_io: io,
        }
    }

    /// Rebuilds from scratch at `graph`'s current costs — fresh
    /// ordering, contraction, customization, and witness dormancy. The
    /// expensive arm of the UPDATE contract; clears the degraded flag.
    pub fn rebuild_for(&self, graph: &Graph) -> Result<Hierarchy, HierarchyError> {
        Hierarchy::build(graph, self.config)
    }

    /// Whether this hierarchy was priced against exactly the costs
    /// `graph` currently has. A stale hierarchy must not answer queries
    /// — its shortcuts embed old prices.
    pub fn is_current_for(&self, graph: &Graph) -> bool {
        self.fingerprint == graph.cost_fingerprint()
    }

    /// Whether witness dormancy has been cleared by a customization
    /// pass (queries stay exact but scan more arcs).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The cost fingerprint this hierarchy was priced at.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The configuration the hierarchy was built with.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// Cumulative block I/O spent building (and re-customizing) this
    /// artifact, in the same currency queries are charged in.
    pub fn build_io(&self) -> IoStats {
        self.build_io
    }

    /// Number of nodes the hierarchy covers.
    pub fn node_count(&self) -> usize {
        self.core.rank.len()
    }

    /// Number of overlay arcs (each prices both directions).
    pub fn arc_count(&self) -> usize {
        self.core.arc_count()
    }

    /// Contraction rank of `u` (0 = contracted first).
    #[inline]
    pub fn rank(&self, u: NodeId) -> u32 {
        self.core.rank[u.index()]
    }

    /// Number of up-arcs out of `u` — the width of one upward
    /// relaxation step, which is what a settle at `u` is charged for.
    #[inline]
    pub fn up_degree(&self, u: NodeId) -> usize {
        self.core.range(u.0).len()
    }

    /// Iterates the up-arcs out of `u` (heads in node-id order).
    pub fn up_arcs(&self, u: NodeId) -> impl Iterator<Item = UpArc> + '_ {
        self.core.range(u.0).map(move |idx| UpArc {
            head: NodeId(self.core.heads[idx]),
            fwd: self.pricing.fwd[idx],
            bwd: self.pricing.bwd[idx],
            fwd_live: self.pricing.fwd_live[idx],
            bwd_live: self.pricing.bwd_live[idx],
        })
    }

    /// Customized cost and unpack middle for travelling `from → to`
    /// along the overlay arc joining the two nodes, if that arc exists
    /// and the direction is reachable. A `None` middle means the step
    /// is an original edge; a `Some(m)` step expands to `from → m → to`,
    /// recursively, until only real edges remain.
    pub fn arc_direction(&self, from: NodeId, to: NodeId) -> Option<(f64, Option<NodeId>)> {
        let (cost, via) = if self.rank(from) < self.rank(to) {
            let idx = self.core.arc_index(from.0, to.0)?;
            (self.pricing.fwd[idx], self.pricing.fwd_via[idx])
        } else {
            let idx = self.core.arc_index(to.0, from.0)?;
            (self.pricing.bwd[idx], self.pricing.bwd_via[idx])
        };
        if !cost.is_finite() {
            return None;
        }
        let middle = (via != NO_VIA).then_some(NodeId(via));
        Some((cost, middle))
    }
}

/// Blocks one sequential scan of the node (R) and edge (S) relations
/// costs, at the storage layer's tuple sizes.
fn relation_blocks(graph: &Graph) -> u64 {
    let edge_blocks = graph
        .edge_count()
        .div_ceil(BLOCK_SIZE / EdgeTuple::SIZE)
        .max(1);
    let node_blocks = graph
        .node_count()
        .div_ceil(BLOCK_SIZE / NodeTuple::SIZE)
        .max(1);
    (edge_blocks + node_blocks) as u64
}

/// Blocks occupied by the overlay relation.
fn overlay_blocks(arcs: usize) -> u64 {
    arcs.div_ceil(ARCS_PER_BLOCK).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_graph::graph::graph_from_arcs;
    use atis_graph::{Metro, MetroSpec, SplitMix64};

    /// Exhaustive bidirectional upward search over live directions —
    /// the reference implementation of the v5 query, kept here so the
    /// overlay is testable without the algorithms crate.
    fn updown_dist(h: &Hierarchy, s: NodeId, t: NodeId) -> f64 {
        let n = h.node_count();
        let df = upward(h, s, true, n);
        let db = upward(h, t, false, n);
        let mut best = f64::INFINITY;
        for u in 0..n {
            best = best.min(df[u] + db[u]);
        }
        best
    }

    fn upward(h: &Hierarchy, s: NodeId, forward: bool, n: usize) -> Vec<f64> {
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[s.index()] = 0.0;
        heap.push((std::cmp::Reverse(ordered(0.0)), s.0));
        while let Some((std::cmp::Reverse(d), u)) = heap.pop() {
            let d = f64::from_bits(d.0);
            if d > dist[u as usize] {
                continue;
            }
            for arc in h.up_arcs(NodeId(u)) {
                let (cost, live) = if forward {
                    (arc.fwd, arc.fwd_live)
                } else {
                    (arc.bwd, arc.bwd_live)
                };
                if !live {
                    continue;
                }
                let next = d + cost;
                if next < dist[arc.head.index()] {
                    dist[arc.head.index()] = next;
                    heap.push((std::cmp::Reverse(ordered(next)), arc.head.0));
                }
            }
        }
        dist
    }

    /// Order-preserving bit key for non-negative finite f64s.
    fn ordered(x: f64) -> OrderedBits {
        OrderedBits(x.to_bits())
    }

    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    struct OrderedBits(u64);

    fn reference_dist(graph: &Graph, s: NodeId, t: NodeId) -> f64 {
        let n = graph.node_count();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[s.index()] = 0.0;
        heap.push((std::cmp::Reverse(ordered(0.0)), s.0));
        while let Some((std::cmp::Reverse(d), u)) = heap.pop() {
            let d = f64::from_bits(d.0);
            if d > dist[u as usize] {
                continue;
            }
            for e in graph.neighbors(NodeId(u)) {
                let next = d + e.cost;
                if next < dist[e.to.index()] {
                    dist[e.to.index()] = next;
                    heap.push((std::cmp::Reverse(ordered(next)), e.to.0));
                }
            }
        }
        dist[t.index()]
    }

    fn sample_pairs(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
        let mut rng = SplitMix64::new(seed);
        (0..count)
            .map(|_| {
                (
                    NodeId(rng.next_below(n as u64) as u32),
                    NodeId(rng.next_below(n as u64) as u32),
                )
            })
            .collect()
    }

    #[test]
    fn updown_distances_match_dijkstra_on_a_metro() {
        let metro = Metro::new(MetroSpec::new(3, 2, 1993)).unwrap();
        let graph = metro.graph();
        let h = Hierarchy::build(graph, HierarchyConfig::paper()).unwrap();
        for (s, t) in sample_pairs(graph.node_count(), 40, 42) {
            let got = updown_dist(&h, s, t);
            let want = reference_dist(graph, s, t);
            if want.is_finite() {
                assert!(
                    (got - want).abs() <= want.abs() * 1e-9 + 1e-12,
                    "{s:?}->{t:?}: hierarchy {got}, dijkstra {want}"
                );
            } else {
                assert!(got.is_infinite(), "{s:?}->{t:?} should be unreachable");
            }
        }
    }

    #[test]
    fn one_way_arcs_never_price_the_reverse_direction() {
        // A directed triangle with a single one-way chord: 0→1→2 plus
        // 0→2 one-way. Travelling 2⇝0 must stay impossible.
        let graph = graph_from_arcs(
            3,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (0, 2, 1.5),
            ],
        )
        .unwrap();
        let h = Hierarchy::build(&graph, HierarchyConfig::paper()).unwrap();
        let fwd = updown_dist(&h, NodeId(0), NodeId(2));
        let bwd = updown_dist(&h, NodeId(2), NodeId(0));
        assert!(
            (fwd - 1.5).abs() < 1e-12,
            "0->2 should use the one-way at 1.5, got {fwd}"
        );
        assert!(
            (bwd - 2.0).abs() < 1e-12,
            "2->0 must go around at 2.0, got {bwd}"
        );
    }

    #[test]
    fn arc_direction_unpacks_to_real_edges() {
        let metro = Metro::new(MetroSpec::new(2, 2, 5)).unwrap();
        let graph = metro.graph();
        let h = Hierarchy::build(graph, HierarchyConfig::paper()).unwrap();

        fn unpack(h: &Hierarchy, a: NodeId, b: NodeId, out: &mut Vec<(NodeId, NodeId)>) {
            match h.arc_direction(a, b) {
                Some((_, Some(m))) => {
                    unpack(h, a, m, out);
                    unpack(h, m, b, out);
                }
                _ => out.push((a, b)),
            }
        }

        let mut checked = 0;
        for tail in graph.node_ids() {
            for arc in h.up_arcs(tail) {
                let Some((cost, Some(_))) = h.arc_direction(tail, arc.head) else {
                    continue;
                };
                let mut hops = Vec::new();
                unpack(&h, tail, arc.head, &mut hops);
                let mut total = 0.0;
                for &(a, b) in &hops {
                    let edge = graph
                        .edge_cost(a, b)
                        .unwrap_or_else(|| panic!("unpacked hop {a:?}->{b:?} is not a real edge"));
                    total += edge;
                }
                assert!(
                    (total - cost).abs() <= cost * 1e-9,
                    "shortcut {tail:?}->{:?} prices {cost} but unpacks to {total}",
                    arc.head
                );
                checked += 1;
                if checked >= 200 {
                    return;
                }
            }
        }
        assert!(checked > 0, "metro overlay should contain shortcuts");
    }

    #[test]
    fn update_contract_customize_then_recontract() {
        let metro = Metro::new(MetroSpec::new(2, 2, 21)).unwrap();
        let mut graph = metro.graph().clone();
        let h = Hierarchy::build(&graph, HierarchyConfig::paper()).unwrap();
        assert!(h.is_current_for(&graph));
        assert!(!h.is_degraded());

        // Rush hour: a cost increase leaves the hierarchy stale.
        let edge = *graph.edges().next().unwrap();
        graph
            .set_edge_cost(edge.from, edge.to, edge.cost * 3.0)
            .unwrap();
        assert!(!h.is_current_for(&graph));

        // Cheap arm: customize re-prices without re-contracting and
        // stays exact, but reports degraded.
        let customized = h.customized_for(&graph);
        assert!(customized.is_current_for(&graph));
        assert!(customized.is_degraded());
        for (s, t) in sample_pairs(graph.node_count(), 15, 7) {
            let got = updown_dist(&customized, s, t);
            let want = reference_dist(&graph, s, t);
            if want.is_finite() {
                assert!((got - want).abs() <= want.abs() * 1e-9 + 1e-12);
            }
        }

        // Expensive arm: re-contraction restores dormancy.
        let rebuilt = customized.rebuild_for(&graph).unwrap();
        assert!(rebuilt.is_current_for(&graph));
        assert!(!rebuilt.is_degraded());
        let live = |h: &Hierarchy| {
            (0..h.node_count() as u32)
                .flat_map(|u| h.up_arcs(NodeId(u)).collect::<Vec<_>>())
                .filter(|a| a.fwd_live)
                .count()
        };
        assert!(
            live(&rebuilt) < live(&customized),
            "rebuild should restore dormancy"
        );
    }

    #[test]
    fn builds_are_deterministic() {
        let metro = Metro::new(MetroSpec::new(2, 2, 3)).unwrap();
        let a = Hierarchy::build(metro.graph(), HierarchyConfig::paper()).unwrap();
        let b = Hierarchy::build(metro.graph(), HierarchyConfig::paper()).unwrap();
        assert_eq!(a.core.heads, b.core.heads);
        assert_eq!(a.core.order, b.core.order);
        assert_eq!(a.pricing.fwd, b.pricing.fwd);
        assert_eq!(a.pricing.fwd_live, b.pricing.fwd_live);
        assert_eq!(a.build_io(), b.build_io());
    }

    #[test]
    fn empty_graph_is_a_typed_error() {
        let graph = graph_from_arcs(0, &[]).unwrap();
        assert!(matches!(
            Hierarchy::build(&graph, HierarchyConfig::paper()),
            Err(HierarchyError::EmptyGraph)
        ));
    }

    #[test]
    fn build_io_is_charged() {
        let metro = Metro::new(MetroSpec::new(2, 2, 13)).unwrap();
        let h = Hierarchy::build(metro.graph(), HierarchyConfig::paper()).unwrap();
        let io = h.build_io();
        assert!(io.block_reads > 0, "scan + witness settles must be metered");
        assert!(
            io.block_writes > 0,
            "overlay materialization must be metered"
        );
        assert!(
            io.tuple_updates > 0,
            "triangle improvements must be metered"
        );
        assert_eq!(io.relations_created, 1);
    }
}
