//! Table 4A parameters and the derived quantities of Table 1.

use atis_graph::Graph;
use atis_storage::CostParams;

/// The cost-model parameter set: Table 4A values plus relation sizes, from
/// which the Table 1 derived quantities (blocking factors, block counts)
/// follow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Unit I/O costs and `I_l` (Table 4A).
    pub io: CostParams,
    /// `|S|` — number of edge tuples.
    pub s_tuples: usize,
    /// `|R|` — number of node tuples.
    pub r_tuples: usize,
    /// `T_s` — edge tuple size in bytes (32).
    pub tuple_s: usize,
    /// `T_r` — node tuple size in bytes (16).
    pub tuple_r: usize,
    /// `B` — block size in bytes (4096).
    pub block: usize,
    /// `|A|` — average adjacency-list length (4 for interior grid nodes).
    pub avg_degree: f64,
    /// `S_r` — selection cardinality of nodes in `R` (1).
    pub selection_cardinality: usize,
}

impl ModelParams {
    /// The exact Table 4A instance: the 30×30 grid with `|S| = 3480`,
    /// `|R| = 900`, `|A| = 4`.
    pub fn table_4a() -> Self {
        ModelParams {
            io: CostParams::table_4a(),
            s_tuples: 3480,
            r_tuples: 900,
            tuple_s: 32,
            tuple_r: 16,
            block: 4096,
            avg_degree: 4.0,
            selection_cardinality: 1,
        }
    }

    /// Parameters for a `k × k` grid (the paper's benchmark family).
    pub fn for_grid(k: usize) -> Self {
        ModelParams {
            s_tuples: 4 * k * (k - 1),
            r_tuples: k * k,
            avg_degree: 4.0,
            ..Self::table_4a()
        }
    }

    /// Parameters measured from an arbitrary graph.
    pub fn for_graph(graph: &Graph) -> Self {
        ModelParams {
            s_tuples: graph.edge_count(),
            r_tuples: graph.node_count(),
            avg_degree: graph.average_degree(),
            ..Self::table_4a()
        }
    }

    /// `Bf_s = B / T_s` (128).
    pub fn bf_s(&self) -> usize {
        self.block / self.tuple_s
    }

    /// `Bf_r = B / T_r` (256).
    pub fn bf_r(&self) -> usize {
        self.block / self.tuple_r
    }

    /// `Bf_rs = B / (T_r + T_s)` (85 by byte arithmetic; the paper prints
    /// 86).
    pub fn bf_rs(&self) -> usize {
        self.block / (self.tuple_r + self.tuple_s)
    }

    /// `B_s = ⌈|S| / Bf_s⌉`.
    pub fn b_s(&self) -> usize {
        self.s_tuples.div_ceil(self.bf_s()).max(1)
    }

    /// `B_r = ⌈|R| / Bf_r⌉`.
    pub fn b_r(&self) -> usize {
        self.r_tuples.div_ceil(self.bf_r()).max(1)
    }

    /// Blocks for `n` current nodes (R-schema): `B_c = ⌈n / Bf_r⌉`.
    pub fn b_c(&self, current_nodes: f64) -> usize {
        (current_nodes.ceil() as usize).div_ceil(self.bf_r()).max(1)
    }

    /// Blocks for `n` join-result tuples: `⌈n / Bf_rs⌉`.
    pub fn b_join(&self, join_tuples: f64) -> usize {
        (join_tuples.ceil() as usize).div_ceil(self.bf_rs()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_4a_derivations() {
        let p = ModelParams::table_4a();
        assert_eq!(p.bf_s(), 128);
        assert_eq!(p.bf_r(), 256);
        assert_eq!(p.bf_rs(), 85);
        assert_eq!(p.b_s(), 28); // 3480 / 128 rounded up
        assert_eq!(p.b_r(), 4); // 900 / 256 rounded up
    }

    #[test]
    fn grid_params_match_grid_construction() {
        let p30 = ModelParams::for_grid(30);
        assert_eq!(p30.s_tuples, 3480);
        assert_eq!(p30.r_tuples, 900);
        let p10 = ModelParams::for_grid(10);
        assert_eq!(p10.s_tuples, 360);
        assert_eq!(p10.r_tuples, 100);
    }

    #[test]
    fn for_graph_measures_the_graph() {
        let grid = atis_graph::Grid::new(12, atis_graph::CostModel::Uniform, 0).unwrap();
        let p = ModelParams::for_graph(grid.graph());
        assert_eq!(p.s_tuples, grid.graph().edge_count());
        assert_eq!(p.r_tuples, 144);
        assert!((p.avg_degree - grid.graph().average_degree()).abs() < 1e-12);
    }

    #[test]
    fn block_helpers_round_up() {
        let p = ModelParams::table_4a();
        assert_eq!(p.b_c(1.0), 1);
        assert_eq!(p.b_c(256.0), 1);
        assert_eq!(p.b_c(257.0), 2);
        assert_eq!(p.b_join(4.0), 1);
        assert_eq!(p.b_join(86.0), 2);
    }
}
