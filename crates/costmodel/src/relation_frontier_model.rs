//! An algebraic cost model for A\* **version 1** (separate frontier
//! relation) — the model the paper never derives, but whose behaviour its
//! Figures 10–12 measure. Formalising it explains deviation D4 in
//! EXPERIMENTS.md: under the paper's own Table 4A prices, version 1's
//! per-iteration APPEND/DELETE overhead exceeds its initialisation saving
//! after only a couple of iterations.
//!
//! Structure per iteration `i` (all prices from Table 4A):
//!
//! ```text
//! select   = B_f(i) · t_read              scan the frontier relation
//! delete   = (1 + I_l)·t_update + I_l·t_read   DELETE the selected node
//! close    = (I_l)·t_read + t_update      REPLACE status in the result rel.
//! join     = F(1, B_s, B_join)            fetch u.adjacencyList
//! relax    = |A| · (I_l·t_read)           membership probes
//!          + new·(2·(t_write + I_l·t_update))   APPEND to both relations
//!          + upd·(I_l·t_read + t_update + I_l·t_read + t_update)
//! ```
//!
//! The frontier heap tombstones deletions, so its block count grows with
//! *total appends*, not live size: `B_f(i) = ⌈(1 + new·i) / Bf_r⌉`.

use crate::join_cost;
use crate::params::ModelParams;
use atis_storage::JoinStrategy;

/// Tunable workload shape for the version-1 model.
#[derive(Debug, Clone, Copy)]
pub struct RelationFrontierModel {
    p: ModelParams,
    /// Average nodes newly discovered per expansion. On a fresh grid
    /// interior this is ≈ 2 (of 4 neighbours, ~2 are unseen); it decays as
    /// the explored region closes, so ≈ 1 fits whole-run averages.
    pub new_per_expansion: f64,
    /// Average already-known neighbours whose cost improves per expansion.
    pub improved_per_expansion: f64,
    /// Join strategy for the adjacency fetch (`None` = optimizer).
    pub forced_join: Option<JoinStrategy>,
}

impl RelationFrontierModel {
    /// Builds the model with grid-calibrated workload shape and the
    /// paper's forced nested-loop join.
    pub fn new(p: ModelParams) -> Self {
        RelationFrontierModel {
            p,
            new_per_expansion: 1.0,
            improved_per_expansion: 0.5,
            forced_join: Some(JoinStrategy::NestedLoop),
        }
    }

    /// Initialisation: two relation creations plus the two APPENDs of the
    /// start node — version 1's *cheap* start (no bulk load, no index
    /// build).
    pub fn init_cost(&self) -> f64 {
        let p = &self.p;
        let append = p.io.t_write + p.io.isam_levels as f64 * p.io.t_update;
        2.0 * p.io.t_create + 2.0 * append
    }

    /// Frontier blocks at iteration `i` (tombstones included).
    fn frontier_blocks(&self, i: f64) -> f64 {
        ((1.0 + self.new_per_expansion * i) / self.p.bf_r() as f64)
            .ceil()
            .max(1.0)
    }

    /// Cost of iteration `i` (1-based).
    pub fn iteration_cost(&self, i: u64) -> f64 {
        let p = &self.p;
        let il = p.io.isam_levels as f64;
        let b_join = p.b_join(p.avg_degree);
        let select = self.frontier_blocks(i as f64) * p.io.t_read;
        let delete = (1.0 + il) * p.io.t_update + il * p.io.t_read;
        let close = il * p.io.t_read + p.io.t_update;
        let join = match self.forced_join {
            Some(s) => join_cost::algebraic_join_cost(s, 1, p.b_s(), b_join, 1.0, p),
            None => join_cost::cheapest_join(1, p.b_s(), b_join, 1.0, p).1,
        };
        let append = p.io.t_write + il * p.io.t_update;
        let probe = il * p.io.t_read;
        let relax = p.avg_degree * probe
            + self.new_per_expansion * (2.0 * append + probe + p.io.t_read)
            + self.improved_per_expansion * (2.0 * (il * p.io.t_read + p.io.t_update));
        select + delete + close + join + relax
    }

    /// Total predicted cost over a trace's iteration count.
    pub fn total(&self, iterations: u64) -> f64 {
        self.init_cost()
            + (1..=iterations)
                .map(|i| self.iteration_cost(i))
                .sum::<f64>()
    }

    /// The iteration count at which version 1's cumulative cost overtakes
    /// a given status-frontier total-cost function — the crossover the
    /// paper's Figure 12 narrative implies ("version 1 starts out much
    /// better ... for longer paths it falls behind"). Returns `None` if v1
    /// never overtakes within `limit`.
    pub fn crossover_vs(&self, status_total: impl Fn(u64) -> f64, limit: u64) -> Option<u64> {
        (1..=limit).find(|&t| self.total(t) > status_total(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra_astar_model::BestFirstModel;

    #[test]
    fn init_is_cheaper_than_the_bulk_load() {
        let p = ModelParams::table_4a();
        let v1 = RelationFrontierModel::new(p);
        let v2 = BestFirstModel::new(p);
        assert!(
            v1.init_cost() < v2.init_cost(),
            "v1 init {} must undercut v2 init {}",
            v1.init_cost(),
            v2.init_cost()
        );
    }

    #[test]
    fn per_iteration_is_more_expensive_than_status_frontier() {
        let p = ModelParams::table_4a();
        let v1 = RelationFrontierModel::new(p);
        let v2 = BestFirstModel::new(p);
        // Even at iteration 1 (smallest frontier), APPEND/DELETE overhead
        // makes v1's step pricier.
        assert!(v1.iteration_cost(1) > v2.iteration_cost());
    }

    #[test]
    fn crossover_happens_within_a_handful_of_iterations() {
        // The D4 analysis: v1's total overtakes v2's within single-digit
        // iterations under Table 4A prices — which is why the paper's
        // measured v1 win at ~38 iterations cannot be reproduced from its
        // own cost model.
        let p = ModelParams::table_4a();
        let v1 = RelationFrontierModel::new(p);
        let v2 = BestFirstModel::new(p);
        let crossover = v1
            .crossover_vs(|t| v2.total(t), 1000)
            .expect("v1 must fall behind");
        assert!(crossover <= 10, "crossover at iteration {crossover}");
    }

    #[test]
    fn model_tracks_the_physical_engine() {
        use atis_algorithms::{AStarVersion, Algorithm, Database};
        use atis_graph::{CostModel, Grid, QueryKind};
        use atis_storage::CostParams;
        // Whole-run agreement with the metered v1 run within 25% on the
        // paper's 20x20 and 30x30 diagonal workloads.
        for k in [20usize, 30] {
            let grid = Grid::new(k, CostModel::TWENTY_PERCENT, 1993).unwrap();
            let db = Database::open(grid.graph()).unwrap();
            let (s, d) = grid.query_pair(QueryKind::Diagonal);
            let t = db.run(Algorithm::AStar(AStarVersion::V1), s, d).unwrap();
            let measured = t.cost_units(&CostParams::default());
            let model = RelationFrontierModel::new(ModelParams::for_grid(k));
            let predicted = model.total(t.iterations);
            let err = (predicted - measured).abs() / measured;
            assert!(
                err < 0.25,
                "k={k}: predicted {predicted:.1} vs measured {measured:.1} ({:.0}%)",
                err * 100.0
            );
        }
    }

    #[test]
    fn frontier_growth_raises_late_iterations() {
        let p = ModelParams::table_4a();
        let mut m = RelationFrontierModel::new(p);
        m.new_per_expansion = 2.0;
        assert!(m.iteration_cost(800) > m.iteration_cost(1));
    }
}
