//! Table 3 — the algebraic cost of Dijkstra and A\* (version 3).
//!
//! Both algorithms share the per-iteration structure; "The main difference
//! appears in the selection of the minimum-cost node to expand at each
//! iteration" — a CPU-side difference the I/O model does not price. With
//! exactly one current node per iteration, the join selectivity is
//! `JS = |A| / |S|` and `B_join = ⌈|A| / Bf_rs⌉` (Section 4.2).
//!
//! ```text
//! init:  C1..C4 as in Table 2
//! per iteration:
//!   select   = B_r·t_read                 scan R for the min open node
//!   mark     = (I_l + 1)·t_update         move it to the exploredSet
//!   join     = F(B_c=1, B_s, B_join)      fetch u.adjacencyList
//!   relax    = (I_l + |A|)·t_update       REPLACE each neighbour
//! ```
//!
//! "Since it is difficult to algebraically predict the number of
//! iterations, we extract it from the trace of the actual execution" —
//! [`BestFirstModel::total`] therefore takes the iteration count as input,
//! exactly like the paper's simulation.

use crate::join_cost;
use crate::params::ModelParams;
use atis_storage::JoinStrategy;

/// One named step of an algebraic cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelStep {
    /// Step label (e.g. `"C5: select min from frontier (scan R)"`).
    pub label: String,
    /// Cost of one execution of the step, in Table 4A units.
    pub cost: f64,
    /// Whether the step runs once per iteration (vs once per run).
    pub per_iteration: bool,
}

impl ModelStep {
    fn new(label: &str, cost: f64, per_iteration: bool) -> ModelStep {
        ModelStep {
            label: label.to_string(),
            cost,
            per_iteration,
        }
    }
}

/// Table 3 instantiated over a parameter set. Covers Dijkstra and the
/// status-frontier A\* versions (2 and 3), which share the I/O structure.
#[derive(Debug, Clone, Copy)]
pub struct BestFirstModel {
    p: ModelParams,
    /// Join strategy used for the adjacency join (`None` = optimizer).
    pub forced_join: Option<JoinStrategy>,
}

impl BestFirstModel {
    /// Builds the model with the paper's forced nested-loop join.
    pub fn new(p: ModelParams) -> Self {
        BestFirstModel {
            p,
            forced_join: Some(JoinStrategy::NestedLoop),
        }
    }

    /// Lets the optimizer pick the join strategy.
    pub fn with_optimizer(mut self) -> Self {
        self.forced_join = None;
        self
    }

    /// `C1 + C2 + C3 + C4` — identical to Table 2's initialisation.
    pub fn init_cost(&self) -> f64 {
        crate::iterative_model::IterativeModel::new(self.p).init_cost()
    }

    /// Per-iteration selection cost (the scan of `R`).
    pub fn select_cost(&self) -> f64 {
        self.p.b_r() as f64 * self.p.io.t_read
    }

    /// Per-iteration join cost (`F` over one current node).
    pub fn join_step_cost(&self) -> f64 {
        let p = &self.p;
        let b_join = p.b_join(p.avg_degree);
        match self.forced_join {
            Some(s) => join_cost::algebraic_join_cost(s, 1, p.b_s(), b_join, 1.0, p),
            None => join_cost::cheapest_join(1, p.b_s(), b_join, 1.0, p).1,
        }
    }

    /// Per-iteration update cost: marking the selected node plus relaxing
    /// its `|A|` neighbours (`(I_l + 1)·t_update + (I_l + |A|)·t_update`).
    pub fn update_step_cost(&self) -> f64 {
        let p = &self.p;
        (p.io.isam_levels as f64 + 1.0) * p.io.t_update
            + (p.io.isam_levels as f64 + p.avg_degree) * p.io.t_update
    }

    /// Per-iteration cost `Γ`.
    pub fn iteration_cost(&self) -> f64 {
        self.select_cost() + self.join_step_cost() + self.update_step_cost()
    }

    /// The model as named steps — Table 3's decomposition, with the
    /// initialisation steps shared with Table 2. Per-iteration steps carry
    /// `per_iteration = true`; summing init steps plus `iterations ×` the
    /// per-iteration steps reproduces [`BestFirstModel::total`].
    pub fn steps(&self) -> Vec<ModelStep> {
        let p = &self.p;
        let b_r = p.b_r() as f64;
        let b_s = p.b_s() as f64;
        vec![
            ModelStep::new("C1: create R", p.io.t_create, false),
            ModelStep::new(
                "C2: initialise R from S",
                b_s * p.io.t_read + b_r * p.io.t_write,
                false,
            ),
            ModelStep::new(
                "C3: index & sort R",
                2.0 * (b_r * b_r.log2().max(0.0) + b_r) * p.io.t_update,
                false,
            ),
            ModelStep::new(
                "C4: mark start node",
                (p.io.isam_levels as f64 + p.selection_cardinality as f64) * p.io.t_update
                    + b_r * p.io.t_read,
                false,
            ),
            ModelStep::new(
                "C5: select min from frontier (scan R)",
                self.select_cost(),
                true,
            ),
            ModelStep::new(
                "C6: move u to exploredSet",
                (p.io.isam_levels as f64 + 1.0) * p.io.t_update,
                true,
            ),
            ModelStep::new(
                "C7: fetch u.adjacencyList (join)",
                self.join_step_cost(),
                true,
            ),
            ModelStep::new(
                "C8: relax |A| neighbours (REPLACE)",
                (p.io.isam_levels as f64 + p.avg_degree) * p.io.t_update,
                true,
            ),
        ]
    }

    /// Totals [`BestFirstModel::steps`] over an iteration count (equal to
    /// [`BestFirstModel::total`] by construction; tested).
    pub fn total_from_steps(&self, iterations: u64) -> f64 {
        self.steps()
            .iter()
            .map(|s| {
                if s.per_iteration {
                    s.cost * iterations as f64
                } else {
                    s.cost
                }
            })
            .sum()
    }

    /// Total predicted cost for an iteration count taken from an execution
    /// trace.
    pub fn total(&self, iterations: u64) -> f64 {
        self.init_cost() + iterations as f64 * self.iteration_cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_cost_matches_hand_computation() {
        // select .14 + mark .34 + join 1.065 + relax 7*.085 = 2.14.
        let m = BestFirstModel::new(ModelParams::table_4a());
        assert!(
            (m.iteration_cost() - 2.14).abs() < 1e-9,
            "{}",
            m.iteration_cost()
        );
    }

    #[test]
    fn reproduces_table_4b_dijkstra_row() {
        // Paper: 1055.6 / 1656.8 / 1941.2 at 488 / 767 / 899 iterations.
        let m = BestFirstModel::new(ModelParams::table_4a());
        for (iters, expect) in [(488u64, 1055.6), (767, 1656.8), (899, 1941.2)] {
            let t = m.total(iters);
            let err = (t - expect).abs() / expect;
            assert!(
                err < 0.02,
                "{iters} iterations: predicted {t}, paper {expect}"
            );
        }
    }

    #[test]
    fn reproduces_table_4b_astar_row() {
        // Paper: 66.7 / 881.2 / 1809.8 at 29 / 407 / 838 iterations.
        let m = BestFirstModel::new(ModelParams::table_4a());
        for (iters, expect) in [(29u64, 66.7), (407, 881.2), (838, 1809.8)] {
            let t = m.total(iters);
            let err = (t - expect).abs() / expect;
            assert!(
                err < 0.02,
                "{iters} iterations: predicted {t}, paper {expect}"
            );
        }
    }

    #[test]
    fn optimizer_cuts_the_join_cost_dramatically() {
        // With one current node, the primary-key join replaces a 29-block
        // nested loop with a single bucket probe.
        let p = ModelParams::table_4a();
        let forced = BestFirstModel::new(p);
        let opt = BestFirstModel::new(p).with_optimizer();
        assert!(opt.iteration_cost() < forced.iteration_cost() - 0.9);
    }

    #[test]
    fn steps_sum_to_the_closed_form() {
        let m = BestFirstModel::new(ModelParams::table_4a());
        for iters in [0u64, 1, 29, 899] {
            let a = m.total(iters);
            let b = m.total_from_steps(iters);
            assert!((a - b).abs() < 1e-9, "{iters}: {a} vs {b}");
        }
        // The decomposition has 4 init steps and 4 per-iteration steps.
        let steps = m.steps();
        assert_eq!(steps.iter().filter(|s| !s.per_iteration).count(), 4);
        assert_eq!(steps.iter().filter(|s| s.per_iteration).count(), 4);
    }

    #[test]
    fn init_matches_iterative_init() {
        let p = ModelParams::table_4a();
        let bf = BestFirstModel::new(p);
        let it = crate::iterative_model::IterativeModel::new(p);
        assert_eq!(bf.init_cost(), it.init_cost());
    }
}
