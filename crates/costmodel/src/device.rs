//! Where Table 4A's unit costs come from: a physical device model.
//!
//! The paper presents `t_read = 0.035`, `t_write = 0.05`, `t_update =
//! t_read + t_write` as given "units". This module grounds them: a
//! [`DiskModel`] computes random-block service times from seek, rotation
//! and transfer parameters, and scales them into `CostParams`. A
//! 1993-class drive reproduces the paper's read/write *ratio*; swapping in
//! a modern SSD shows which conclusions were device-dependent (the
//! `sensitivity` experiment re-prices the same metered runs under
//! different devices — no re-execution needed, because [`crate::predict`]
//! and `IoStats::cost` are parametric in the unit costs).

use atis_storage::CostParams;

/// A rotating-disk (or SSD) service-time model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Average seek time, in milliseconds (0 for SSDs).
    pub avg_seek_ms: f64,
    /// Spindle speed, revolutions per minute (`f64::INFINITY` for SSDs).
    pub rpm: f64,
    /// Sustained transfer rate, megabytes per second.
    pub transfer_mb_per_s: f64,
    /// Block size in bytes (4096 everywhere in this repository).
    pub block_bytes: usize,
    /// Multiplier applied to writes relative to reads (verify-after-write
    /// era drives were slower to write; SSD writes cost program cycles).
    pub write_factor: f64,
}

impl DiskModel {
    /// A 1993-class drive (≈12 ms seek, 3600 RPM, ≈1.5 MB/s). Its
    /// write/read ratio matches Table 4A's `0.05 / 0.035 ≈ 1.43`.
    pub fn era_1993() -> DiskModel {
        DiskModel {
            avg_seek_ms: 12.0,
            rpm: 3600.0,
            transfer_mb_per_s: 1.5,
            block_bytes: 4096,
            write_factor: 1.43,
        }
    }

    /// A modern NVMe SSD (no seek, no rotation, ~3 GB/s, writes ≈ reads
    /// at block granularity thanks to the device cache).
    pub fn modern_ssd() -> DiskModel {
        DiskModel {
            avg_seek_ms: 0.015,
            rpm: f64::INFINITY,
            transfer_mb_per_s: 3000.0,
            block_bytes: 4096,
            write_factor: 1.0,
        }
    }

    /// Average rotational latency: half a revolution, in milliseconds.
    pub fn rotational_latency_ms(&self) -> f64 {
        if self.rpm.is_infinite() {
            0.0
        } else {
            0.5 * 60_000.0 / self.rpm
        }
    }

    /// Time to transfer one block, in milliseconds.
    pub fn block_transfer_ms(&self) -> f64 {
        (self.block_bytes as f64 / (self.transfer_mb_per_s * 1e6)) * 1e3
    }

    /// Service time of one random block read, in milliseconds.
    pub fn random_read_ms(&self) -> f64 {
        self.avg_seek_ms + self.rotational_latency_ms() + self.block_transfer_ms()
    }

    /// Service time of one random block write, in milliseconds.
    pub fn random_write_ms(&self) -> f64 {
        self.random_read_ms() * self.write_factor
    }

    /// Converts the device into cost parameters, scaled so one read costs
    /// `read_unit` (pass Table 4A's `0.035` to keep the paper's scale, or
    /// `self.random_read_ms()` to price runs in real milliseconds).
    pub fn cost_params(&self, read_unit: f64) -> CostParams {
        let scale = read_unit / self.random_read_ms();
        let t_read = read_unit;
        let t_write = self.random_write_ms() * scale;
        CostParams {
            t_read,
            t_write,
            t_update: t_read + t_write,
            ..CostParams::table_4a()
        }
    }

    /// Cost parameters in real milliseconds for this device.
    pub fn cost_params_ms(&self) -> CostParams {
        self.cost_params(self.random_read_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn era_drive_reproduces_table_4a_ratio() {
        let d = DiskModel::era_1993();
        let p = d.cost_params(0.035);
        assert!((p.t_read - 0.035).abs() < 1e-12);
        // 0.05 / 0.035 = 1.428...; the drive's write factor was picked to
        // match, so t_write lands on Table 4A's 0.05 within a percent.
        assert!((p.t_write - 0.05).abs() < 0.0005, "t_write = {}", p.t_write);
        assert!((p.t_update - (p.t_read + p.t_write)).abs() < 1e-12);
    }

    #[test]
    fn era_drive_service_times_are_1993_plausible() {
        let d = DiskModel::era_1993();
        // ~12 + 8.33 + 2.73 ≈ 23 ms per random block read.
        let r = d.random_read_ms();
        assert!((20.0..30.0).contains(&r), "{r} ms");
        assert!((d.rotational_latency_ms() - 8.333).abs() < 0.01);
    }

    #[test]
    fn ssd_is_orders_of_magnitude_faster() {
        let hdd = DiskModel::era_1993();
        let ssd = DiskModel::modern_ssd();
        assert!(hdd.random_read_ms() / ssd.random_read_ms() > 500.0);
        assert_eq!(ssd.rotational_latency_ms(), 0.0);
    }

    #[test]
    fn ms_params_price_in_milliseconds() {
        let d = DiskModel::era_1993();
        let p = d.cost_params_ms();
        assert!((p.t_read - d.random_read_ms()).abs() < 1e-12);
        assert!((p.t_write - d.random_write_ms()).abs() < 1e-9);
    }
}
