//! The algebraic join-cost function `F(B1, B2, B3)` of Section 4.
//!
//! "The value of this function depends on the join strategy that is chosen
//! to carry out the join. The function uses the input parameters to choose
//! the cheapest join strategy from among four viable choices."
//!
//! For the Table 4B example the paper *fixes* nested-loop:
//! `F(B1, B2, B3) = B1·t_read + (B1·B2)·t_read + B3·t_write`; the chooser
//! here implements the full optimizer.

use crate::params::ModelParams;
use atis_storage::JoinStrategy;

/// Algebraic cost of one strategy for a join of `b1` outer blocks
/// (holding `outer_tuples` tuples) against `b2` inner blocks producing
/// `b3` result blocks.
pub fn algebraic_join_cost(
    strategy: JoinStrategy,
    b1: usize,
    b2: usize,
    b3: usize,
    outer_tuples: f64,
    p: &ModelParams,
) -> f64 {
    let (b1, b2, b3) = (b1.max(1) as f64, b2.max(1) as f64, b3 as f64);
    let log2 = |b: f64| b.log2().ceil().max(0.0);
    match strategy {
        JoinStrategy::NestedLoop => (b1 + b1 * b2) * p.io.t_read + b3 * p.io.t_write,
        JoinStrategy::Hash => (b1 + b2) * p.io.t_read + b3 * p.io.t_write,
        JoinStrategy::SortMerge => {
            (b1 * log2(b1) + b2 * log2(b2)) * p.io.t_update
                + (b1 + b2) * p.io.t_read
                + b3 * p.io.t_write
        }
        JoinStrategy::PrimaryKey => outer_tuples.max(1.0) * p.io.t_read + b3 * p.io.t_write,
    }
}

/// `F(B1, B2, B3)` with the optimizer enabled: the cheapest of the four
/// strategies and its cost.
pub fn cheapest_join(
    b1: usize,
    b2: usize,
    b3: usize,
    outer_tuples: f64,
    p: &ModelParams,
) -> (JoinStrategy, f64) {
    JoinStrategy::ALL
        .into_iter()
        .map(|s| (s, algebraic_join_cost(s, b1, b2, b3, outer_tuples, p)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("four strategies")
}

/// The paper's Section 4.3 worked form: nested-loop `F`.
pub fn nested_loop_join_cost(b1: usize, b2: usize, b3: usize, p: &ModelParams) -> f64 {
    algebraic_join_cost(JoinStrategy::NestedLoop, b1, b2, b3, 0.0, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_loop_matches_section_4_3_form() {
        let p = ModelParams::table_4a();
        // F(1, 28, 1) = 1*0.035 + 28*0.035 + 1*0.05 = 1.065.
        let f = nested_loop_join_cost(1, 28, 1, &p);
        assert!((f - 1.065).abs() < 1e-9);
    }

    #[test]
    fn chooser_prefers_primary_key_for_one_tuple() {
        let p = ModelParams::table_4a();
        let (s, c) = cheapest_join(1, 28, 1, 1.0, &p);
        assert_eq!(s, JoinStrategy::PrimaryKey);
        assert!((c - (0.035 + 0.05)).abs() < 1e-9);
    }

    #[test]
    fn chooser_prefers_hash_for_bulk_joins() {
        let p = ModelParams::table_4a();
        // 1000 outer tuples in 4 blocks vs 28 inner blocks: primary key
        // would cost 1000 reads; hash costs 32.
        let (s, _) = cheapest_join(4, 28, 2, 1000.0, &p);
        assert_eq!(s, JoinStrategy::Hash);
    }

    #[test]
    fn sort_merge_reduces_to_merge_for_single_blocks() {
        let p = ModelParams::table_4a();
        let c = algebraic_join_cost(JoinStrategy::SortMerge, 1, 1, 1, 5.0, &p);
        // log2(1) = 0: just (1+1) reads + 1 write.
        assert!((c - (2.0 * 0.035 + 0.05)).abs() < 1e-9);
    }

    #[test]
    fn costs_scale_monotonically_with_inner_size() {
        let p = ModelParams::table_4a();
        for s in JoinStrategy::ALL {
            let small = algebraic_join_cost(s, 2, 4, 1, 300.0, &p);
            let large = algebraic_join_cost(s, 2, 64, 1, 300.0, &p);
            assert!(large >= small, "{} not monotone in B2", s.label());
        }
    }
}
