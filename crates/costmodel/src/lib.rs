//! The paper's algebraic cost models (Section 4) and the query-optimizer
//! simulation that validates them.
//!
//! The paper derives per-step I/O formulas for each algorithm — Table 2
//! (iterative) and Table 3 (Dijkstra / A\*) over the notation of Table 1 —
//! instantiates them with the Table 4A parameters, and shows (Table 4B)
//! that the resulting estimates reproduce the measured execution times:
//! "With our algebraic cost models and simulation we were able to predict
//! actual execution time within ten percent."
//!
//! This crate rebuilds that machinery:
//!
//! * [`params`] — [`params::ModelParams`]: Table 4A plus the derived
//!   blocking factors and block counts of Table 1.
//! * [`join_cost`] — the algebraic `F(B1, B2, B3)` over the four join
//!   strategies.
//! * [`iterative_model`] — Table 2's steps `C1..C8`.
//! * [`dijkstra_astar_model`] — Table 3's per-iteration steps for Dijkstra
//!   and A\* (version 3).
//! * [`estimator_model`] — predicted expansion counts, frontier-size and
//!   I/O curves as a function of estimator *tightness* (the v1–v4
//!   comparison, including the landmark estimator of A\* version 4).
//! * [`predict`] — end-to-end prediction from an iteration count, the
//!   Table 4B reproduction, and validation helpers comparing predictions
//!   against the physically metered runs of `atis-algorithms`.
//!
//! The workspace's own validation inverts the paper's: our *physical*
//! engine meters actual block I/O, and tests assert the algebraic model
//! predicts it within a comparable envelope. That check is also available
//! as a runtime artifact — `atis-obs::report` renders any single run's
//! measured per-step I/O beside these models with tolerance verdicts (see
//! `OBSERVABILITY.md`).
//!
//! This crate sits *below* the algorithms in the build DAG (pure math
//! over iteration counts and trace summaries); its cross-validation
//! against live runs of `atis-algorithms` is a dev-dependency only.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod device;
pub mod dijkstra_astar_model;
pub mod estimator_model;
pub mod iterative_model;
pub mod join_cost;
pub mod params;
pub mod predict;
pub mod relation_frontier_model;

pub use device::DiskModel;
pub use dijkstra_astar_model::{BestFirstModel, ModelStep};
pub use estimator_model::{
    alt_tightness, estimator_curve, CurvePoint, EstimatorModel, FRONTIER_SPREAD,
    TIGHTNESS_EUCLIDEAN, TIGHTNESS_MANHATTAN, TIGHTNESS_ZERO,
};
pub use iterative_model::IterativeModel;
pub use join_cost::{algebraic_join_cost, cheapest_join};
pub use params::ModelParams;
pub use predict::{predict_cost, table_4b, AlgorithmKind, Prediction};
pub use relation_frontier_model::RelationFrontierModel;
