//! Predicted frontier-size and I/O curves as a function of estimator
//! tightness — the model behind the A\* version comparison.
//!
//! Tables 2–3 price one *iteration*; they deliberately take the iteration
//! count from an execution trace. This module closes that gap for the
//! best-first family: it predicts the iteration count (and the peak
//! frontier cardinality) from a single scalar describing the estimator,
//! so the v1–v4 comparison can be modelled *before* a run exists.
//!
//! ## The tightness model
//!
//! Write `τ ∈ [0, 1]` for the estimator's *effective* tightness: how much
//! of the gap between the Dijkstra disc and the shortest-path corridor
//! the estimator actually closes. `τ = 0` is Dijkstra (zero estimator),
//! `τ = 1` a perfect oracle that expands only the shortest path.
//!
//! Effective tightness is **not** the geometric ratio `h(u) / d(u, t)`.
//! A best-first search expands every node with `g(u) + h(u) ≤ d(s, t)`,
//! and on a near-uniform grid the Manhattan estimator — geometrically
//! almost exact — makes `g + h` *constant* across the whole s–t diamond:
//! every monotone staircase ties, and the search expands the full
//! plateau. That is why the paper's Table 6 meters A\* v3 at 838
//! diagonal iterations against Dijkstra's 899: near-exact geometry,
//! weak effective guidance. The landmark (ALT) estimator of version 4
//! earns its keep precisely here — triangle bounds through off-path
//! landmarks *vary* across the plateau, breaking the ties that geometry
//! cannot.
//!
//! The expanded set interpolates between the disc (area quadratic in the
//! source–destination hop distance `h`) and the corridor (linear in
//! `h`):
//!
//! ```text
//! N(τ, h) ≈ h · (1 + σ·(1 − τ)·h)      σ = FRONTIER_SPREAD
//! ```
//!
//! clamped to `|R|`. The spread constant σ and the per-estimator τ
//! values are calibrated against the workspace's metered 30×30 runs:
//! with σ = 0.25, `N(0, 58) = 899` — Dijkstra's exact Table 6 diagonal
//! count — and the v1/v3 semi-diagonal predictions land within a few
//! iterations of the metered 465/434.
//!
//! The *frontier peak* — what a tighter estimator shrinks first, and the
//! quantity [`RunTrace::frontier_peak`] meters — follows from the
//! boundary of the expanded region, modelled as a corridor of length `h`
//! and area `N`:
//!
//! ```text
//! peak(τ, h) ≈ 2·(h + N/h)
//! ```
//!
//! At `τ = 1` this degenerates to the corridor's two running edges; at
//! `τ = 0` it is within a small constant of the Dijkstra diamond's
//! perimeter. Predicted I/O then reuses Table 3 verbatim: every expanded
//! node costs one [`BestFirstModel`] iteration.
//!
//! These are *envelope* models — the point is the shape of the curve
//! (quadratic → linear as τ → 1) and the relative ordering of the four
//! A\* versions, not 2%-accuracy per cell. Reports built on them use
//! correspondingly generous tolerances.
//!
//! [`RunTrace::frontier_peak`]: https://docs.rs/atis-algorithms

use crate::dijkstra_astar_model::BestFirstModel;
use crate::params::ModelParams;

/// σ — how fast the expanded set spreads beyond the corridor per unit of
/// estimator slack. Calibrated on the metered 30×30 grid workloads.
pub const FRONTIER_SPREAD: f64 = 0.25;

/// Tightness of the zero estimator (Dijkstra): no guidance at all.
pub const TIGHTNESS_ZERO: f64 = 0.0;

/// Calibrated effective tightness of the Euclidean estimator (A\* v1/v2)
/// on the paper's 20%-variance grid: geometrically a `1/√2`
/// under-estimate on diagonals, and what little guidance remains is
/// largely spent on equal-`f` plateaus (metered semi-diagonal: 465
/// expansions over 44 hops).
pub const TIGHTNESS_EUCLIDEAN: f64 = 0.12;

/// Calibrated effective tightness of the Manhattan estimator (A\* v3):
/// near-exact geometry, but constant `g + h` across the s–t diamond
/// leaves the tie plateau to be expanded almost in full (metered
/// semi-diagonal: 434 expansions over 44 hops; diagonal barely below
/// Dijkstra, exactly as the paper's Table 6 reports).
pub const TIGHTNESS_MANHATTAN: f64 = 0.20;

/// Effective tightness of the landmark (ALT) estimator of A\* v4 with
/// `k` landmarks. Each landmark's triangle bound is *exact* for nodes on
/// a shortest path through it, and — unlike the geometric estimators —
/// the bound varies across equal-`f` plateaus, so its effective
/// tightness is far higher than Manhattan's despite comparable
/// worst-case slack. The `1/√k` decay matches the diminishing returns
/// measured in `BENCH_estimators.json`.
pub fn alt_tightness(landmarks: usize) -> f64 {
    1.0 - 0.25 / (landmarks.max(1) as f64).sqrt()
}

/// One sampled point of a frontier/I-O curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Estimator tightness τ the point was evaluated at.
    pub tightness: f64,
    /// Predicted node expansions (= Table 3 iterations).
    pub iterations: f64,
    /// Predicted peak frontier cardinality.
    pub frontier_peak: f64,
    /// Predicted execution cost, Table 4A units (Table 3 per-iteration
    /// pricing over the predicted iteration count).
    pub cost: f64,
}

/// Frontier-size / I-O predictor for a best-first search guided by an
/// estimator of a given tightness.
#[derive(Debug, Clone, Copy)]
pub struct EstimatorModel {
    p: ModelParams,
    /// τ — the estimator's average tightness, clamped to `[0, 1]`.
    pub tightness: f64,
}

impl EstimatorModel {
    /// Builds the model for one estimator tightness (clamped to `[0, 1]`).
    pub fn new(p: ModelParams, tightness: f64) -> Self {
        EstimatorModel {
            p,
            tightness: tightness.clamp(0.0, 1.0),
        }
    }

    /// Predicted expansions for a query whose shortest path is `hops`
    /// edges long: `h·(1 + σ·(1 − τ)·h)`, clamped to `[1, |R|]`.
    pub fn predicted_iterations(&self, hops: f64) -> f64 {
        let h = hops.max(1.0);
        let n = h * (1.0 + FRONTIER_SPREAD * (1.0 - self.tightness) * h);
        n.clamp(1.0, self.p.r_tuples as f64)
    }

    /// Predicted peak frontier cardinality: the boundary of the expanded
    /// corridor, `2·(h + N/h)`, clamped to `|R|`.
    pub fn predicted_frontier_peak(&self, hops: f64) -> f64 {
        let h = hops.max(1.0);
        let n = self.predicted_iterations(hops);
        (2.0 * (h + n / h)).min(self.p.r_tuples as f64)
    }

    /// Predicted execution cost in Table 4A units: Table 3's per-iteration
    /// pricing applied to the predicted iteration count.
    pub fn predicted_cost(&self, hops: f64) -> f64 {
        BestFirstModel::new(self.p).total(self.predicted_iterations(hops).round() as u64)
    }

    /// Predicted block reads: the read-dominated share of
    /// [`EstimatorModel::predicted_cost`] converted back to blocks. The
    /// frontier scan (`B_r` reads) and the adjacency join dominate; init
    /// and REPLACE traffic are priced by the same Table 3 terms.
    pub fn predicted_block_reads(&self, hops: f64) -> f64 {
        let model = BestFirstModel::new(self.p);
        let n = self.predicted_iterations(hops);
        let per_iter_reads = (model.select_cost() + model.join_step_cost()) / self.p.io.t_read;
        let init_reads = model.init_cost() / self.p.io.t_read;
        init_reads + n * per_iter_reads
    }
}

/// Samples the full frontier/I-O curve over `samples` evenly spaced
/// tightness values in `[0, 1]` for a fixed query length — the raw data
/// behind the "estimator quality" plot in `EXPERIMENTS.md`.
pub fn estimator_curve(p: ModelParams, hops: f64, samples: usize) -> Vec<CurvePoint> {
    let samples = samples.max(2);
    (0..samples)
        .map(|i| {
            let tightness = i as f64 / (samples - 1) as f64;
            let m = EstimatorModel::new(p, tightness);
            CurvePoint {
                tightness,
                iterations: m.predicted_iterations(hops),
                frontier_peak: m.predicted_frontier_peak(hops),
                cost: m.predicted_cost(hops),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tighter_estimators_expand_fewer_nodes_and_cost_less() {
        let p = ModelParams::table_4a();
        let hops = 58.0; // the 30×30 diagonal
        let mut last_iters = f64::INFINITY;
        let mut last_cost = f64::INFINITY;
        for tau in [
            TIGHTNESS_ZERO,
            TIGHTNESS_EUCLIDEAN,
            TIGHTNESS_MANHATTAN,
            alt_tightness(8),
        ] {
            let m = EstimatorModel::new(p, tau);
            let (iters, cost) = (m.predicted_iterations(hops), m.predicted_cost(hops));
            assert!(iters < last_iters, "τ={tau}: {iters} !< {last_iters}");
            assert!(cost < last_cost, "τ={tau}: {cost} !< {last_cost}");
            last_iters = iters;
            last_cost = cost;
        }
    }

    #[test]
    fn dijkstra_end_of_the_curve_matches_table_6_envelope() {
        // Table 6 meters 899 Dijkstra iterations on the 30×30 diagonal;
        // the τ=0 prediction must land in the same regime (and below the
        // |R| = 900 clamp).
        let m = EstimatorModel::new(ModelParams::table_4a(), TIGHTNESS_ZERO);
        let n = m.predicted_iterations(58.0);
        assert!((600.0..=900.0).contains(&n), "{n}");
    }

    #[test]
    fn perfect_estimator_degenerates_to_the_corridor() {
        let m = EstimatorModel::new(ModelParams::table_4a(), 1.0);
        assert_eq!(m.predicted_iterations(58.0), 58.0);
        // Corridor boundary: two running edges, ~4 per unit length.
        assert!(m.predicted_frontier_peak(58.0) <= 4.0 * 58.0 + 4.0);
    }

    #[test]
    fn predictions_clamp_to_the_node_count() {
        let p = ModelParams::for_grid(10); // |R| = 100
        let m = EstimatorModel::new(p, 0.0);
        assert_eq!(m.predicted_iterations(1_000.0), 100.0);
        assert!(m.predicted_frontier_peak(1_000.0) <= 100.0);
    }

    #[test]
    fn alt_tightness_grows_with_landmarks_toward_one() {
        assert!(alt_tightness(4) < alt_tightness(8));
        assert!(alt_tightness(8) < alt_tightness(16));
        assert!(alt_tightness(16) < 1.0);
        assert!(alt_tightness(8) > TIGHTNESS_MANHATTAN);
        assert_eq!(alt_tightness(0), alt_tightness(1)); // guard, not a panic
    }

    #[test]
    fn curve_is_monotone_in_tightness() {
        let curve = estimator_curve(ModelParams::table_4a(), 58.0, 11);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0].tightness, 0.0);
        assert_eq!(curve[10].tightness, 1.0);
        for w in curve.windows(2) {
            assert!(w[1].iterations <= w[0].iterations);
            assert!(w[1].frontier_peak <= w[0].frontier_peak);
            assert!(w[1].cost <= w[0].cost);
        }
    }

    #[test]
    fn block_read_prediction_tracks_the_cost_prediction() {
        let p = ModelParams::table_4a();
        let loose = EstimatorModel::new(p, 0.2);
        let tight = EstimatorModel::new(p, 0.9);
        assert!(tight.predicted_block_reads(58.0) < loose.predicted_block_reads(58.0) / 2.0);
    }

    /// Cross-validation against the physical engine on the paper's own
    /// 30×30 / 20%-variance workload: the calibration queries
    /// (semi-diagonal v1/v3) must sit close, and the independent
    /// Dijkstra diagonal must stay inside the envelope.
    #[test]
    fn tightness_model_brackets_metered_astar_runs() {
        use atis_algorithms::{AStarVersion, Algorithm, Database};
        use atis_graph::{CostModel, Grid, QueryKind};

        let grid = Grid::new(30, CostModel::TWENTY_PERCENT, 1).unwrap();
        let db = Database::open(grid.graph()).unwrap();
        let p = ModelParams::for_grid(30);

        let (s, d) = grid.query_pair(QueryKind::SemiDiagonal);
        for (version, tau) in [
            (AStarVersion::V1, TIGHTNESS_EUCLIDEAN),
            (AStarVersion::V3, TIGHTNESS_MANHATTAN),
        ] {
            let trace = db.run(Algorithm::AStar(version), s, d).unwrap();
            let hops = (trace.path.as_ref().unwrap().nodes.len() - 1) as f64;
            let predicted = EstimatorModel::new(p, tau).predicted_iterations(hops);
            let measured = trace.iterations as f64;
            let ratio = predicted / measured;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{version:?}: predicted {predicted:.0}, measured {measured}"
            );
        }

        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let trace = db.run(Algorithm::Dijkstra, s, d).unwrap();
        let predicted = EstimatorModel::new(p, TIGHTNESS_ZERO).predicted_iterations(58.0);
        let ratio = predicted / trace.iterations as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "Dijkstra: {predicted:.0} vs {}",
            trace.iterations
        );
    }
}
