//! End-to-end prediction and the Table 4B reproduction.
//!
//! "The simulation took the number of iterations from the execution trace
//! of the EQUEL programs to predict the execution-time" — [`predict_cost`]
//! does the same from a `RunTrace`'s iteration count,
//! and [`table_4b`] regenerates the paper's worked example from Table 6's
//! iteration counts.

use crate::dijkstra_astar_model::BestFirstModel;
use crate::iterative_model::IterativeModel;
use crate::params::ModelParams;

/// Which cost model applies to a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmKind {
    /// Table 2 (iterative BFS).
    Iterative,
    /// Table 3 (Dijkstra or a status-frontier A\*).
    BestFirst,
}

/// One predicted cost with its inputs, for experiment tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Iterations the prediction was fed.
    pub iterations: u64,
    /// Predicted cost in Table 4A units.
    pub cost: f64,
}

/// Predicts the execution cost of a run from its iteration count, exactly
/// as the paper's optimizer simulation does.
pub fn predict_cost(kind: AlgorithmKind, iterations: u64, params: ModelParams) -> Prediction {
    let cost = match kind {
        AlgorithmKind::Iterative => IterativeModel::new(params).total(iterations),
        AlgorithmKind::BestFirst => BestFirstModel::new(params).total(iterations),
    };
    Prediction { iterations, cost }
}

/// Table 4B, regenerated: estimated costs on the 30×30 grid with 20% edge
/// cost variance, from Table 6's iteration counts. Rows are
/// (algorithm, horizontal, semi-diagonal, diagonal).
pub fn table_4b() -> [(&'static str, [Prediction; 3]); 3] {
    let p = ModelParams::table_4a();
    let bf = |iters: u64| predict_cost(AlgorithmKind::BestFirst, iters, p);
    let it = |iters: u64| predict_cost(AlgorithmKind::Iterative, iters, p);
    [
        ("Dijkstra", [bf(488), bf(767), bf(899)]),
        ("A* (version 3)", [bf(29), bf(407), bf(838)]),
        ("Iterative", [it(59), it(59), it(59)]),
    ]
}

/// The values Table 4B prints, for comparison in tests and experiment
/// output (same row/column order as [`table_4b`]).
pub const PAPER_TABLE_4B: [(&str, [f64; 3]); 3] = [
    ("Dijkstra", [1055.6, 1656.8, 1941.2]),
    ("A* (version 3)", [66.7, 881.2, 1809.8]),
    ("Iterative", [176.9, 176.9, 176.9]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_4b_best_first_rows_match_the_paper_within_2_percent() {
        let ours = table_4b();
        for (row, (label, cells)) in ours.iter().enumerate().take(2) {
            let (plabel, pcells) = PAPER_TABLE_4B[row];
            assert_eq!(*label, plabel);
            for (c, pred) in cells.iter().enumerate() {
                let err = (pred.cost - pcells[c]).abs() / pcells[c];
                assert!(
                    err < 0.02,
                    "{label} col {c}: predicted {:.1}, paper {:.1}",
                    pred.cost,
                    pcells[c]
                );
            }
        }
    }

    #[test]
    fn table_4b_iterative_row_is_below_the_papers_print() {
        // The paper's 176.9 implies a 2-block current set; the
        // no-backtracking estimate (and our physical engine) land near
        // 115-125. Assert the documented envelope and the relative
        // ordering that drives every conclusion: Iterative far below
        // Dijkstra/A* on the diagonal.
        let ours = table_4b();
        let iterative = ours[2].1[2].cost;
        assert!((110.0..180.0).contains(&iterative), "{iterative}");
        assert!(iterative < ours[0].1[2].cost / 5.0);
    }

    #[test]
    fn predictions_scale_linearly_with_iterations() {
        let p = ModelParams::table_4a();
        let a = predict_cost(AlgorithmKind::BestFirst, 100, p).cost;
        let b = predict_cost(AlgorithmKind::BestFirst, 200, p).cost;
        let c = predict_cost(AlgorithmKind::BestFirst, 300, p).cost;
        assert!(((b - a) - (c - b)).abs() < 1e-9);
    }
}
