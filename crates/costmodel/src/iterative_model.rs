//! Table 2 — the algebraic cost of the iterative BFS algorithm.
//!
//! ```text
//! C1 = I                                   create R
//! C2 = B_s·t_read + B_r·t_write            initialise R with all nodes
//! C3 = 2(B_r·log B_r + B_r)·t_update       index & sort R by node id
//! C4 = (I_l + S_r)·t_update + B_r·t_read   mark start current, count
//! per iteration i:
//!   C5 = B_r·t_read                        fetch current nodes
//!   C6 = F(B_c, B_s, B_join)               join for the neighbours
//!   C7 = 2·B_r·t_update                    relax + flip statuses
//!   C8 = B_r·t_read                        count current nodes
//! Total = C1 + C2 + C3 + C4 + Σ Γ_i
//! ```
//!
//! The per-iteration current-set size is the dynamic quantity; the paper
//! approximates it as `|R| / B(L)` ("if there is no backtracking at all").

use crate::dijkstra_astar_model::ModelStep;
use crate::join_cost;
use crate::params::ModelParams;
use atis_storage::JoinStrategy;

/// Table 2 instantiated over a parameter set.
#[derive(Debug, Clone, Copy)]
pub struct IterativeModel {
    p: ModelParams,
    /// Join strategy used for step C6 (`None` = let the optimizer pick).
    pub forced_join: Option<JoinStrategy>,
}

impl IterativeModel {
    /// Builds the model with the paper's forced nested-loop join.
    pub fn new(p: ModelParams) -> Self {
        IterativeModel {
            p,
            forced_join: Some(JoinStrategy::NestedLoop),
        }
    }

    /// Lets the optimizer pick the join strategy per iteration.
    pub fn with_optimizer(mut self) -> Self {
        self.forced_join = None;
        self
    }

    /// `C1 + C2 + C3 + C4`.
    pub fn init_cost(&self) -> f64 {
        let p = &self.p;
        let b_r = p.b_r() as f64;
        let b_s = p.b_s() as f64;
        let c1 = p.io.t_create;
        let c2 = b_s * p.io.t_read + b_r * p.io.t_write;
        let c3 = 2.0 * (b_r * b_r.log2().max(0.0) + b_r) * p.io.t_update;
        let c4 = (p.io.isam_levels as f64 + p.selection_cardinality as f64) * p.io.t_update
            + b_r * p.io.t_read;
        c1 + c2 + c3 + c4
    }

    /// Step 5: fetch the current nodes (a scan of `R`).
    pub fn select_cost(&self) -> f64 {
        self.p.b_r() as f64 * self.p.io.t_read
    }

    /// Step 6: the join `F(B_c, B_s, B_join)` for `current_nodes` current
    /// nodes.
    pub fn join_step_cost(&self, current_nodes: f64) -> f64 {
        let p = &self.p;
        let b_c = p.b_c(current_nodes);
        let b_join = p.b_join(current_nodes * p.avg_degree);
        match self.forced_join {
            Some(s) => join_cost::algebraic_join_cost(s, b_c, p.b_s(), b_join, current_nodes, p),
            None => join_cost::cheapest_join(b_c, p.b_s(), b_join, current_nodes, p).1,
        }
    }

    /// Step 7: the two REPLACE passes (`2·B_r·t_update`).
    pub fn update_step_cost(&self) -> f64 {
        2.0 * self.p.b_r() as f64 * self.p.io.t_update
    }

    /// Step 8: count the current nodes (a scan of `R`).
    pub fn count_cost(&self) -> f64 {
        self.p.b_r() as f64 * self.p.io.t_read
    }

    /// `Γ = C5 + C6 + C7 + C8` for an iteration with `current_nodes`
    /// current nodes.
    pub fn iteration_cost(&self, current_nodes: f64) -> f64 {
        self.select_cost()
            + self.join_step_cost(current_nodes)
            + self.update_step_cost()
            + self.count_cost()
    }

    /// The model as named steps (Table 2's `C1..C8`); per-iteration steps
    /// are computed for an average current-set of `current_nodes`.
    pub fn steps(&self, current_nodes: f64) -> Vec<ModelStep> {
        let p = &self.p;
        let b_r = p.b_r() as f64;
        let b_s = p.b_s() as f64;
        vec![
            ModelStep {
                label: "C1: create R".into(),
                cost: p.io.t_create,
                per_iteration: false,
            },
            ModelStep {
                label: "C2: initialise R from S".into(),
                cost: b_s * p.io.t_read + b_r * p.io.t_write,
                per_iteration: false,
            },
            ModelStep {
                label: "C3: index & sort R".into(),
                cost: 2.0 * (b_r * b_r.log2().max(0.0) + b_r) * p.io.t_update,
                per_iteration: false,
            },
            ModelStep {
                label: "C4: mark start node".into(),
                cost: (p.io.isam_levels as f64 + p.selection_cardinality as f64) * p.io.t_update
                    + b_r * p.io.t_read,
                per_iteration: false,
            },
            ModelStep {
                label: "C5: fetch current nodes (scan R)".into(),
                cost: self.select_cost(),
                per_iteration: true,
            },
            ModelStep {
                label: "C6: join for neighbours".into(),
                cost: self.join_step_cost(current_nodes),
                per_iteration: true,
            },
            ModelStep {
                label: "C7: relax + flip statuses (2 REPLACE passes)".into(),
                cost: self.update_step_cost(),
                per_iteration: true,
            },
            ModelStep {
                label: "C8: count current nodes (scan R)".into(),
                cost: self.count_cost(),
                per_iteration: true,
            },
        ]
    }

    /// Total cost for `iterations` rounds, using the paper's average
    /// current-set estimate `|R| / B(L)`.
    pub fn total(&self, iterations: u64) -> f64 {
        let avg_current = self.p.r_tuples as f64 / iterations.max(1) as f64;
        self.total_with_current(iterations, avg_current)
    }

    /// Total cost with an explicit average current-set size (e.g. taken
    /// from an execution trace, as the paper's simulation does).
    pub fn total_with_current(&self, iterations: u64, avg_current: f64) -> f64 {
        self.init_cost() + iterations as f64 * self.iteration_cost(avg_current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_cost_matches_hand_computation() {
        // Table 4A instance: C1 = 0.5, C2 = 28*.035 + 4*.05 = 1.18,
        // C3 = 2*(4*2+4)*.085 = 2.04, C4 = 4*.085 + 4*.035 = 0.48.
        let m = IterativeModel::new(ModelParams::table_4a());
        assert!((m.init_cost() - 4.2).abs() < 1e-9);
    }

    #[test]
    fn iteration_cost_matches_hand_computation() {
        // 15.25 current nodes -> B_c = 1, B_join = 1:
        // C5 = .14, C6 = 1.065, C7 = .68, C8 = .14 -> 2.025.
        let m = IterativeModel::new(ModelParams::table_4a());
        assert!((m.iteration_cost(900.0 / 59.0) - 2.025).abs() < 1e-9);
    }

    #[test]
    fn total_is_close_to_table_4b_shape() {
        // The paper's Table 4B prints 176.9 for the iterative algorithm at
        // 59 iterations; the printed value implies a larger current-set
        // footprint (B_c = 2) than the no-backtracking estimate. Our
        // formula gives ~124 and our physical engine measures ~115 — the
        // model must stay in that envelope.
        let m = IterativeModel::new(ModelParams::table_4a());
        let t = m.total(59);
        assert!((110.0..140.0).contains(&t), "{t}");
    }

    #[test]
    fn optimizer_never_costs_more_than_forced_nested_loop() {
        let p = ModelParams::table_4a();
        let forced = IterativeModel::new(p);
        let opt = IterativeModel::new(p).with_optimizer();
        for current in [1.0, 15.0, 100.0, 500.0] {
            assert!(opt.iteration_cost(current) <= forced.iteration_cost(current) + 1e-12);
        }
    }

    #[test]
    fn steps_sum_to_the_closed_form() {
        let m = IterativeModel::new(ModelParams::table_4a());
        for iters in [1u64, 19, 59] {
            let avg = 900.0 / iters as f64;
            let from_steps: f64 = m
                .steps(avg)
                .iter()
                .map(|s| {
                    if s.per_iteration {
                        s.cost * iters as f64
                    } else {
                        s.cost
                    }
                })
                .sum();
            let closed = m.total_with_current(iters, avg);
            assert!(
                (from_steps - closed).abs() < 1e-9,
                "{iters}: {from_steps} vs {closed}"
            );
        }
    }

    #[test]
    fn iteration_cost_grows_with_current_set() {
        let m = IterativeModel::new(ModelParams::table_4a());
        assert!(m.iteration_cost(600.0) > m.iteration_cost(10.0));
    }
}
