//! The resolved cross-crate call graph.
//!
//! Nodes are the function items parsed by [`crate::parser`]; edges are
//! call sites found in their bodies, resolved by name plus a
//! lightweight, flow-insensitive *type environment*. The **ambiguity
//! policy**: when the receiver or path tells us the target type, only
//! that type's methods are candidates — even if that leaves zero
//! candidates (a std or vendored type adds no edges). When nothing
//! pins the type down, an edge is added to *every* candidate so the
//! safety passes (panic reachability, metered-I/O escape, lock order)
//! over-approximate rather than miss. The three call forms:
//!
//! * **Path-qualified** `Qual::name(…)` — an uppercase `Qual` (or
//!   `Self`, substituted from the enclosing impl) is a type: candidates
//!   are exactly that type's methods named `name`, possibly none —
//!   `Box::new(…)` and `Vec::with_capacity(…)` must not fan out to
//!   every workspace `new`. A lowercase `Qual` is a module/crate path
//!   segment: candidates are free functions named `name`, preferring
//!   (1) the crate matching `Qual` (with `atis_` normalisation), then
//!   (2) the caller's own crate — module paths are almost always
//!   crate-local — then (3) any free function. Uppercase `name` (a
//!   tuple-variant constructor) is skipped.
//! * **Method** `recv.name(…)` — the receiver is typed when it is
//!   `self` (the enclosing impl), a parameter or `let` binding with a
//!   recoverable type, or a direct `self.field` access (struct field
//!   types are parsed workspace-wide). A typed receiver resolves to
//!   that type's methods only; an untyped receiver (chained calls,
//!   nested field paths, `dyn`/`impl Trait`, generics) fans out to
//!   every workspace method named `name`.
//! * **Bare** `name(…)` — candidates are free functions named `name`
//!   in the same crate, else anywhere in the workspace.
//!
//! Two guards tame the untyped fan-out. **Crate visibility**: crate C
//! only dispatches into crate D when C names D (`atis_<d>` appears in
//! C's sources) — storage can never "call" serve. **Std collisions**:
//! an untyped receiver never fans out on a method name from the std
//! prelude/collection/iterator API ([`STD_METHODS`] — `len`, `insert`,
//! `get`, …); those calls are overwhelmingly `Vec`/`BTreeMap`/`Option`
//! operations, and typed receivers still resolve them precisely.
//!
//! Known approximations, deliberate in both directions: trait-default
//! methods are keyed under the trait's name, so a typed receiver can
//! miss a default method inherited from a trait; `let` rebinding is
//! flow-insensitive (the last recoverable binding in the body wins and
//! an opaque rebinding erases the type); a `Type::CONST`
//! associated-const initialiser types the binding as `Type`; dynamic
//! dispatch into a crate the caller never names (callback objects
//! registered by a higher layer) is invisible. Calls to functions the
//! workspace does not define resolve to nothing.
//! `cargo run -p atis-analyze -- graph --dot` dumps the graph.

use crate::lexer::{Token, TokenKind};
use crate::parser::{effective_type, is_keyword, FnItem, ParsedFile};
use std::collections::BTreeMap;

/// One function node.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the owning file in [`CallGraph::files`].
    pub file: usize,
    /// Index of the item in that file's `fns`.
    pub item: usize,
    /// Crate identifier (see [`crate::parser::crate_of`]).
    pub krate: String,
    /// Function name.
    pub name: String,
    /// Impl/trait self type for methods.
    pub self_ty: Option<String>,
    /// Repo-relative path of the defining file.
    pub path: String,
    /// 1-based line of the definition.
    pub line: u32,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Call {
    /// Callee node index.
    pub callee: usize,
    /// 1-based line of the call site.
    pub line: u32,
    /// Token index of the callee name at the call site (used by the
    /// lock-order pass to interleave calls with guard tracking).
    pub tok: usize,
}

/// The whole-workspace call graph. Owns the parsed files so node body
/// ranges stay resolvable.
#[derive(Debug)]
pub struct CallGraph {
    /// The parsed source files the nodes index into.
    pub files: Vec<ParsedFile>,
    /// All function nodes.
    pub nodes: Vec<FnNode>,
    /// Outgoing calls per node (parallel to `nodes`).
    pub calls: Vec<Vec<Call>>,
}

impl CallGraph {
    /// Builds the graph from parsed files.
    pub fn build(files: Vec<ParsedFile>) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for (ii, f) in file.fns.iter().enumerate() {
                nodes.push(FnNode {
                    file: fi,
                    item: ii,
                    krate: file.krate.clone(),
                    name: f.name.clone(),
                    self_ty: f.self_ty.clone(),
                    path: file.path.clone(),
                    line: f.line,
                });
            }
        }
        // Name index over all nodes.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            by_name.entry(n.name.as_str()).or_default().push(id);
        }
        // Field types across the workspace: (struct, field) → effective
        // type (first definition wins on cross-crate name collisions),
        // plus field name → type when the name types identically in
        // every struct that declares it (used for receivers reached
        // through a guard or intermediate value, `cur.epochs.bump(…)`).
        let mut field_types: BTreeMap<(&str, &str), &str> = BTreeMap::new();
        let mut unique_fields: BTreeMap<&str, Option<&str>> = BTreeMap::new();
        for file in &files {
            for s in &file.structs {
                for (f, ty) in &s.fields {
                    field_types
                        .entry((s.name.as_str(), f.as_str()))
                        .or_insert(ty.as_str());
                    unique_fields
                        .entry(f.as_str())
                        .and_modify(|seen| {
                            if *seen != Some(ty.as_str()) {
                                *seen = None; // conflicting types: opaque
                            }
                        })
                        .or_insert(Some(ty.as_str()));
                }
            }
        }
        // Crate visibility: crate C can dispatch into crate D only when
        // C *names* D (`atis_<d>` appears somewhere in C) or C == D.
        // Dynamic dispatch into a crate the caller never names (a
        // callback object registered by a higher layer) is out of
        // scope — a documented approximation.
        let mut crate_deps: BTreeMap<&str, std::collections::BTreeSet<&str>> = BTreeMap::new();
        for file in &files {
            let entry = crate_deps.entry(file.krate.as_str()).or_default();
            for t in &file.tokens {
                if t.kind == TokenKind::Ident {
                    if let Some(dep) = t.text.strip_prefix("atis_") {
                        entry.insert(dep);
                    }
                }
            }
        }
        let mut calls = vec![Vec::new(); nodes.len()];
        for (id, node) in nodes.iter().enumerate() {
            let file = &files[node.file];
            let item = &file.fns[node.item];
            let Some((open, close)) = item.body else {
                continue;
            };
            // Token ranges of *other* fns nested inside this body are
            // skipped so a nested item's calls are attributed to it.
            let nested: Vec<(usize, usize)> = file
                .fns
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != node.item)
                .filter_map(|(_, g)| g.body)
                .filter(|&(b, e)| b > open && e < close)
                .collect();
            let toks = &file.tokens;
            let locals = local_types(toks, open, close, &nested, item);
            let mut i = open + 1;
            while i < close {
                if let Some(&(_, e)) = nested.iter().find(|&&(b, e)| i >= b && i <= e) {
                    i = e + 1;
                    continue;
                }
                let t = &toks[i];
                let is_call = t.kind == TokenKind::Ident
                    && !is_keyword(&t.text)
                    && toks.get(i + 1).is_some_and(|p| p.is_punct('('));
                if is_call {
                    let name = t.text.as_str();
                    let prev = i.checked_sub(1).map(|j| &toks[j]);
                    let candidates = if prev.is_some_and(|p| p.is_punct('.')) {
                        // method call: `recv.name(…)`
                        let recv =
                            classify_receiver(toks, i, node, &locals, &field_types, &unique_fields);
                        resolve_method(&nodes, &by_name, &crate_deps, name, &recv, node)
                    } else if prev.is_some_and(|p| p.is_punct(':'))
                        && i >= 2
                        && toks[i - 2].is_punct(':')
                    {
                        // qualified call: `Qual::name(…)`
                        if name.starts_with(char::is_uppercase) {
                            Vec::new() // tuple-variant constructor
                        } else {
                            let qual = toks
                                .get(i.wrapping_sub(3))
                                .and_then(|q| (q.kind == TokenKind::Ident).then(|| q.text.clone()));
                            resolve_qualified(
                                &nodes,
                                &by_name,
                                &crate_deps,
                                name,
                                qual.as_deref(),
                                node,
                            )
                        }
                    } else if name.starts_with(char::is_uppercase) {
                        Vec::new() // `Some(…)`, tuple struct/variant
                    } else {
                        resolve_bare(&nodes, &by_name, &crate_deps, name, node)
                    };
                    for callee in candidates {
                        if calls[id]
                            .last()
                            .is_some_and(|c: &Call| c.callee == callee && c.tok == i)
                        {
                            continue;
                        }
                        calls[id].push(Call {
                            callee,
                            line: t.line,
                            tok: i,
                        });
                    }
                }
                i += 1;
            }
        }
        CallGraph {
            files,
            nodes,
            calls,
        }
    }

    /// Finds a node by crate and name (and, when given, self type).
    /// Returns the first match in file order.
    pub fn node(&self, krate: &str, name: &str, self_ty: Option<&str>) -> Option<usize> {
        self.nodes.iter().position(|n| {
            n.krate == krate
                && n.name == name
                && (self_ty.is_none() || n.self_ty.as_deref() == self_ty)
        })
    }

    /// Deduplicated callee ids of `id`.
    pub fn callees(&self, id: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self.calls[id].iter().map(|c| c.callee).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A short human label: `crate::[SelfTy::]name`.
    pub fn label(&self, id: usize) -> String {
        let n = &self.nodes[id];
        match &n.self_ty {
            Some(ty) => format!("{}::{}::{}", n.krate, ty, n.name),
            None => format!("{}::{}", n.krate, n.name),
        }
    }

    /// Iterates the token indices of `id`'s body, excluding nested fn
    /// items. Returns `(open, close, nested_ranges)`; `None` if
    /// bodiless.
    pub(crate) fn body_span(&self, id: usize) -> Option<BodySpan> {
        let node = &self.nodes[id];
        let file = &self.files[node.file];
        let (open, close) = file.fns[node.item].body?;
        let nested = file
            .fns
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != node.item)
            .filter_map(|(_, g)| g.body)
            .filter(|&(b, e)| b > open && e < close)
            .collect();
        Some((open, close, nested))
    }

    /// Renders the graph in Graphviz DOT format (one node per function,
    /// one edge per deduplicated call pair).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n");
        for (id, n) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "  n{id} [label=\"{}\\n{}:{}\"];\n",
                self.label(id),
                n.path,
                n.line
            ));
        }
        for (id, _) in self.nodes.iter().enumerate() {
            for callee in self.callees(id) {
                out.push_str(&format!("  n{id} -> n{callee};\n"));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Breadth-first reachability from `roots`; returns, for every
    /// node, the parent hop `(caller, call_line)` discovered first
    /// (roots map to themselves with line 0).
    pub(crate) fn reach_from(
        &self,
        roots: &[usize],
        stop_at: &dyn Fn(usize) -> bool,
    ) -> BTreeMap<usize, (usize, u32)> {
        let mut parent: BTreeMap<usize, (usize, u32)> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if parent.insert(r, (r, 0)).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            if stop_at(id) {
                continue; // the node itself is reachable; its callees are not
            }
            for call in &self.calls[id] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(call.callee) {
                    e.insert((id, call.line));
                    queue.push_back(call.callee);
                }
            }
        }
        parent
    }

    /// Reconstructs the call-chain witness from a root down to `id`
    /// using a `reach_from` parent map: one string per hop.
    pub(crate) fn witness(&self, parent: &BTreeMap<usize, (usize, u32)>, id: usize) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = id;
        while let Some(&(p, line)) = parent.get(&cur) {
            let n = &self.nodes[cur];
            if p == cur {
                chain.push(format!("{} ({}:{})", self.label(cur), n.path, n.line));
                break;
            }
            chain.push(format!(
                "{} ({}:{}) <- called at {}:{}",
                self.label(cur),
                n.path,
                n.line,
                self.nodes[p].path,
                line
            ));
            cur = p;
        }
        chain.reverse();
        chain
    }
}

/// One function body's token extent: `(open brace, close brace,
/// nested fn ranges to skip)`.
pub(crate) type BodySpan = (usize, usize, Vec<(usize, usize)>);

/// Normalises a path qualifier against a crate id: `atis_storage` and
/// `atis-storage` both match crate `storage`.
fn qual_matches_crate(qual: &str, krate: &str) -> bool {
    let q = qual.strip_prefix("atis_").unwrap_or(qual);
    q == krate || qual == krate
}

/// How much the call site tells us about a method receiver.
enum Recv {
    /// Literally `self` — the enclosing impl's type.
    SelfTy,
    /// A binding or field whose effective type is known.
    Typed(String),
    /// Anything else: chained calls, nested paths, opaque bindings.
    Unknown,
}

/// Crate-visibility check: can `caller`'s crate dispatch into the
/// crate of node `id`? True for the same crate and for any crate the
/// caller's crate names via an `atis_*` path or import.
fn visible(
    nodes: &[FnNode],
    deps: &BTreeMap<&str, std::collections::BTreeSet<&str>>,
    caller: &FnNode,
    id: usize,
) -> bool {
    let ck = caller.krate.as_str();
    let dk = nodes[id].krate.as_str();
    ck == dk || deps.get(ck).is_some_and(|d| d.contains(dk))
}

/// Method names that collide with the std prelude / collection /
/// iterator API. An *untyped* receiver never fans out on these — such
/// calls are overwhelmingly `Vec`/`BTreeMap`/`Option` operations, and
/// letting them reach same-named workspace accessors manufactures
/// absurd edges (`guard.map.len()` → `RouteCache::len`). Typed
/// receivers still resolve them precisely.
const STD_METHODS: &[&str] = &[
    "append",
    "chain",
    "clear",
    "clone",
    "cloned",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "default",
    "drain",
    "entry",
    "enumerate",
    "extend",
    "filter",
    "find",
    "first",
    "fold",
    "get",
    "get_mut",
    "insert",
    "is_empty",
    "iter",
    "iter_mut",
    "keys",
    "last",
    "len",
    "map",
    "max",
    "min",
    "new",
    "next",
    "pop",
    "push",
    "remove",
    "replace",
    "retain",
    "rev",
    "sum",
    "take",
    "values",
    "zip",
];

/// Classifies the receiver of the method call whose name token is at
/// `i` (so `toks[i - 1]` is the `.`).
fn classify_receiver(
    toks: &[Token],
    i: usize,
    caller: &FnNode,
    locals: &BTreeMap<String, String>,
    field_types: &BTreeMap<(&str, &str), &str>,
    unique_fields: &BTreeMap<&str, Option<&str>>,
) -> Recv {
    if i < 2 {
        return Recv::Unknown;
    }
    let r = &toks[i - 2];
    if r.kind != TokenKind::Ident {
        return Recv::Unknown; // `foo().m(`, `xs[0].m(`, literals…
    }
    if r.is_ident("self") {
        // `self.m(` — but not the tail of a longer chain.
        return if i >= 3 && toks[i - 3].is_punct('.') {
            Recv::Unknown
        } else {
            Recv::SelfTy
        };
    }
    if is_keyword(&r.text) {
        return Recv::Unknown;
    }
    if i >= 3 && toks[i - 3].is_punct('.') {
        // `….field.m(` — precise for a direct `self.field.m(`; for a
        // longer chain the field name alone decides, but only when it
        // types identically in every struct that declares it.
        if i >= 4 && toks[i - 4].is_ident("self") && !(i >= 5 && toks[i - 5].is_punct('.')) {
            if let Some(st) = &caller.self_ty {
                if let Some(ty) = field_types.get(&(st.as_str(), r.text.as_str())) {
                    return Recv::Typed((*ty).to_string());
                }
            }
        }
        if let Some(Some(ty)) = unique_fields.get(r.text.as_str()) {
            return Recv::Typed((*ty).to_string());
        }
        return Recv::Unknown;
    }
    if i >= 3 && toks[i - 3].is_punct(':') {
        return Recv::Unknown; // path-qualified receiver `m::ITEM.m(`
    }
    match locals.get(&r.text) {
        Some(ty) => Recv::Typed(ty.clone()),
        None => Recv::Unknown,
    }
}

/// Builds the flow-insensitive type environment for one body: parameter
/// types from the signature plus `let` bindings whose initialiser or
/// annotation pins down an effective type. A rebinding with an opaque
/// type *erases* the name so later calls fan out conservatively.
fn local_types(
    toks: &[Token],
    open: usize,
    close: usize,
    nested: &[(usize, usize)],
    item: &FnItem,
) -> BTreeMap<String, String> {
    let mut env = BTreeMap::new();
    for (name, ty) in &item.params {
        if let Some(ty) = ty {
            env.insert(name.clone(), ty.clone());
        }
    }
    let mut i = open + 1;
    while i < close {
        if let Some(&(_, e)) = nested.iter().find(|&&(b, e)| i >= b && i <= e) {
            i = e + 1;
            continue;
        }
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name_tok) = toks.get(j) {
                if name_tok.kind == TokenKind::Ident && !is_keyword(&name_tok.text) {
                    let k = j + 1;
                    if toks.get(k).is_some_and(|t| t.is_punct(':'))
                        && !toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                    {
                        // `let x: Type = …` — annotation to `=`/`;`.
                        let mut b = k + 1;
                        let mut d = 0i32;
                        while b < close {
                            let u = &toks[b];
                            if u.is_punct('(')
                                || u.is_punct('[')
                                || u.is_punct('{')
                                || u.is_punct('<')
                            {
                                d += 1;
                            } else if (u.is_punct('>') && !toks[b - 1].is_punct('-'))
                                || u.is_punct(')')
                                || u.is_punct(']')
                                || u.is_punct('}')
                            {
                                d -= 1;
                            } else if d == 0 && (u.is_punct('=') || u.is_punct(';')) {
                                break;
                            }
                            b += 1;
                        }
                        match effective_type(toks, k + 1, b) {
                            Some(ty) => {
                                env.insert(name_tok.text.clone(), ty);
                            }
                            None => {
                                env.remove(&name_tok.text);
                            }
                        }
                    } else if toks.get(k).is_some_and(|t| t.is_punct('='))
                        && !toks.get(k + 1).is_some_and(|t| t.is_punct('='))
                    {
                        match init_type(toks, k + 1) {
                            Some(ty) => {
                                env.insert(name_tok.text.clone(), ty);
                            }
                            None => {
                                env.remove(&name_tok.text);
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
    env
}

/// Types a `let` initialiser by its leading tokens: `Type::ctor(…)`,
/// `Type { … }`, and `Tuple(…)` forms bind `Type`; `Arc::new(…)` /
/// `Rc::new(…)` / `Box::new(…)` bind the pointee. Lowercase calls,
/// SCREAMING consts, and anything else are opaque (`None`).
fn init_type(toks: &[Token], m: usize) -> Option<String> {
    let t = toks.get(m)?;
    if t.kind != TokenKind::Ident {
        return None;
    }
    if !t.text.starts_with(char::is_uppercase) || !t.text.contains(char::is_lowercase) {
        return None;
    }
    if matches!(t.text.as_str(), "Arc" | "Rc" | "Box")
        && toks.get(m + 1).is_some_and(|a| a.is_punct(':'))
        && toks.get(m + 2).is_some_and(|a| a.is_punct(':'))
        && toks.get(m + 3).is_some_and(|a| a.is_ident("new"))
        && toks.get(m + 4).is_some_and(|a| a.is_punct('('))
    {
        return init_type(toks, m + 5);
    }
    let next = toks.get(m + 1)?;
    let qualified = next.is_punct(':') && toks.get(m + 2).is_some_and(|a| a.is_punct(':'));
    if qualified || next.is_punct('{') || next.is_punct('(') {
        return Some(t.text.clone());
    }
    None
}

fn resolve_method(
    nodes: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    deps: &BTreeMap<&str, std::collections::BTreeSet<&str>>,
    name: &str,
    recv: &Recv,
    caller: &FnNode,
) -> Vec<usize> {
    let Some(ids) = by_name.get(name) else {
        return Vec::new();
    };
    let methods = |ty: Option<&str>| -> Vec<usize> {
        ids.iter()
            .copied()
            .filter(|&id| match ty {
                Some(ty) => nodes[id].self_ty.as_deref() == Some(ty),
                None => nodes[id].self_ty.is_some() && visible(nodes, deps, caller, id),
            })
            .collect()
    };
    match recv {
        Recv::SelfTy => {
            if let Some(ty) = &caller.self_ty {
                let own = methods(Some(ty));
                if !own.is_empty() {
                    return own;
                }
            }
            if STD_METHODS.contains(&name) {
                return Vec::new(); // `self.len()` etc. via Deref: std
            }
            methods(None) // inherited trait method: fan out
        }
        Recv::Typed(ty) => {
            let ty = if ty == "Self" {
                caller.self_ty.as_deref().unwrap_or("Self")
            } else {
                ty.as_str()
            };
            methods(Some(ty)) // possibly empty: std/foreign type
        }
        Recv::Unknown => {
            if STD_METHODS.contains(&name) {
                return Vec::new();
            }
            methods(None)
        }
    }
}

fn resolve_qualified(
    nodes: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    deps: &BTreeMap<&str, std::collections::BTreeSet<&str>>,
    name: &str,
    qual: Option<&str>,
    caller: &FnNode,
) -> Vec<usize> {
    let Some(ids) = by_name.get(name) else {
        return Vec::new();
    };
    let qual = match qual {
        Some("Self") => caller.self_ty.clone(),
        Some(q) => Some(q.to_string()),
        None => None,
    };
    if let Some(q) = &qual {
        if q.starts_with(char::is_uppercase) {
            // Type-qualified: exactly the type's methods. A type the
            // workspace never implements (std, vendored) adds no edges
            // — `Box::new(…)` must not fan out to every `new`.
            return ids
                .iter()
                .copied()
                .filter(|&id| nodes[id].self_ty.as_deref() == Some(q.as_str()))
                .collect();
        }
        // Module/crate-qualified free functions: the matching crate,
        // else the caller's crate (module paths are almost always
        // crate-local), else anywhere.
        let free: Vec<usize> = ids
            .iter()
            .copied()
            .filter(|&id| nodes[id].self_ty.is_none())
            .collect();
        let in_crate: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&id| qual_matches_crate(q, &nodes[id].krate))
            .collect();
        if !in_crate.is_empty() {
            return in_crate;
        }
        let same_crate: Vec<usize> = free
            .iter()
            .copied()
            .filter(|&id| nodes[id].krate == caller.krate)
            .collect();
        if !same_crate.is_empty() {
            return same_crate;
        }
        return free
            .into_iter()
            .filter(|&id| visible(nodes, deps, caller, id))
            .collect();
    }
    ids.clone()
}

fn resolve_bare(
    nodes: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    deps: &BTreeMap<&str, std::collections::BTreeSet<&str>>,
    name: &str,
    caller: &FnNode,
) -> Vec<usize> {
    let Some(ids) = by_name.get(name) else {
        return Vec::new();
    };
    let free: Vec<usize> = ids
        .iter()
        .copied()
        .filter(|&id| nodes[id].self_ty.is_none())
        .collect();
    let same_crate: Vec<usize> = free
        .iter()
        .copied()
        .filter(|&id| nodes[id].krate == caller.krate)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    free.into_iter()
        .filter(|&id| visible(nodes, deps, caller, id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser::parse_file;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let parsed = files
            .iter()
            .map(|(p, s)| {
                let (tokens, _) = lexer::lex(s);
                parse_file(p, tokens)
            })
            .collect();
        CallGraph::build(parsed)
    }

    #[test]
    fn cross_crate_qualified_call_resolves_to_the_named_crate() {
        let g = graph(&[
            (
                "crates/serve/src/lib.rs",
                "fn run() { atis_storage::charge(); }",
            ),
            ("crates/storage/src/lib.rs", "pub fn charge() {}"),
            ("crates/obs/src/lib.rs", "pub fn charge() {}"),
        ]);
        let run = g.node("serve", "run", None).unwrap();
        let storage_charge = g.node("storage", "charge", None).unwrap();
        assert_eq!(g.callees(run), vec![storage_charge]);
    }

    #[test]
    fn untyped_method_calls_fan_out_to_visible_candidates() {
        let g = graph(&[
            (
                "crates/serve/src/lib.rs",
                "use atis_storage::Pool;\nfn run() { fetch().poke(); }",
            ),
            (
                "crates/storage/src/lib.rs",
                "impl Pool { fn poke(&self) {} }",
            ),
            ("crates/obs/src/lib.rs", "impl Sink { fn poke(&self) {} }"),
        ]);
        let run = g.node("serve", "run", None).unwrap();
        let pool_poke = g.node("storage", "poke", Some("Pool")).unwrap();
        assert_eq!(
            g.callees(run),
            vec![pool_poke],
            "fan-out reaches named crates only: obs is invisible to serve here"
        );
    }

    #[test]
    fn std_collision_names_do_not_fan_out_untyped() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "impl Cache { fn len(&self) -> usize { 0 } }\n\
             fn probe(c: &Cache) -> usize { c.len() + guard().map.len() }\n\
             fn guard() -> u32 { 0 }",
        )]);
        let probe = g.node("serve", "probe", None).unwrap();
        let cache_len = g.node("serve", "len", Some("Cache")).unwrap();
        let guard = g.node("serve", "guard", None).unwrap();
        assert_eq!(
            g.callees(probe),
            vec![cache_len, guard],
            "typed receiver resolves len; the untyped guard chain adds nothing"
        );
    }

    #[test]
    fn typed_receivers_narrow_to_the_receiver_type() {
        let g = graph(&[
            (
                "crates/serve/src/lib.rs",
                "fn by_param(p: &Pool) { p.poke(); }\n\
                 fn by_let() { let s = Sink::open(); s.poke(); }\n\
                 fn foreign(v: Vec<u8>) { v.poke(); }",
            ),
            (
                "crates/storage/src/lib.rs",
                "impl Pool { fn poke(&self) {} }\n\
                 impl Sink { fn open() -> Sink { Sink } fn poke(&self) {} }",
            ),
        ]);
        let pool_poke = g.node("storage", "poke", Some("Pool")).unwrap();
        let sink_open = g.node("storage", "open", Some("Sink")).unwrap();
        let sink_poke = g.node("storage", "poke", Some("Sink")).unwrap();
        let by_param = g.node("serve", "by_param", None).unwrap();
        let by_let = g.node("serve", "by_let", None).unwrap();
        let foreign = g.node("serve", "foreign", None).unwrap();
        assert_eq!(g.callees(by_param), vec![pool_poke]);
        assert_eq!(g.callees(by_let), vec![sink_open, sink_poke]);
        assert!(
            g.callees(foreign).is_empty(),
            "a std-typed receiver adds no edges"
        );
    }

    #[test]
    fn self_field_receivers_use_struct_field_types() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "struct Service { cache: Cache, names: Vec<String> }\n\
             impl Service { fn hit(&self) { self.cache.touch(); self.names.touch(); } }\n\
             impl Cache { fn touch(&self) {} }\n\
             impl Other { fn touch(&self) {} }",
        )]);
        let hit = g.node("serve", "hit", Some("Service")).unwrap();
        let cache_touch = g.node("serve", "touch", Some("Cache")).unwrap();
        assert_eq!(
            g.callees(hit),
            vec![cache_touch],
            "self.cache narrows; self.names (Vec) adds nothing"
        );
    }

    #[test]
    fn unknown_type_qualifiers_resolve_to_nothing() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "impl Pool { fn new() -> Pool { Pool } }\n\
             fn run() { let v = Box::new(3); side(v); }\n\
             fn side(_v: Box<i32>) {}",
        )]);
        let run = g.node("serve", "run", None).unwrap();
        let side = g.node("serve", "side", None).unwrap();
        assert_eq!(
            g.callees(run),
            vec![side],
            "Box::new must not fan out to Pool::new"
        );
    }

    #[test]
    fn module_qualifiers_prefer_the_callers_crate() {
        let g = graph(&[
            (
                "crates/algorithms/src/lib.rs",
                "pub fn top() { search::run(); }\npub fn run() {}",
            ),
            ("crates/bench/src/lib.rs", "pub fn run() {}"),
        ]);
        let top = g.node("algorithms", "top", None).unwrap();
        let own_run = g.node("algorithms", "run", None).unwrap();
        assert_eq!(
            g.callees(top),
            vec![own_run],
            "an unknown module path stays crate-local when possible"
        );
    }

    #[test]
    fn self_receiver_narrows_to_the_own_impl() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "impl A { fn go(&self) { self.step(); } fn step(&self) {} }\n\
             impl B { fn step(&self) {} }",
        )]);
        let go = g.node("serve", "go", Some("A")).unwrap();
        let a_step = g.node("serve", "step", Some("A")).unwrap();
        assert_eq!(g.callees(go), vec![a_step]);
    }

    #[test]
    fn trait_impls_resolve_through_the_type_qualifier() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "impl Render for Page { fn draw(&self) {} }\n\
             fn paint() { Page::draw(); }",
        )]);
        let paint = g.node("serve", "paint", None).unwrap();
        let draw = g.node("serve", "draw", Some("Page")).unwrap();
        assert_eq!(g.callees(paint), vec![draw]);
    }

    #[test]
    fn std_calls_resolve_to_nothing() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "fn run(v: Vec<u8>) { v.sort(); println(); Some(3); }",
        )]);
        let run = g.node("serve", "run", None).unwrap();
        assert!(g.callees(run).is_empty());
    }

    #[test]
    fn dot_dump_contains_nodes_and_edges() {
        let g = graph(&[("crates/serve/src/lib.rs", "fn a() { b(); }\nfn b() {}")]);
        let dot = g.to_dot();
        assert!(dot.contains("digraph callgraph"));
        assert!(dot.contains("serve::a"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn witness_chains_read_root_to_sink() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}",
        )]);
        let a = g.node("serve", "a", None).unwrap();
        let c = g.node("serve", "c", None).unwrap();
        let parents = g.reach_from(&[a], &|_| false);
        let w = g.witness(&parents, c);
        assert_eq!(w.len(), 3);
        assert!(w[0].starts_with("serve::a"));
        assert!(w[2].starts_with("serve::c"));
    }
}
