//! Workspace file discovery.
//!
//! The linter scans first-party sources only: `src/`, `examples/`, and
//! every `crates/*/src/`. `vendor/` (offline registry stand-ins),
//! `target/`, `tests/`, and benches are deliberately out of scope —
//! the invariants protect library and serving code, and test code is
//! additionally stripped token-wise (see [`crate::rules::strip_test_regions`]).

use std::io;
use std::path::{Path, PathBuf};

/// Returns the repo-relative paths (forward slashes) of every `.rs`
/// file the linter scans, in deterministic sorted order.
pub fn source_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    for top in ["src", "examples"] {
        collect(root, &root.join(top), &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            collect(root, &member.join("src"), &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            collect(root, &entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            let rel = entry
                .strip_prefix(root)
                .unwrap_or(&entry)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}
