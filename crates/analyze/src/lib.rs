//! # atis-analyze — the workspace invariant analyzer
//!
//! Repo-specific conventions — bit-determinism of the algorithm crates,
//! the `IoStats` metering choke point, panic hygiene on the serving
//! path, and the serve crate's lock discipline — were enforced only by
//! review until this crate existed. `atis-analyze` turns them into
//! machine-checked rules that run at `cargo` time:
//!
//! ```sh
//! cargo run -p atis-analyze -- check             # exit 1 + findings on stderr
//! cargo run -p atis-analyze -- check --format json --stage graph
//! cargo run -p atis-analyze -- graph --dot       # call-graph dump
//! cargo run -p atis-analyze -- rules             # the rule table
//! cargo run -p atis-analyze -- --self-test       # embedded end-to-end checks
//! ```
//!
//! Architecture, in two stages:
//!
//! * **Lexical** — a hand-rolled Rust tokenizer ([`lexer`], standing in
//!   for `syn`, which the offline build cannot fetch) feeds per-rule
//!   token scans ([`rules`]) over every first-party source file
//!   ([`workspace`]).
//! * **Graph** — an item-level parser ([`parser`]) recovers `fn`/`impl`
//!   items and brace-matched bodies, a resolved cross-crate call graph
//!   ([`graph`]) links them, and the interprocedural passes ([`passes`])
//!   check reachability properties the lexical rules cannot see: lock
//!   ranks propagated through calls, raw I/O escaping the `IoStats`
//!   cost model, panic sites reachable from the serving roots, and
//!   error variants that fall through the degrade ladder unmatched.
//!
//! Escape hatches are comment directives (`analyze::allow(rule):
//! reason` / `analyze::allow-file(...)`); directives that suppress
//! nothing are themselves findings (`unused-allow`), so stale allows
//! cannot mask regressions. `#[cfg(test)]` items and `#[test]`
//! functions are stripped before either stage runs.
//!
//! `ANALYSIS.md` at the repository root documents every rule, the
//! resolution/ambiguity policy, and the directive syntax;
//! `tests/linter.rs` and `tests/ipa.rs` pin both directions (each rule
//! trips on its fixture; the workspace at HEAD is clean).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod graph;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod rules;
pub mod workspace;

pub use rules::{Finding, LOCK_ORDER, RULES};

use std::io;
use std::path::Path;

/// Which analysis stages to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Token-scan rules only (fast; no call graph).
    Lexical,
    /// Interprocedural graph passes only.
    Graph,
    /// Both stages plus unused-allow detection (the CI gate).
    All,
}

/// Lints one file's source as if it lived at repo-relative `path`
/// (which determines rule scoping). Lexical stage only — kept for
/// single-file callers and fixture tests; [`check_files`] is the full
/// pipeline.
pub fn check_source(path: &str, source: &str) -> Vec<Finding> {
    let (tokens, allows) = lexer::lex(source);
    let tokens = rules::strip_test_regions(&tokens);
    rules::run_all(path, &tokens)
        .into_iter()
        .filter(|f| !allows.covers(f.rule, f.line) && !allows.covers("all", f.line))
        .collect()
}

/// Runs the requested stages over an in-memory file set of
/// `(repo-relative path, source)` pairs and returns unsuppressed
/// findings sorted by `(path, line, rule)`.
///
/// At [`Stage::All`], allow directives that suppressed nothing across
/// *both* stages are reported as `unused-allow` findings.
pub fn check_files(files: &[(String, String)], stage: Stage) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut allows_by_path: Vec<(String, lexer::Allows)> = Vec::new();
    let mut parsed = Vec::new();
    for (path, source) in files {
        let (tokens, allows) = lexer::lex(source);
        let tokens = rules::strip_test_regions(&tokens);
        if stage != Stage::Graph {
            findings.extend(rules::run_all(path, &tokens));
        }
        if stage != Stage::Lexical {
            parsed.push(parser::parse_file(path, tokens));
        }
        allows_by_path.push((path.clone(), allows));
    }
    if stage != Stage::Lexical {
        let g = graph::CallGraph::build(parsed);
        findings.extend(passes::run_graph_passes(&g));
    }
    let covered = |rule: &str, path: &str, line: u32| {
        allows_by_path
            .iter()
            .find(|(p, _)| p == path)
            .is_some_and(|(_, a)| a.covers(rule, line) || a.covers("all", line))
    };
    findings.retain(|f| !covered(f.rule, &f.path, f.line));
    if stage == Stage::All {
        let mut unused = Vec::new();
        for (path, allows) in &allows_by_path {
            for (rule, line) in allows.unused() {
                unused.push(Finding {
                    rule: "unused-allow",
                    path: path.clone(),
                    line,
                    message: format!(
                        "`analyze::allow({rule})` suppresses nothing: the finding it \
                         masked is gone, so the directive is stale — remove it"
                    ),
                    witness: Vec::new(),
                });
            }
        }
        unused.retain(|f| !covered(f.rule, &f.path, f.line));
        findings.extend(unused);
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings
}

/// Reads every first-party source file under `root` into memory.
///
/// # Errors
/// Propagates filesystem errors from the workspace walk or file reads.
pub fn load_workspace(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for rel in workspace::source_files(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        files.push((rel, source));
    }
    Ok(files)
}

/// Lints every first-party source file under `root` at the given stage.
///
/// # Errors
/// Propagates filesystem errors from the workspace walk or file reads.
pub fn check_workspace_stage(root: &Path, stage: Stage) -> io::Result<Vec<Finding>> {
    Ok(check_files(&load_workspace(root)?, stage))
}

/// Lints every first-party source file under `root` with both stages
/// plus unused-allow detection (the CI gate).
///
/// # Errors
/// Propagates filesystem errors from the workspace walk or file reads.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    check_workspace_stage(root, Stage::All)
}

/// Builds the whole-workspace call graph (for `graph --dot`).
///
/// # Errors
/// Propagates filesystem errors from the workspace walk or file reads.
pub fn build_graph(root: &Path) -> io::Result<graph::CallGraph> {
    let mut parsed = Vec::new();
    for (path, source) in load_workspace(root)? {
        let (tokens, _) = lexer::lex(&source);
        let tokens = rules::strip_test_regions(&tokens);
        parsed.push(parser::parse_file(&path, tokens));
    }
    Ok(graph::CallGraph::build(parsed))
}

/// Renders findings as a JSON array (hand-rolled; no serde offline).
pub fn findings_to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let witness: Vec<String> = f
            .witness
            .iter()
            .map(|w| format!("\"{}\"", esc(w)))
            .collect();
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \
             \"witness\": [{}]}}{}\n",
            esc(f.rule),
            esc(&f.path),
            f.line,
            esc(&f.message),
            witness.join(", "),
            if i + 1 < findings.len() { "," } else { "" },
        ));
    }
    out.push(']');
    out
}

/// Embedded end-to-end self-test: tiny in-memory workspaces that must
/// trip each interprocedural pass (and the unused-allow check), plus a
/// clean workspace that must not. Returns the failure description on
/// mismatch; used by `atis-analyze --self-test` in CI.
///
/// # Errors
/// Returns a description of the first expectation that failed.
pub fn self_test() -> Result<(), String> {
    let expect = |name: &str, files: &[(&str, &str)], rule: &str, want: bool| {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let findings = check_files(&owned, Stage::All);
        let hit = findings.iter().any(|f| f.rule == rule);
        if hit == want {
            Ok(())
        } else {
            Err(format!(
                "self-test `{name}`: expected {}`{rule}`, got findings: {:?}",
                if want { "" } else { "no " },
                findings.iter().map(|f| f.rule).collect::<Vec<_>>()
            ))
        }
    };
    expect(
        "lock-order-interprocedural trips",
        &[(
            "crates/serve/src/lib.rs",
            "impl Pool { fn helper(&self) { self.inner.lock_queue(); } }\n\
             impl Pool { fn caller(&self) { let g = self.inner.lock_slot(); self.helper(); } }",
        )],
        passes::lock_order::ID,
        true,
    )?;
    expect(
        "lock-order-interprocedural clean in rank order",
        &[(
            "crates/serve/src/lib.rs",
            "impl Pool { fn helper(&self) { self.inner.lock_slot(); } }\n\
             impl Pool { fn caller(&self) { let g = self.inner.lock_queue(); drop(g); self.helper(); } }",
        )],
        passes::lock_order::ID,
        false,
    )?;
    expect(
        "metered-io-escape trips",
        &[(
            "crates/serve/src/lib.rs",
            "fn worker_loop() { read_raw(); }\n\
             fn read_raw() { let f = std::fs::read(\"x\"); }",
        )],
        passes::metered_io::ID,
        true,
    )?;
    expect(
        "metered-io-escape clean through a charging wrapper",
        &[(
            "crates/serve/src/lib.rs",
            "fn worker_loop(io: &IoStats) { read_charged(io); }\n\
             fn read_charged(io: &IoStats) { io.read_blocks(1); raw_inner(); }\n\
             fn raw_inner() { let f = std::fs::read(\"x\"); }",
        )],
        passes::metered_io::ID,
        false,
    )?;
    expect(
        "panic-reachability trips across crates",
        &[
            (
                "crates/serve/src/lib.rs",
                "fn execute() { atis_storage::fetch(); }",
            ),
            (
                "crates/storage/src/lib.rs",
                "pub fn fetch() { None::<u32>.unwrap(); }",
            ),
        ],
        passes::panic_reach::ID,
        true,
    )?;
    expect(
        "panic-reachability ignores unreachable panics",
        &[
            ("crates/serve/src/lib.rs", "fn execute() { }"),
            (
                "crates/storage/src/lib.rs",
                "pub fn fetch() { None::<u32>.unwrap(); }",
            ),
        ],
        passes::panic_reach::ID,
        false,
    )?;
    expect(
        "degrade-ladder-exhaustiveness trips on an unmatched variant",
        &[(
            "crates/serve/src/lib.rs",
            "pub enum ServeError { Shed, Orphan }\n\
             fn build() -> ServeError { ServeError::Orphan }\n\
             fn classify(e: &ServeError) { match e { ServeError::Shed => {} _ => {} } }",
        )],
        passes::ladder::ID,
        true,
    )?;
    expect(
        "degrade-ladder-exhaustiveness clean when every variant is matched",
        &[(
            "crates/serve/src/lib.rs",
            "pub enum ServeError { Shed, Orphan }\n\
             fn build() -> ServeError { ServeError::Orphan }\n\
             fn classify(e: &ServeError) { match e { ServeError::Shed => {} ServeError::Orphan => {} } }",
        )],
        passes::ladder::ID,
        false,
    )?;
    expect(
        "unused-allow trips on a stale directive",
        &[(
            "crates/serve/src/lib.rs",
            "// analyze::allow(panic-hygiene): long gone\nfn quiet() {}",
        )],
        "unused-allow",
        true,
    )?;
    expect(
        "used allow stays silent",
        &[(
            "crates/serve/src/lib.rs",
            "fn f(v: &[u32]) -> u32 {\n\
             // analyze::allow(panic-hygiene): bounds proven by caller\n\
             v[0]\n}",
        )],
        "unused-allow",
        false,
    )?;
    Ok(())
}
