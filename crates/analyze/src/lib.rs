//! # atis-analyze — the workspace invariant linter
//!
//! Repo-specific conventions — bit-determinism of the algorithm crates,
//! the `IoStats` metering choke point, panic hygiene on the serving
//! path, and the serve crate's lock discipline — were enforced only by
//! review until this crate existed. `atis-analyze` turns them into
//! machine-checked rules that run at `cargo` time:
//!
//! ```sh
//! cargo run -p atis-analyze -- check    # exit 1 + findings on stderr
//! cargo run -p atis-analyze -- rules    # the rule table
//! ```
//!
//! Architecture: a hand-rolled Rust tokenizer ([`lexer`], standing in
//! for `syn`, which the offline build cannot fetch) feeds per-rule
//! lexical checks ([`rules`]) over every first-party source file
//! ([`workspace`]). Escape hatches are comment directives
//! (`analyze::allow(rule): reason` / `analyze::allow-file(...)`);
//! `#[cfg(test)]` items and `#[test]` functions are stripped before the
//! rules run.
//!
//! `ANALYSIS.md` at the repository root documents every rule, its
//! rationale, and the directive syntax; `tests/linter.rs` pins both
//! directions (each rule trips on its fixture; the workspace at HEAD is
//! clean).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod workspace;

pub use rules::{Finding, LOCK_ORDER, RULES};

use std::io;
use std::path::Path;

/// Lints one file's source as if it lived at repo-relative `path`
/// (which determines rule scoping). Returns unsuppressed findings.
pub fn check_source(path: &str, source: &str) -> Vec<Finding> {
    let (tokens, allows) = lexer::lex(source);
    let tokens = rules::strip_test_regions(&tokens);
    rules::run_all(path, &tokens)
        .into_iter()
        .filter(|f| !allows.covers(f.rule, f.line) && !allows.covers("all", f.line))
        .collect()
}

/// Lints every first-party source file under `root`.
///
/// # Errors
/// Propagates filesystem errors from the workspace walk or file reads.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in workspace::source_files(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        findings.extend(check_source(&rel, &source));
    }
    Ok(findings)
}
