//! The interprocedural graph passes.
//!
//! Each pass is a pure function over the whole-workspace
//! [`CallGraph`](crate::graph::CallGraph) and reports
//! [`Finding`](crate::rules::Finding)s with **call-chain witnesses**: a
//! list of `root -> … -> site` hops, one per line, so a reviewer can
//! replay exactly how the entry point reaches the flagged code. Allow
//! filtering happens in the caller ([`crate::check_files`]), keyed by
//! the file each finding is anchored in.
//!
//! Passes (each declares its own `ID` constant, which is also its
//! allow-directive key — the rule-id drift check in
//! `ci/check-doc-links.sh` greps these):
//!
//! * [`lock_order`] — held-guard sets propagated through calls.
//! * [`metered_io`] — raw I/O reachable without an `IoStats` charge.
//! * [`panic_reach`] — panic sites reachable from the serving roots.
//! * [`ladder`] — constructed error variants never matched on the
//!   serving path.

pub mod ladder;
pub mod lock_order;
pub mod metered_io;
pub mod panic_reach;

use crate::graph::CallGraph;
use crate::rules::Finding;

/// Runs every graph pass over the call graph, in declaration order.
pub fn run_graph_passes(graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    lock_order::run(graph, &mut findings);
    metered_io::run(graph, &mut findings);
    panic_reach::run(graph, &mut findings);
    ladder::run(graph, &mut findings);
    findings
}

/// Collects every node id whose `(krate, name)` matches one of the
/// given root specs. Missing specs are skipped (a fixture workspace
/// typically defines only one of them).
pub(crate) fn root_nodes(g: &CallGraph, specs: &[(&str, &str)]) -> Vec<usize> {
    let mut roots = Vec::new();
    for (id, n) in g.nodes.iter().enumerate() {
        if specs.iter().any(|(k, f)| n.krate == *k && n.name == *f) {
            roots.push(id);
        }
    }
    roots
}

/// The serving entry points every reachability pass starts from: the
/// worker loop and planner-dispatch in `atis-serve`, and the
/// route_server accept loop.
pub(crate) const SERVE_ROOTS: &[(&str, &str)] = &[
    ("serve", "worker_loop"),
    ("serve", "execute"),
    ("example:route_server", "serve"),
];
