//! Metered-I/O escape analysis.
//!
//! The paper's cost tables are only honest if every block access on a
//! query path is charged through the `IoStats` choke point. The lexical
//! `metered-io` rule bans raw `std::fs` in the algorithm crates; this
//! pass checks the *reachability* claim instead: starting from the
//! serving/algorithm entry points, every path must reach raw access
//! only **through** a charging wrapper.
//!
//! * **Raw access** — real-filesystem tokens (`std::fs`, `File::open`/
//!   `create`/`options`, `OpenOptions`) or a `.peek_slot(…)` call (the
//!   documented unmetered heap accessor for callers that already paid).
//! * **Charging wrapper** — a function that calls one of the `IoStats`
//!   charge methods ([`CHARGE_FNS`]). The traversal does not descend
//!   below a charging function: whatever it reaches has been paid for.
//! * **Finding** — a function reachable from a root that touches raw
//!   access without itself charging, anchored at the raw site with the
//!   full call-chain witness.
//!
//! Known approximation: charging anywhere in a function covers all of
//! its raw access (no intra-function ordering); conversely a function
//! whose charge is conditional still counts as charging.

use crate::graph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::rules::Finding;

/// Stable rule identifier (allow-directive key).
pub const ID: &str = "metered-io-escape";

/// The `IoStats` charge methods plus the heapfile-internal charging
/// points; calling any of these makes a function a charging wrapper.
pub const CHARGE_FNS: &[&str] = &[
    "read_blocks",
    "write_blocks",
    "update_tuples",
    "adjust_index",
    "create_relation",
    "delete_relation",
    "charge_read",
    "charge_scan",
];

/// Entry points whose downstream I/O must be metered: the serving roots
/// plus the algorithm dispatchers.
const ROOTS: &[(&str, &str)] = &[
    ("serve", "worker_loop"),
    ("serve", "execute"),
    ("example:route_server", "serve"),
    ("algorithms", "run"),
    ("algorithms", "run_with_budgets"),
];

/// The first raw-access site in a body, if any: `(line, what)`.
fn raw_site(
    toks: &[Token],
    open: usize,
    close: usize,
    nested: &[(usize, usize)],
) -> Option<(u32, &'static str)> {
    let mut i = open + 1;
    while i < close {
        if let Some(&(_, e)) = nested.iter().find(|&&(b, e)| i >= b && i <= e) {
            i = e + 1;
            continue;
        }
        let t = &toks[i];
        let seq3 = |a: &str, b: &str| {
            t.is_ident(a)
                && toks.get(i + 1).is_some_and(|c| c.is_punct(':'))
                && toks.get(i + 2).is_some_and(|c| c.is_punct(':'))
                && toks.get(i + 3).is_some_and(|f| f.is_ident(b))
        };
        if seq3("std", "fs") {
            return Some((t.line, "std::fs"));
        }
        if t.is_ident("OpenOptions") {
            return Some((t.line, "OpenOptions"));
        }
        if seq3("File", "open") || seq3("File", "create") || seq3("File", "options") {
            return Some((t.line, "File::*"));
        }
        if t.is_ident("peek_slot")
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            return Some((t.line, ".peek_slot() (unmetered heap access)"));
        }
        i += 1;
    }
    None
}

/// Whether a body contains a call to any charge method.
fn charges(toks: &[Token], open: usize, close: usize, nested: &[(usize, usize)]) -> bool {
    let mut i = open + 1;
    while i < close {
        if let Some(&(_, e)) = nested.iter().find(|&&(b, e)| i >= b && i <= e) {
            i = e + 1;
            continue;
        }
        let t = &toks[i];
        if t.kind == TokenKind::Ident
            && CHARGE_FNS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            return true;
        }
        i += 1;
    }
    false
}

/// Runs the pass.
pub fn run(g: &CallGraph, findings: &mut Vec<Finding>) {
    let roots = super::root_nodes(g, ROOTS);
    if roots.is_empty() {
        return;
    }
    let mut raw: Vec<Option<(u32, &'static str)>> = vec![None; g.nodes.len()];
    let mut charging = vec![false; g.nodes.len()];
    for id in 0..g.nodes.len() {
        let Some((open, close, nested)) = g.body_span(id) else {
            continue;
        };
        let toks = &g.files[g.nodes[id].file].tokens;
        raw[id] = raw_site(toks, open, close, &nested);
        charging[id] = charges(toks, open, close, &nested);
    }
    let parents = g.reach_from(&roots, &|id| charging[id]);
    for &id in parents.keys() {
        let Some((line, what)) = raw[id] else {
            continue;
        };
        if charging[id] {
            continue; // a charging wrapper may touch raw access
        }
        let mut witness = g.witness(&parents, id);
        witness.push(format!(
            "raw access `{what}` at {}:{line}",
            g.nodes[id].path
        ));
        findings.push(Finding {
            rule: ID,
            path: g.nodes[id].path.clone(),
            line,
            message: format!(
                "`{what}` in {} is reachable from a serving/algorithm entry point without \
                 passing an IoStats-charging wrapper: block access escapes the cost model",
                g.label(id),
            ),
            witness,
        });
    }
}
