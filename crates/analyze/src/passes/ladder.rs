//! Degrade-ladder exhaustiveness.
//!
//! The serving stack degrades failures through a typed ladder
//! (v5→v4→v3→Dijkstra→stale→shed); every error enum variant that is
//! *constructed* anywhere in the workspace must therefore be *named in a
//! pattern* somewhere on the serving path — otherwise a new failure mode
//! silently falls through a `_` arm (the tracked enums are all
//! `#[non_exhaustive]`, so downstream matches are forced to carry `_`
//! arms, and "the compiler checks exhaustiveness" stops being true).
//!
//! Mechanics:
//!
//! * Tracked enums: `AlgorithmError`, `ServeError`, `StorageError`
//!   (located by parsing, wherever they are defined).
//! * An occurrence `Enum::Variant` (or `Self::Variant` inside one of the
//!   enum's own impl blocks) is classified by a **pattern-region
//!   scanner**: `match` arm patterns (tokens up to `=>` at arm depth),
//!   `let` / `if let` / `while let` bindings (tokens up to `=`), and the
//!   second argument of `matches!(…)`. Everything else is a
//!   construction; `use` imports are ignored.
//! * A pattern occurrence only counts as "matched on the serving path"
//!   when it appears in [`MATCH_SCOPE`] **and** outside the enum's own
//!   impl blocks — `impl Display for ServeError` naming every variant
//!   must not satisfy the serving-path requirement.
//!
//! Known approximations: a variant named inside a match *guard*
//! (`p if x == E::V =>`) is classified as a pattern; wildcard `_` arms
//! deliberately never count as matching.

use crate::graph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::parser::ParsedFile;
use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Stable rule identifier (allow-directive key).
pub const ID: &str = "degrade-ladder-exhaustiveness";

/// Error enums whose variants ride the degrade ladder.
const TRACKED: &[&str] = &["AlgorithmError", "ServeError", "StorageError"];

/// Files that constitute "the serving path" for matching purposes: the
/// serve crate, the TCP front-end, and the planner's ladder.
pub const MATCH_SCOPE: &[&str] = &[
    "crates/serve/src/",
    "examples/route_server.rs",
    "crates/core/src/planner.rs",
];

fn in_match_scope(path: &str) -> bool {
    MATCH_SCOPE
        .iter()
        .any(|p| path.starts_with(p) || path == *p)
}

/// Self type of the innermost function item containing token `i`.
fn enclosing_self_ty(file: &ParsedFile, i: usize) -> Option<&str> {
    file.fns
        .iter()
        .filter(|f| f.body.is_some_and(|(b, e)| i > b && i < e))
        .min_by_key(|f| {
            let (b, e) = f.body.unwrap_or((0, usize::MAX));
            e - b
        })
        .and_then(|f| f.self_ty.as_deref())
}

/// Whether the statement containing token `i` starts with `use`.
fn in_use_statement(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
        if t.is_ident("use") {
            return true;
        }
    }
    false
}

/// Marks every token that sits in a *pattern* position: `match` arm
/// patterns, `let`-family bindings, and `matches!` second arguments.
fn pattern_mask(toks: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("match") {
            // Scrutinee runs to the first `{` at bracket depth 0.
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() {
                let u = &toks[j];
                if u.is_punct('(') || u.is_punct('[') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && (u.is_punct('{') || u.is_punct(';')) {
                    break;
                }
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                mark_match_arms(toks, j, &mut mask);
            }
        } else if t.is_ident("let") {
            // Binding pattern runs to `=` (or `;`) at bracket depth 0.
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < toks.len() {
                let u = &toks[j];
                if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0 && (u.is_punct('=') || u.is_punct(';')) {
                    break;
                }
                mask[j] = true;
                j += 1;
            }
        } else if t.is_ident("matches")
            && toks.get(i + 1).is_some_and(|b| b.is_punct('!'))
            && toks.get(i + 2).is_some_and(|p| p.is_punct('('))
        {
            // Second macro argument (after the top-level `,`) is a pattern.
            let mut j = i + 3;
            let mut depth = 1i32;
            let mut comma = None;
            while j < toks.len() && depth > 0 {
                let u = &toks[j];
                if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
                    depth += 1;
                } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
                    depth -= 1;
                } else if u.is_punct(',') && depth == 1 && comma.is_none() {
                    comma = Some(j);
                }
                j += 1;
            }
            if let Some(c) = comma {
                for m in &mut mask[c + 1..j.saturating_sub(1)] {
                    *m = true;
                }
            }
        }
        i += 1;
    }
    mask
}

/// Marks the pattern regions of one `match` body whose `{` is at
/// `open`. Arm patterns run to `=>` at arm depth; block-bodied arms are
/// skipped wholesale (nested `match`es are handled by the outer scan).
fn mark_match_arms(toks: &[Token], open: usize, mask: &mut [bool]) {
    let mut j = open + 1;
    let mut pattern = true;
    let mut depth = 0i32; // combined bracket depth relative to arm level
    while j < toks.len() {
        let u = &toks[j];
        if u.is_punct('}') && depth == 0 {
            return; // end of match body
        }
        if u.is_punct('{') && !pattern && depth == 0 {
            // Arm body block: skip it; the next arm's pattern follows.
            let mut d = 1i32;
            j += 1;
            while j < toks.len() && d > 0 {
                if toks[j].is_punct('{') {
                    d += 1;
                } else if toks[j].is_punct('}') {
                    d -= 1;
                }
                j += 1;
            }
            pattern = true;
            continue;
        }
        if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') {
            depth += 1;
        } else if u.is_punct(')') || u.is_punct(']') || u.is_punct('}') {
            depth -= 1;
        } else if depth == 0 {
            if pattern && u.is_punct('=') && toks.get(j + 1).is_some_and(|v| v.is_punct('>')) {
                pattern = false;
                j += 2;
                continue;
            }
            if !pattern && u.is_punct(',') {
                pattern = true;
                j += 1;
                continue;
            }
        }
        if pattern {
            mask[j] = true;
        }
        j += 1;
    }
}

/// One tracked enum's `(defining path, variants)`.
type EnumInfo<'a> = (&'a str, &'a [(String, u32)]);

/// Runs the pass.
pub fn run(g: &CallGraph, findings: &mut Vec<Finding>) {
    // Locate the tracked enums: name -> (defining path, variants).
    let mut enums: BTreeMap<&str, EnumInfo> = BTreeMap::new();
    for file in &g.files {
        for e in &file.enums {
            if TRACKED.contains(&e.name.as_str()) && !enums.contains_key(e.name.as_str()) {
                enums.insert(e.name.as_str(), (file.path.as_str(), e.variants.as_slice()));
            }
        }
    }
    if enums.is_empty() {
        return;
    }
    let mut constructed: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    let mut matched: BTreeSet<(String, String)> = BTreeSet::new();
    for file in &g.files {
        let toks = &file.tokens;
        let mask = pattern_mask(toks);
        let scope = in_match_scope(&file.path);
        for i in 0..toks.len() {
            let t = &toks[i];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let qualified = toks.get(i + 1).is_some_and(|c| c.is_punct(':'))
                && toks.get(i + 2).is_some_and(|c| c.is_punct(':'))
                && toks.get(i + 3).is_some_and(|v| v.kind == TokenKind::Ident);
            if !qualified {
                continue;
            }
            let enum_name: &str = if t.is_ident("Self") {
                match enclosing_self_ty(file, i) {
                    Some(ty) => ty,
                    None => continue,
                }
            } else {
                &t.text
            };
            let Some(&(_, variants)) = enums.get(enum_name) else {
                continue;
            };
            let vtok = &toks[i + 3];
            if !variants.iter().any(|(v, _)| *v == vtok.text) {
                continue;
            }
            let key = (enum_name.to_string(), vtok.text.clone());
            if mask[i] || mask[i + 3] {
                // Pattern position: counts toward the serving path only
                // outside the enum's own impls.
                if scope && enclosing_self_ty(file, i) != Some(enum_name) {
                    matched.insert(key);
                }
            } else if !in_use_statement(toks, i) {
                constructed
                    .entry(key)
                    .or_default()
                    .push(format!("{}:{}", file.path, vtok.line));
            }
        }
    }
    for ((enum_name, variant), sites) in &constructed {
        if matched.contains(&(enum_name.clone(), variant.clone())) {
            continue;
        }
        let Some(&(def_path, variants)) = enums.get(enum_name.as_str()) else {
            continue;
        };
        let def_line = variants
            .iter()
            .find(|(v, _)| v == variant)
            .map(|(_, l)| *l)
            .unwrap_or(1);
        let mut witness: Vec<String> = sites
            .iter()
            .take(5)
            .map(|s| format!("constructed at {s}"))
            .collect();
        if sites.len() > 5 {
            witness.push(format!("… and {} more construction sites", sites.len() - 5));
        }
        witness.push(format!(
            "never named in a pattern under {}",
            MATCH_SCOPE.join(", ")
        ));
        findings.push(Finding {
            rule: ID,
            path: def_path.to_string(),
            line: def_line,
            message: format!(
                "`{enum_name}::{variant}` is constructed but never matched on the serving \
                 path: this failure mode falls through the degrade ladder's `_` arms \
                 unclassified",
            ),
            witness,
        });
    }
}
