//! Panic reachability from the serving roots.
//!
//! The lexical `panic-hygiene` rule bans panic sites *lexically* inside
//! `crates/serve` and `examples/route_server.rs`. But the worker loop
//! calls into storage, algorithms, and the planner — an `unwrap()` three
//! crates down still aborts the server on a client request. This pass
//! computes the transitive closure of panic sites reachable from
//! `worker_loop` / `execute` / the route_server accept loop.
//!
//! Site definition, per reachable function:
//!
//! * `.unwrap(` / `.expect(` method calls and `panic!` / `unreachable!`
//!   / `todo!` / `unimplemented!` macros — in any crate *except* the
//!   serve scope, which the (stricter, whole-file) lexical rule already
//!   owns; double-reporting there would force every existing allow to
//!   carry two rule ids.
//! * Slice/array indexing — only in `crates/core/src/` (the planner
//!   orchestration layer). The algorithm/storage kernels index dense
//!   arrays pervasively with lengths they construct themselves; flagging
//!   those would bury the signal (documented approximation, see
//!   ANALYSIS.md).
//!
//! Each finding carries the call-chain witness from a root to the
//! containing function plus the site line.

use crate::graph::CallGraph;
use crate::rules::{is_indexing, Finding};
use std::collections::BTreeSet;

/// Stable rule identifier (allow-directive key).
pub const ID: &str = "panic-reachability";

/// Whether the lexical `panic-hygiene` rule already owns this file.
fn in_serve_scope(path: &str) -> bool {
    path.starts_with("crates/serve/src/") || path == "examples/route_server.rs"
}

/// Runs the pass.
pub fn run(g: &CallGraph, findings: &mut Vec<Finding>) {
    let roots = super::root_nodes(g, super::SERVE_ROOTS);
    if roots.is_empty() {
        return;
    }
    let parents = g.reach_from(&roots, &|_| false);
    let mut seen: BTreeSet<(String, u32, String)> = BTreeSet::new();
    for &id in parents.keys() {
        let node = &g.nodes[id];
        if in_serve_scope(&node.path) {
            continue;
        }
        let Some((open, close, nested)) = g.body_span(id) else {
            continue;
        };
        let index_scope = node.path.starts_with("crates/core/src/");
        let toks = &g.files[node.file].tokens;
        let mut i = open + 1;
        while i < close {
            if let Some(&(_, e)) = nested.iter().find(|&&(b, e)| i >= b && i <= e) {
                i = e + 1;
                continue;
            }
            let t = &toks[i];
            let site: Option<String> = if (t.is_ident("unwrap") || t.is_ident("expect"))
                && i >= 1
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
            {
                Some(format!(".{}()", t.text))
            } else if toks.get(i + 1).is_some_and(|b| b.is_punct('!'))
                && ["panic", "unreachable", "todo", "unimplemented"].contains(&t.text.as_str())
            {
                Some(format!("{}!", t.text))
            } else if index_scope && t.is_punct('[') && is_indexing(toks, i) {
                Some("slice/array indexing".to_string())
            } else {
                None
            };
            if let Some(what) = site {
                if seen.insert((node.path.clone(), t.line, what.clone())) {
                    let mut witness = g.witness(&parents, id);
                    witness.push(format!("`{what}` at {}:{}", node.path, t.line));
                    findings.push(Finding {
                        rule: ID,
                        path: node.path.clone(),
                        line: t.line,
                        message: format!(
                            "`{what}` in {} is reachable from the serving path: a client \
                             request must never abort the server",
                            g.label(id),
                        ),
                        witness,
                    });
                }
            }
            i += 1;
        }
    }
}
