//! Interprocedural lock-order checking.
//!
//! The lexical `lock-order` rule tracks guards within one function; a
//! helper that *takes* a guard and then calls another function which
//! acquires a lower-or-equal rank is invisible to it. This pass closes
//! that hole:
//!
//! 1. **Direct acquisitions** — every `.lock_X(…)` call site of a
//!    [`LOCK_ORDER`] helper, per function.
//! 2. **Transitive acquisitions** — a fixpoint propagates each
//!    function's acquired-rank set to its callers, recording one hop
//!    per `(function, rank)` so a witness chain can be replayed.
//! 3. **Guard-tracked walk** — every serve-crate function body is
//!    re-walked with the same guard-lifetime tracking the lexical rule
//!    uses (guards die at block close, `drop(name)`, or the statement
//!    end for unnamed temporaries); a call to a *non-helper* function
//!    that transitively acquires rank ≤ the highest held rank is a
//!    violation.
//!
//! Known approximation: a callee that acquires and fully releases a
//! lock before returning still counts as "acquires" — that is the
//! conservative direction, because acquiring a lower rank even briefly
//! while holding a higher one is exactly the ordering inversion the
//! ranks forbid. Direct inversions inside one function are *not*
//! re-reported here; the lexical `lock-order` rule owns those.

use crate::graph::CallGraph;
use crate::lexer::{Token, TokenKind};
use crate::rules::{Finding, LOCK_ORDER};
use std::collections::BTreeMap;

/// Stable rule identifier (allow-directive key).
pub const ID: &str = "lock-order-interprocedural";

/// How a function comes to acquire a rank: at its own call site, or
/// through a callee.
#[derive(Clone, Copy)]
enum Hop {
    /// Acquired directly at this 1-based line.
    Direct(u32),
    /// Acquired inside the callee node, called at this line.
    Via(usize, u32),
}

fn rank_of(name: &str) -> Option<u32> {
    LOCK_ORDER
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|(_, r, _)| *r)
}

fn helper_name(rank: u32) -> &'static str {
    LOCK_ORDER
        .iter()
        .find(|(_, r, _)| *r == rank)
        .map(|(n, _, _)| *n)
        .unwrap_or("?")
}

/// Whether token `i` is a method-style call site `.name(`.
fn is_call_site(toks: &[Token], i: usize) -> bool {
    i >= 1
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
        && toks[i].kind == TokenKind::Ident
}

/// Runs the pass.
pub fn run(g: &CallGraph, findings: &mut Vec<Finding>) {
    // 1. Direct acquisitions per node.
    let mut acq: Vec<BTreeMap<u32, Hop>> = vec![BTreeMap::new(); g.nodes.len()];
    for (id, slot) in acq.iter_mut().enumerate() {
        let Some((open, close, nested)) = g.body_span(id) else {
            continue;
        };
        let toks = &g.files[g.nodes[id].file].tokens;
        let mut i = open + 1;
        while i < close {
            if let Some(&(_, e)) = nested.iter().find(|&&(b, e)| i >= b && i <= e) {
                i = e + 1;
                continue;
            }
            if is_call_site(toks, i) {
                if let Some(rank) = rank_of(&toks[i].text) {
                    slot.entry(rank).or_insert(Hop::Direct(toks[i].line));
                }
            }
            i += 1;
        }
    }
    // 2. Fixpoint: propagate acquired ranks to callers. Each (node,
    //    rank) records the hop it was first discovered through, so
    //    chains are acyclic by construction.
    loop {
        let mut changed = false;
        for id in 0..g.nodes.len() {
            for ci in 0..g.calls[id].len() {
                let call = g.calls[id][ci];
                let ranks: Vec<u32> = acq[call.callee].keys().copied().collect();
                for rank in ranks {
                    if let std::collections::btree_map::Entry::Vacant(e) = acq[id].entry(rank) {
                        e.insert(Hop::Via(call.callee, call.line));
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // 3. Guard-tracked walk of every serve-crate function.
    for id in 0..g.nodes.len() {
        if !g.nodes[id].path.starts_with("crates/serve/src/") {
            continue;
        }
        check_body(g, &acq, id, findings);
    }
}

/// Walks one body with guard-lifetime tracking, flagging calls into
/// functions that transitively acquire a rank ≤ the highest held rank.
fn check_body(g: &CallGraph, acq: &[BTreeMap<u32, Hop>], id: usize, findings: &mut Vec<Finding>) {
    let Some((open, close, nested)) = g.body_span(id) else {
        return;
    };
    let node = &g.nodes[id];
    let toks = &g.files[node.file].tokens;
    // Call edges indexed by their call-site token.
    let mut by_tok: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for call in &g.calls[id] {
        by_tok.entry(call.tok).or_default().push(call.callee);
    }
    let mut depth: i32 = 0;
    let mut guards: Vec<(u32, i32, Option<String>)> = Vec::new();
    let mut i = open + 1;
    while i < close {
        if let Some(&(_, e)) = nested.iter().find(|&&(b, e)| i >= b && i <= e) {
            i = e + 1;
            continue;
        }
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|(_, d, _)| *d <= depth);
        } else if t.is_punct(';') {
            guards.retain(|(_, d, name)| name.is_some() || *d != depth);
        } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|p| p.is_punct('(')) {
            if let Some(var) = toks.get(i + 2) {
                guards.retain(|(_, _, name)| name.as_deref() != Some(var.text.as_str()));
            }
        } else if is_call_site(toks, i) {
            if let Some(rank) = rank_of(&t.text) {
                // A direct helper acquisition: bind the guard. The
                // lexical rule already checks direct inversions.
                let name = crate::rules::statement_binding(toks, i);
                guards.push((rank, depth, name));
            } else if let Some(callees) = by_tok.get(&i) {
                flag_calls(g, acq, id, t, callees, &guards, findings);
            }
        } else if by_tok.contains_key(&i) {
            // Free-function / qualified call site.
            flag_calls(g, acq, id, t, &by_tok[&i], &guards, findings);
        }
        i += 1;
    }
}

fn flag_calls(
    g: &CallGraph,
    acq: &[BTreeMap<u32, Hop>],
    caller: usize,
    site: &Token,
    callees: &[usize],
    guards: &[(u32, i32, Option<String>)],
    findings: &mut Vec<Finding>,
) {
    let Some(&(held, _, ref held_name)) = guards.iter().max_by_key(|(r, _, _)| *r) else {
        return;
    };
    for &callee in callees {
        // The lowest offending rank gives the sharpest message.
        let Some((&rank, hop)) = acq[callee].iter().find(|(r, _)| **r <= held) else {
            continue;
        };
        let node = &g.nodes[caller];
        let mut witness = vec![format!(
            "{} ({}:{}) holds `{}` (rank {held}), calls {} at {}:{}",
            g.label(caller),
            node.path,
            node.line,
            held_name
                .clone()
                .unwrap_or_else(|| helper_name(held).to_string()),
            g.label(callee),
            node.path,
            site.line,
        )];
        let mut cur = callee;
        let mut h = *hop;
        loop {
            match h {
                Hop::Direct(line) => {
                    witness.push(format!(
                        "{} acquires `{}` (rank {rank}) at {}:{line}",
                        g.label(cur),
                        helper_name(rank),
                        g.nodes[cur].path,
                    ));
                    break;
                }
                Hop::Via(next, line) => {
                    witness.push(format!(
                        "{} calls {} at {}:{line}",
                        g.label(cur),
                        g.label(next),
                        g.nodes[cur].path,
                    ));
                    h = acq[next][&rank];
                    cur = next;
                }
            }
        }
        let f = Finding {
            rule: ID,
            path: node.path.clone(),
            line: site.line,
            message: format!(
                "call into {} acquires `{}` (rank {rank}) while `{}` (rank {held}) is held: \
                 inverts the declared lock order",
                g.label(callee),
                helper_name(rank),
                helper_name(held),
            ),
            witness,
        };
        if !findings.contains(&f) {
            findings.push(f);
        }
    }
}
