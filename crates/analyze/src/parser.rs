//! A dependency-free item-level parser over the lexed token stream.
//!
//! The lexical rules in [`crate::rules`] treat a file as a flat token
//! soup; the interprocedural passes in [`crate::passes`] need *items*:
//! which function a token belongs to, which `impl` block a method lives
//! in, where a body starts and ends. This module recovers exactly that
//! much structure — no expression trees, no type resolution — from the
//! test-stripped token stream:
//!
//! * every `fn` item (free, `impl` method, trait default method) with
//!   its brace-matched body kept as a token *range* into the file's
//!   stream;
//! * the self type of the enclosing `impl`/`trait` block (last
//!   top-level path segment of the implemented type, a documented
//!   approximation — `impl fmt::Display for RouteAnswer` records
//!   `RouteAnswer`);
//! * every `enum` whose name ends in `Error`, with its variant names
//!   (consumed by the degrade-ladder pass);
//! * every `struct` with its named fields' *effective types*, and every
//!   `fn`'s parameter bindings — the receiver-typing inputs for the
//!   call graph's method resolution (see [`effective_type`]).
//!
//! Bodies are *not* re-lexed per pass: a [`FnItem::body`] is an index
//! range `[open_brace, close_brace]` into [`ParsedFile::tokens`], and
//! nested `fn` items are parsed as their own items so a pass walking an
//! outer body can skip the inner ranges.

use crate::lexer::{Token, TokenKind};

/// One parsed function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The self type when this is an `impl`/`trait` method (`None` for
    /// free functions).
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range `[open, close]` of the brace-matched body in
    /// [`ParsedFile::tokens`] (`None` for bodiless trait declarations).
    pub body: Option<(usize, usize)>,
    /// Parameter bindings recovered from the signature as `(name,
    /// effective type)` pairs (see [`effective_type`]). Receivers
    /// (`self`) and destructuring patterns are omitted.
    pub params: Vec<(String, Option<String>)>,
}

/// One parsed `struct` item: its name and the effective type of each
/// named field (consumed by the call graph's receiver typing).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// Named fields as `(field, effective type)`; empty for tuple and
    /// unit structs.
    pub fields: Vec<(String, String)>,
}

/// One parsed `enum *Error` item.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// The enum's name (always ends in `Error`).
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// Variant names with their 1-based definition lines.
    pub variants: Vec<(String, u32)>,
}

/// One parsed source file: its (test-stripped) tokens plus the items
/// recovered from them.
#[derive(Debug)]
pub struct ParsedFile {
    /// Repo-relative path (forward slashes).
    pub path: String,
    /// Crate identifier derived from the path — see [`crate_of`].
    pub krate: String,
    /// The test-stripped token stream the item spans index into.
    pub tokens: Vec<Token>,
    /// Every function item found.
    pub fns: Vec<FnItem>,
    /// Every `enum *Error` found.
    pub enums: Vec<EnumItem>,
    /// Every `struct` found (for field typing).
    pub structs: Vec<StructItem>,
}

/// Maps a repo-relative path to its crate identifier:
/// `crates/<name>/src/...` → `<name>`, `src/...` → `atis`,
/// `examples/<stem>.rs` → `example:<stem>`.
pub fn crate_of(path: &str) -> String {
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    if let Some(rest) = path.strip_prefix("examples/") {
        let stem = rest.strip_suffix(".rs").unwrap_or(rest);
        return format!("example:{stem}");
    }
    "atis".to_string()
}

/// Keywords that can never be a call target or a type name.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "async", "await",
];

/// Whether `s` is a Rust keyword.
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Collapses a type region `tokens[start..end]` to the one identifier
/// that governs method dispatch, or `None` when dispatch cannot be
/// pinned down lexically:
///
/// * references, `mut`, and lifetimes are skipped (`&'a mut Foo` →
///   `Foo`);
/// * the pointer wrappers `Arc`/`Rc`/`Box` are looked *through* because
///   they auto-deref method calls to the inner type (`Arc<Grid>` →
///   `Grid`);
/// * `dyn Trait` / `impl Trait` collapse to `None` — the concrete
///   receiver is unknowable here, so callers fall back to fan-out;
/// * single-uppercase-letter names (`T`, `F`) are treated as generic
///   parameters and collapse to `None` for the same reason;
/// * tuple, slice, and fn-pointer types collapse to `None`.
pub fn effective_type(tokens: &[Token], start: usize, end: usize) -> Option<String> {
    let mut j = start;
    while j < end {
        let t = &tokens[j];
        if t.kind == TokenKind::Lifetime || t.is_punct('&') || t.is_ident("mut") {
            j += 1;
            continue;
        }
        if t.is_ident("dyn") || t.is_ident("impl") || t.is_ident("fn") {
            return None;
        }
        if t.kind == TokenKind::Ident {
            if tokens.get(j + 1).is_some_and(|a| a.is_punct(':'))
                && tokens.get(j + 2).is_some_and(|b| b.is_punct(':'))
            {
                j += 3; // `mod::` path prefix — the last segment governs
                continue;
            }
            if is_keyword(&t.text) {
                return None;
            }
            if matches!(t.text.as_str(), "Arc" | "Rc" | "Box")
                && tokens.get(j + 1).is_some_and(|n| n.is_punct('<'))
            {
                j += 2; // look through the wrapper to the pointee
                continue;
            }
            let mut chars = t.text.chars();
            let first = chars.next()?;
            if first.is_uppercase() && chars.next().is_none() {
                return None; // single letter: almost surely a generic
            }
            return Some(t.text.clone());
        }
        return None; // `(`, `[`, `*`, … — not a plain path type
    }
    None
}

/// Precomputes, for every `{`, the index of its matching `}`.
fn brace_matches(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut matches = vec![None; tokens.len()];
    let mut stack = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(i);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                matches[open] = Some(i);
            }
        }
    }
    matches
}

/// Parses one file's (test-stripped) token stream into items.
pub fn parse_file(path: &str, tokens: Vec<Token>) -> ParsedFile {
    let matches = brace_matches(&tokens);
    let mut fns = Vec::new();
    let mut enums = Vec::new();
    let mut structs = Vec::new();
    // Stack of (close_brace_index, self_ty) for enclosing impl/trait
    // blocks; the innermost one supplies the method's self type.
    let mut impl_stack: Vec<(usize, Option<String>)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(&(close, _)) = impl_stack.last() {
            if i > close {
                impl_stack.pop();
            } else {
                break;
            }
        }
        let t = &tokens[i];
        if t.is_ident("impl") || t.is_ident("trait") {
            if let Some((open, self_ty)) = parse_impl_header(&tokens, i) {
                if let Some(close) = matches[open] {
                    impl_stack.push((close, self_ty));
                }
                i = open + 1;
                continue;
            }
        } else if t.is_ident("fn") {
            if let Some((item, next)) = parse_fn(&tokens, i, &matches, &impl_stack) {
                // Continue scanning *inside* the body so nested fns are
                // their own items; the outer range already excludes
                // nothing (passes skip nested ranges themselves).
                fns.push(item);
                i = next;
                continue;
            }
        } else if t.is_ident("enum") {
            if let Some((item, next)) = parse_enum(&tokens, i, &matches) {
                enums.push(item);
                i = next;
                continue;
            }
        } else if t.is_ident("struct") {
            if let Some((item, next)) = parse_struct(&tokens, i, &matches) {
                structs.push(item);
                i = next;
                continue;
            }
        }
        i += 1;
    }
    ParsedFile {
        path: path.to_string(),
        krate: crate_of(path),
        tokens,
        fns,
        enums,
        structs,
    }
}

/// Parses an `impl`/`trait` header starting at `i` (the keyword).
/// Returns the index of the opening `{` and the recovered self type.
fn parse_impl_header(tokens: &[Token], i: usize) -> Option<(usize, Option<String>)> {
    let is_trait = tokens[i].is_ident("trait");
    let mut j = i + 1;
    // Skip the generic parameter list, if any. `>` that is part of a
    // `->` (e.g. `impl<F: Fn() -> T>`) does not close an angle bracket.
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while j < tokens.len() {
            if tokens[j].is_punct('<') {
                depth += 1;
            } else if tokens[j].is_punct('>') && !(j > 0 && tokens[j - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    if is_trait {
        // `trait Name …` — the name is the first identifier.
        let name = tokens.get(j).filter(|t| t.kind == TokenKind::Ident)?;
        let name = name.text.clone();
        let open = find_open_brace(tokens, j)?;
        return Some((open, Some(name)));
    }
    // `impl [Trait for] Type … {` — collect top-level identifiers until
    // the body `{` or a `where` clause; `for` resets the collection so
    // the implemented type wins; the *last* top-level segment of a path
    // is the type name (`fmt::Display for RouteAnswer` → `RouteAnswer`,
    // `Iter<'a, T>` → `Iter`).
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut last: Option<String> = None;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(j > 0 && tokens[j - 1].is_punct('-')) {
            angle -= 1;
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if angle == 0 && paren == 0 {
            if t.is_punct('{') {
                return Some((j, last));
            }
            if t.is_ident("where") {
                let open = find_open_brace(tokens, j)?;
                return Some((open, last));
            }
            if t.is_ident("for") {
                last = None;
            } else if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
                last = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Finds the next `{` at paren depth 0 starting from `j`.
fn find_open_brace(tokens: &[Token], mut j: usize) -> Option<usize> {
    let mut paren = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('{') && paren == 0 {
            return Some(j);
        } else if t.is_punct(';') && paren == 0 {
            return None;
        }
        j += 1;
    }
    None
}

/// Parses a `fn` item starting at `i` (the `fn` keyword). Returns the
/// item and the index to continue scanning from (just *inside* the body
/// so nested items are found, or past the `;` of a bodiless
/// declaration).
fn parse_fn(
    tokens: &[Token],
    i: usize,
    matches: &[Option<usize>],
    impl_stack: &[(usize, Option<String>)],
) -> Option<(FnItem, usize)> {
    let name_tok = tokens.get(i + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None; // `fn(` — a function-pointer type, not an item
    }
    let name = name_tok.text.clone();
    // Find the parameter list: the first balanced paren group after the
    // name (skipping generics between name and `(`).
    let mut j = i + 2;
    let mut params = Vec::new();
    let mut angle = 0i32;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(j > 0 && tokens[j - 1].is_punct('-')) {
            angle -= 1;
        } else if t.is_punct('(') && angle == 0 {
            break;
        } else if (t.is_punct('{') || t.is_punct(';')) && angle == 0 {
            return None; // malformed — bail out of this candidate
        }
        j += 1;
    }
    if j < tokens.len() && tokens[j].is_punct('(') {
        let open = j;
        let mut paren = 0i32;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            }
            j += 1;
        }
        params = parse_params(tokens, open + 1, j);
        j += 1;
    }
    let self_ty = impl_stack.last().and_then(|(_, ty)| ty.clone());
    // The body is the first `{` at paren depth 0 after the signature
    // (return types and where clauses contain no braces); a `;` first
    // means a bodiless trait declaration.
    match find_open_brace(tokens, j) {
        Some(open) => {
            let close = matches.get(open).copied().flatten()?;
            Some((
                FnItem {
                    name,
                    self_ty,
                    line: name_tok.line,
                    body: Some((open, close)),
                    params,
                },
                open + 1,
            ))
        }
        None => Some((
            FnItem {
                name,
                self_ty,
                line: name_tok.line,
                body: None,
                params,
            },
            j + 1,
        )),
    }
}

/// Parses a parameter list `tokens[start..end)` (the region between the
/// signature's parens) into `(binding name, effective type)` pairs.
/// Receivers and destructuring patterns contribute nothing.
fn parse_params(tokens: &[Token], start: usize, end: usize) -> Vec<(String, Option<String>)> {
    let mut params = Vec::new();
    let mut a = start;
    while a < end {
        // One parameter runs to the next `,` at combined depth 0
        // (angle-depth counts `<`/`>` with the `->` guard so generic
        // arguments keep their commas).
        let mut depth = 0i32;
        let mut b = a;
        let mut colon = None;
        while b < end {
            let t = &tokens[b];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
                depth += 1;
            } else if (t.is_punct('>') && !(b > 0 && tokens[b - 1].is_punct('-')))
                || t.is_punct(')')
                || t.is_punct(']')
                || t.is_punct('}')
            {
                depth -= 1;
            } else if depth == 0 && t.is_punct(',') {
                break;
            } else if depth == 0
                && colon.is_none()
                && t.is_punct(':')
                && !tokens.get(b + 1).is_some_and(|n| n.is_punct(':'))
                && !(b > 0 && tokens[b - 1].is_punct(':'))
            {
                colon = Some(b);
            }
            b += 1;
        }
        if let Some(c) = colon {
            // Binding name: the pattern side must be a plain
            // `[mut] name`; anything else (tuples, struct patterns) is
            // skipped.
            let mut p = a;
            while p < c && (tokens[p].is_ident("mut") || tokens[p].is_punct('&')) {
                p += 1;
            }
            if p + 1 == c && tokens[p].kind == TokenKind::Ident && !is_keyword(&tokens[p].text) {
                params.push((tokens[p].text.clone(), effective_type(tokens, c + 1, b)));
            }
        }
        a = b + 1;
    }
    params
}

/// Parses a `struct` item at `i` (the keyword): the name plus, for
/// brace-form structs, each named field's effective type. Tuple and
/// unit structs yield an empty field list.
fn parse_struct(
    tokens: &[Token],
    i: usize,
    matches: &[Option<usize>],
) -> Option<(StructItem, usize)> {
    let name_tok = tokens.get(i + 1)?;
    if name_tok.kind != TokenKind::Ident || is_keyword(&name_tok.text) {
        return None;
    }
    let mut fields = Vec::new();
    let Some(open) = find_open_brace(tokens, i + 2) else {
        // Tuple (`struct P(u32);`) or unit struct: name only.
        return Some((
            StructItem {
                name: name_tok.text.clone(),
                fields,
            },
            i + 2,
        ));
    };
    let close = matches.get(open).copied().flatten()?;
    let mut j = open + 1;
    let mut depth = 0i32;
    while j < close {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
            depth += 1;
        } else if (t.is_punct('>') && !(j > 0 && tokens[j - 1].is_punct('-')))
            || t.is_punct(')')
            || t.is_punct(']')
            || t.is_punct('}')
        {
            depth -= 1;
        } else if depth == 0
            && t.kind == TokenKind::Ident
            && !is_keyword(&t.text)
            && tokens.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && !tokens.get(j + 2).is_some_and(|n| n.is_punct(':'))
        {
            // `field: Type` — the type region runs to the next `,` at
            // depth 0 (or the closing brace).
            let mut b = j + 2;
            let mut d = 0i32;
            while b < close {
                let u = &tokens[b];
                if u.is_punct('(') || u.is_punct('[') || u.is_punct('{') || u.is_punct('<') {
                    d += 1;
                } else if (u.is_punct('>') && !(b > 0 && tokens[b - 1].is_punct('-')))
                    || u.is_punct(')')
                    || u.is_punct(']')
                    || u.is_punct('}')
                {
                    d -= 1;
                } else if d == 0 && u.is_punct(',') {
                    break;
                }
                b += 1;
            }
            if let Some(ty) = effective_type(tokens, j + 2, b) {
                fields.push((t.text.clone(), ty));
            }
            j = b;
            continue;
        }
        j += 1;
    }
    Some((
        StructItem {
            name: name_tok.text.clone(),
            fields,
        },
        close + 1,
    ))
}

/// Parses an `enum` item at `i` if its name ends in `Error`.
fn parse_enum(tokens: &[Token], i: usize, matches: &[Option<usize>]) -> Option<(EnumItem, usize)> {
    let name_tok = tokens.get(i + 1)?;
    if name_tok.kind != TokenKind::Ident || !name_tok.text.ends_with("Error") {
        return None;
    }
    let open = find_open_brace(tokens, i + 2)?;
    let close = matches.get(open).copied().flatten()?;
    let mut variants = Vec::new();
    // Variant names are the first identifier of each depth-1 arm,
    // skipping `#[...]` attributes between variants.
    let mut j = open + 1;
    let mut expect_name = true;
    let mut depth = 0i32;
    while j < close {
        let t = &tokens[j];
        if t.is_punct('#') && tokens.get(j + 1).is_some_and(|b| b.is_punct('[')) && depth == 0 {
            let mut k = j + 1;
            let mut bd = 0i32;
            while k < close {
                if tokens[k].is_punct('[') {
                    bd += 1;
                } else if tokens[k].is_punct(']') {
                    bd -= 1;
                    if bd == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
            continue;
        }
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct(',') {
                expect_name = true;
            } else if expect_name && t.kind == TokenKind::Ident {
                variants.push((t.text.clone(), t.line));
                expect_name = false;
            }
        }
        j += 1;
    }
    Some((
        EnumItem {
            name: name_tok.text.clone(),
            line: name_tok.line,
            variants,
        },
        close + 1,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse(src: &str) -> ParsedFile {
        let (tokens, _) = lexer::lex(src);
        parse_file("crates/demo/src/lib.rs", tokens)
    }

    #[test]
    fn free_and_impl_fns_are_separated() {
        let f = parse(
            "fn free() { helper(); }\n\
             impl Widget { fn method(&self) -> u32 { 1 } }\n\
             impl fmt::Display for Widget { fn fmt(&self) {} }",
        );
        let names: Vec<(String, Option<String>)> = f
            .fns
            .iter()
            .map(|x| (x.name.clone(), x.self_ty.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("method".into(), Some("Widget".into())),
                ("fmt".into(), Some("Widget".into())),
            ]
        );
    }

    #[test]
    fn generic_impls_recover_the_type_name() {
        let f = parse("impl<'a, T: Fn() -> u8> Iterator for Iter<'a, T> { fn next(&mut self) {} }");
        assert_eq!(f.fns[0].self_ty.as_deref(), Some("Iter"));
    }

    #[test]
    fn trait_default_methods_carry_the_trait_name() {
        let f = parse("trait Sink { fn flush(&self); fn emit(&self) { self.flush(); } }");
        assert_eq!(f.fns.len(), 2);
        assert!(f.fns[0].body.is_none());
        assert_eq!(f.fns[1].name, "emit");
        assert_eq!(f.fns[1].self_ty.as_deref(), Some("Sink"));
    }

    #[test]
    fn nested_fns_are_their_own_items() {
        let f = parse("fn outer() { fn inner() { boom(); } inner(); }");
        assert_eq!(f.fns.len(), 2);
        let outer = &f.fns[0];
        let inner = &f.fns[1];
        let (ob, oe) = outer.body.unwrap();
        let (ib, ie) = inner.body.unwrap();
        assert!(ob < ib && ie < oe, "inner body nested in outer");
    }

    #[test]
    fn error_enums_yield_variant_names() {
        let f = parse(
            "pub enum DemoError { Io { op: u8 }, #[doc = \"x\"] Missing(u32), Plain, }\n\
             pub enum NotTracked { A, B }",
        );
        assert_eq!(f.enums.len(), 1);
        let vs: Vec<&str> = f.enums[0]
            .variants
            .iter()
            .map(|(v, _)| v.as_str())
            .collect();
        assert_eq!(vs, ["Io", "Missing", "Plain"]);
    }

    #[test]
    fn crate_ids_follow_paths() {
        assert_eq!(crate_of("crates/serve/src/service.rs"), "serve");
        assert_eq!(crate_of("examples/route_server.rs"), "example:route_server");
        assert_eq!(crate_of("src/bin/atis.rs"), "atis");
    }

    #[test]
    fn where_clauses_do_not_leak_into_the_self_type() {
        let f = parse("impl<T> Holder<T> where T: Clone { fn get(&self) {} }");
        assert_eq!(f.fns[0].self_ty.as_deref(), Some("Holder"));
    }

    #[test]
    fn params_carry_effective_types() {
        let f = parse(
            "fn go(g: &Grid, mut k: u32, m: BTreeMap<NodeId, Vec<Edge>>, \
             db: Arc<Database>, obs: &mut dyn Observer, t: T, (a, b): (u8, u8)) {}",
        );
        assert_eq!(
            f.fns[0].params,
            vec![
                ("g".into(), Some("Grid".into())),
                ("k".into(), Some("u32".into())),
                ("m".into(), Some("BTreeMap".into())),
                ("db".into(), Some("Database".into())),
                ("obs".into(), None), // dyn: dispatch target unknown
                ("t".into(), None),   // single letter: generic
            ]
        );
    }

    #[test]
    fn struct_fields_collapse_to_effective_types() {
        let f = parse(
            "pub struct Service { pub cache: RouteCache, db: Arc<storage::Database>, \
             names: Vec<String>, #[allow(dead_code)] n: u32 }\n\
             struct Unit;\nstruct Pair(u32, u32);",
        );
        assert_eq!(f.structs.len(), 3);
        assert_eq!(
            f.structs[0].fields,
            vec![
                ("cache".into(), "RouteCache".into()),
                ("db".into(), "Database".into()),
                ("names".into(), "Vec".into()),
                ("n".into(), "u32".into()),
            ]
        );
        assert!(f.structs[1].fields.is_empty());
        assert!(f.structs[2].fields.is_empty());
    }

    #[test]
    fn effective_types_see_through_wrappers_and_paths() {
        let cases = [
            ("&'a mut Grid", Some("Grid")),
            ("Arc<Mutex<Grid>>", Some("Mutex")),
            ("std::sync::Arc<Grid>", Some("Grid")),
            ("graph::NodeId", Some("NodeId")),
            ("impl Iterator<Item = u8>", None),
            ("&[Block]", None),
            ("F", None),
        ];
        for (src, want) in cases {
            let (tokens, _) = lexer::lex(src);
            let n = tokens.len();
            assert_eq!(
                effective_type(&tokens, 0, n).as_deref(),
                want,
                "type `{src}`"
            );
        }
    }
}
