//! The invariant rules.
//!
//! Every rule is a pure function over the lexed token stream of one
//! file; scoping (which crates a rule applies to) is path-prefix based
//! and lives in [`RuleInfo::scope`]. `ANALYSIS.md` documents each
//! rule, its rationale, and the allow-list escape hatch; keep the two
//! in sync.
//!
//! These are deliberately *lexical* checks: with no type information
//! they over-approximate in places (documented per rule). Every rule is
//! tripped by a fixture under `tests/fixtures/` and must report zero
//! findings on the workspace at HEAD — that pair of properties is what
//! `tests/linter.rs` pins.

use crate::lexer::{Token, TokenKind};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (also the allow-directive key).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
    /// Call-chain witness for interprocedural findings: one hop per
    /// entry, root first. Empty for lexical rules.
    pub witness: Vec<String>,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Crates whose algorithm results must be bit-deterministic (the
/// paper-table oracle tests depend on it).
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/algorithms/src/",
    "crates/costmodel/src/",
    "crates/hierarchy/src/",
    "crates/preprocess/src/",
];

/// The serving request path: no panics on client-reachable input.
const SERVE_SCOPE: &[&str] = &["crates/serve/src/", "examples/route_server.rs"];

/// Designated lock-acquisition helpers in `atis-serve`, in the global
/// acquisition order. A helper may only be called while holding locks
/// of *strictly lower* rank. `crates/serve/src/sync.rs` is the one
/// place allowed to touch `Mutex::lock` / `Condvar::wait` directly.
pub const LOCK_ORDER: &[(&str, u32, &str)] = &[
    ("lock_queue", 1, "Shared.queue — the admission queue"),
    (
        "lock_current",
        2,
        "EpochDb.current — the epoch snapshot slot",
    ),
    (
        "lock_entries",
        3,
        "RouteCache.inner — the route-cache table",
    ),
    ("lock_slot", 4, "TicketInner.slot — a ticket's answer slot"),
    (
        "lock_breaker",
        5,
        "CircuitBreaker.inner — a breaker's state machine",
    ),
];

/// Static description of one rule for `atis-analyze rules` and the
/// docs.
pub struct RuleInfo {
    /// Stable identifier (allow-directive key).
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Human-readable scope.
    pub scope: &'static str,
}

/// The rule table, in evaluation order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "determinism-wall-clock",
        summary: "no std::time::{Instant, SystemTime} — wall clock must not reach algorithm state",
        scope: "atis-algorithms, atis-costmodel, atis-hierarchy, atis-preprocess",
    },
    RuleInfo {
        id: "determinism-rng",
        summary: "no ambient randomness (thread_rng, rand::random, OsRng, from_entropy)",
        scope: "atis-algorithms, atis-costmodel, atis-hierarchy, atis-preprocess",
    },
    RuleInfo {
        id: "determinism-hash-iteration",
        summary: "no iteration over HashMap/HashSet — iteration order is unspecified",
        scope: "atis-algorithms, atis-costmodel, atis-hierarchy, atis-preprocess",
    },
    RuleInfo {
        id: "determinism-nan-compare",
        summary: "no partial_cmp().unwrap()/expect() — use total_cmp for floats",
        scope: "atis-algorithms, atis-costmodel, atis-hierarchy, atis-preprocess",
    },
    RuleInfo {
        id: "metered-io",
        summary: "no direct filesystem access — all I/O goes through IoStats-metered storage",
        scope: "atis-algorithms, atis-costmodel, atis-hierarchy, atis-preprocess",
    },
    RuleInfo {
        id: "panic-hygiene",
        summary: "no unwrap/expect/panic!/indexing in the serving request path",
        scope: "atis-serve, examples/route_server.rs",
    },
    RuleInfo {
        id: "serve-outcome",
        summary: "every RouteAnswer is built with its outcome and deadline classification",
        scope: "atis-serve, examples/route_server.rs",
    },
    RuleInfo {
        id: "non-exhaustive-errors",
        summary: "public *Error enums must be #[non_exhaustive]",
        scope: "all workspace crates",
    },
    RuleInfo {
        id: "lock-discipline",
        summary: "Mutex::lock / Condvar::wait only via the sync:: helpers",
        scope: "atis-serve (sync.rs exempt)",
    },
    RuleInfo {
        id: "lock-order",
        summary: "designated lock helpers acquired in declared rank order",
        scope: "atis-serve",
    },
    RuleInfo {
        id: crate::passes::lock_order::ID,
        summary: "no call chain acquires a lower-or-equal lock rank while one is held",
        scope: "atis-serve callers, whole-workspace callees (graph pass)",
    },
    RuleInfo {
        id: crate::passes::metered_io::ID,
        summary: "raw I/O reachable from serving/algorithm roots only via IoStats wrappers",
        scope: "whole workspace (graph pass)",
    },
    RuleInfo {
        id: crate::passes::panic_reach::ID,
        summary: "no panic site transitively reachable from the serving entry points",
        scope: "whole workspace (graph pass)",
    },
    RuleInfo {
        id: crate::passes::ladder::ID,
        summary: "every constructed error variant is matched somewhere on the serving path",
        scope: "AlgorithmError/ServeError/StorageError (graph pass)",
    },
    RuleInfo {
        id: "unused-allow",
        summary: "analyze::allow directives that suppress nothing are findings themselves",
        scope: "all workspace crates",
    },
];

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p) || path == *p)
}

/// Runs every rule that applies to `path` over `tokens` (test regions
/// already stripped). Allow filtering happens in the caller.
pub fn run_all(path: &str, tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    if in_scope(path, DETERMINISM_SCOPE) {
        determinism_wall_clock(path, tokens, &mut findings);
        determinism_rng(path, tokens, &mut findings);
        determinism_hash_iteration(path, tokens, &mut findings);
        determinism_nan_compare(path, tokens, &mut findings);
        metered_io(path, tokens, &mut findings);
    }
    if in_scope(path, SERVE_SCOPE) {
        panic_hygiene(path, tokens, &mut findings);
        serve_outcome(path, tokens, &mut findings);
    }
    non_exhaustive_errors(path, tokens, &mut findings);
    if path.starts_with("crates/serve/src/") && !path.ends_with("/sync.rs") {
        lock_discipline(path, tokens, &mut findings);
    }
    if path.starts_with("crates/serve/src/") {
        lock_order(path, tokens, &mut findings);
    }
    findings
}

/// Removes `#[cfg(test)]` items and `#[test]` functions from the token
/// stream: test code may unwrap, time, and shuffle freely.
pub fn strip_test_regions(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if is_test_attribute(tokens, i) {
            // Skip the attribute itself, any further attributes, then
            // the annotated item (through its `;` or matching `}`).
            i = skip_attribute(tokens, i);
            while i < tokens.len() && tokens[i].is_punct('#') {
                i = skip_attribute(tokens, i);
            }
            i = skip_item(tokens, i);
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Whether tokens at `i` start `#[cfg(test)]` or `#[test]`.
fn is_test_attribute(tokens: &[Token], i: usize) -> bool {
    if !tokens[i].is_punct('#') {
        return false;
    }
    let t = |k: usize| tokens.get(i + k);
    let Some(open) = t(1) else { return false };
    if !open.is_punct('[') {
        return false;
    }
    match t(2) {
        Some(tok) if tok.is_ident("test") => t(3).is_some_and(|x| x.is_punct(']')),
        Some(tok) if tok.is_ident("cfg") => {
            t(3).is_some_and(|x| x.is_punct('('))
                && t(4).is_some_and(|x| x.is_ident("test"))
                && t(5).is_some_and(|x| x.is_punct(')'))
        }
        _ => false,
    }
}

/// Skips one `#[...]` attribute starting at `i`; returns the index just
/// past its closing `]`.
fn skip_attribute(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1; // at '['
    let mut depth = 0;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Skips one item starting at `i`: through the first `;` seen before
/// any `{`, or through the matching `}` of the first `{`.
fn skip_item(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    while j < tokens.len() {
        if tokens[j].is_punct(';') {
            return j + 1;
        }
        if tokens[j].is_punct('{') {
            let mut depth = 0;
            while j < tokens.len() {
                if tokens[j].is_punct('{') {
                    depth += 1;
                } else if tokens[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                j += 1;
            }
            return j;
        }
        j += 1;
    }
    j
}

fn push(findings: &mut Vec<Finding>, rule: &'static str, path: &str, line: u32, message: String) {
    findings.push(Finding {
        rule,
        path: path.to_string(),
        line,
        message,
        witness: Vec::new(),
    });
}

// --- determinism ------------------------------------------------------------

fn determinism_wall_clock(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for t in tokens {
        if t.is_ident("Instant") || t.is_ident("SystemTime") {
            push(
                findings,
                "determinism-wall-clock",
                path,
                t.line,
                format!(
                    "`{}` in a determinism-scoped crate: wall-clock values must never \
                     influence algorithm results (bit-identity oracle tests)",
                    t.text
                ),
            );
        }
    }
}

fn determinism_rng(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        let ambient = t.is_ident("thread_rng")
            || t.is_ident("OsRng")
            || t.is_ident("from_entropy")
            || (t.is_ident("rand")
                && matches!(tokens.get(i + 1), Some(c) if c.is_punct(':'))
                && matches!(tokens.get(i + 3), Some(r) if r.is_ident("random")));
        if ambient {
            push(
                findings,
                "determinism-rng",
                path,
                t.line,
                format!(
                    "`{}`: ambient randomness in a determinism-scoped crate; \
                     seed explicitly via atis_graph::rng",
                    t.text
                ),
            );
        }
    }
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Collects names bound (by `let` or as a typed field/param) to a hash
/// container, then flags iteration over them. Lexical approximation:
/// `name : ... HashMap` within a 6-token window, or
/// `let [mut] name = Hash{Map,Set}::...`.
fn determinism_hash_iteration(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let mut hash_names: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name : [path ::]* HashMap/HashSet`
        if matches!(tokens.get(i + 1), Some(c) if c.is_punct(':')) {
            let window = tokens.iter().skip(i + 2).take(6);
            if window
                .take_while(|w| !w.is_punct(';') && !w.is_punct(',') && !w.is_punct(')'))
                .any(|w| HASH_TYPES.contains(&w.text.as_str()))
            {
                hash_names.push(t.text.clone());
            }
        }
        // `let [mut] name = HashMap::...`
        if t.is_ident("let") {
            let mut j = i + 1;
            if matches!(tokens.get(j), Some(m) if m.is_ident("mut")) {
                j += 1;
            }
            if let (Some(name), Some(eq), Some(ty)) =
                (tokens.get(j), tokens.get(j + 1), tokens.get(j + 2))
            {
                if name.kind == TokenKind::Ident
                    && eq.is_punct('=')
                    && HASH_TYPES.contains(&ty.text.as_str())
                {
                    hash_names.push(name.text.clone());
                }
            }
        }
    }
    if hash_names.is_empty() {
        return;
    }
    for (i, t) in tokens.iter().enumerate() {
        if !hash_names.contains(&t.text) {
            continue;
        }
        // `name . iter ( ` and friends
        if matches!(tokens.get(i + 1), Some(d) if d.is_punct('.')) {
            if let Some(m) = tokens.get(i + 2) {
                if ITER_METHODS.contains(&m.text.as_str())
                    && matches!(tokens.get(i + 3), Some(p) if p.is_punct('('))
                {
                    push(
                        findings,
                        "determinism-hash-iteration",
                        path,
                        m.line,
                        format!(
                            "iterating hash container `{}` via `.{}()`: iteration order is \
                             unspecified; use a BTree container or sort first",
                            t.text, m.text
                        ),
                    );
                }
            }
        }
        // `for pat in [&][mut] name {`
        if i >= 1 {
            let mut j = i - 1;
            if tokens[j].is_ident("mut") && j > 0 {
                j -= 1;
            }
            if tokens[j].is_punct('&') && j > 0 {
                j -= 1;
            }
            if tokens[j].is_ident("in") && matches!(tokens.get(i + 1), Some(b) if b.is_punct('{')) {
                push(
                    findings,
                    "determinism-hash-iteration",
                    path,
                    t.line,
                    format!(
                        "`for _ in {}`: hash container iteration order is unspecified",
                        t.text
                    ),
                );
            }
        }
    }
}

fn determinism_nan_compare(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("partial_cmp") {
            continue;
        }
        let Some(open) = tokens.get(i + 1) else {
            continue;
        };
        if !open.is_punct('(') {
            continue; // a definition or a bare path, not a call
        }
        // Balance the call's parens, then look for `.unwrap(` / `.expect(`.
        let mut depth = 0;
        let mut j = i + 1;
        while j < tokens.len() {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if matches!(tokens.get(j + 1), Some(d) if d.is_punct('.')) {
            if let Some(m) = tokens.get(j + 2) {
                if m.is_ident("unwrap") || m.is_ident("expect") {
                    push(
                        findings,
                        "determinism-nan-compare",
                        path,
                        m.line,
                        format!(
                            "`partial_cmp(..).{}()`: panics on NaN and leaves comparison \
                             order undefined; use `total_cmp`",
                            m.text
                        ),
                    );
                }
            }
        }
    }
}

fn metered_io(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        let seq3 = |a: &str, b: &str| {
            t.is_ident(a)
                && matches!(tokens.get(i + 1), Some(c) if c.is_punct(':'))
                && matches!(tokens.get(i + 2), Some(c) if c.is_punct(':'))
                && matches!(tokens.get(i + 3), Some(f) if f.is_ident(b))
        };
        let hit = if seq3("std", "fs") {
            Some("std::fs")
        } else if t.is_ident("OpenOptions") {
            Some("OpenOptions")
        } else if seq3("File", "open") || seq3("File", "create") || seq3("File", "options") {
            Some("File::*")
        } else {
            None
        };
        if let Some(what) = hit {
            push(
                findings,
                "metered-io",
                path,
                t.line,
                format!(
                    "`{what}`: direct filesystem access in an algorithm crate bypasses the \
                     IoStats choke point the paper's cost tables are metered through"
                ),
            );
        }
    }
}

// --- panic hygiene ----------------------------------------------------------

/// Keywords that may legally precede a `[` that starts an array
/// expression/type rather than an indexing operation.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "return", "in", "if", "else", "match", "mut", "ref", "move", "break", "continue", "as",
    "dyn", "impl", "for", "where", "use", "pub", "enum", "struct", "fn", "type", "static", "const",
    "box", "yield",
];

fn panic_hygiene(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        // .unwrap( / .expect(
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && i >= 1
            && tokens[i - 1].is_punct('.')
            && matches!(tokens.get(i + 1), Some(p) if p.is_punct('('))
        {
            push(
                findings,
                "panic-hygiene",
                path,
                t.line,
                format!(
                    "`.{}()` in the serving path: convert to a typed ServeError / ERR reply \
                     — a client request must never abort the server",
                    t.text
                ),
            );
        }
        // panic!/unreachable!/todo!/unimplemented!
        if matches!(tokens.get(i + 1), Some(b) if b.is_punct('!'))
            && ["panic", "unreachable", "todo", "unimplemented"].contains(&t.text.as_str())
        {
            push(
                findings,
                "panic-hygiene",
                path,
                t.line,
                format!("`{}!` in the serving path", t.text),
            );
        }
        // indexing: `expr[...]` — `[` preceded by an identifier, `)` or `]`
        if t.is_punct('[') && is_indexing(tokens, i) {
            push(
                findings,
                "panic-hygiene",
                path,
                t.line,
                "slice/array indexing in the serving path: panics when out of bounds; \
                 use .get() or pattern matching"
                    .to_string(),
            );
        }
    }
}

/// Whether the `[` at token `i` is an indexing operation (as opposed to
/// an array expression/type or attribute): preceded by a non-keyword
/// identifier, `)`, or `]`. Shared with the panic-reachability pass.
pub(crate) fn is_indexing(tokens: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let prev = &tokens[i - 1];
    match prev.kind {
        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
        TokenKind::Punct(c) => c == ')' || c == ']',
        _ => false,
    }
}

// --- serve outcome ----------------------------------------------------------

/// Every `RouteAnswer { ... }` struct literal in the serving path must
/// name both `outcome` and `deadline` (or functionally forward them via
/// `..`): a response constructed without its overload classification is
/// exactly the bug the degrade ladder exists to prevent — an answer that
/// silently drops whether it was fresh, stale, degraded, or on deadline.
///
/// Lexical approximation: `RouteAnswer` followed by `{` that is not a
/// type definition (`struct`/`impl`/`enum` before it), not a return-type
/// position (`->` before it), and not a pattern with `..`. Destructuring
/// patterns that already name both fields or use `..` pass unflagged.
fn serve_outcome(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("RouteAnswer") {
            continue;
        }
        if !matches!(tokens.get(i + 1), Some(b) if b.is_punct('{')) {
            continue;
        }
        if i >= 1 {
            let prev = &tokens[i - 1];
            // `struct RouteAnswer {` / `impl RouteAnswer {` define or
            // extend the type; `-> ... RouteAnswer {` opens a function
            // body, not a literal.
            if prev.is_ident("struct") || prev.is_ident("impl") || prev.is_punct('>') {
                continue;
            }
        }
        // Walk the balanced literal body collecting depth-1 field names
        // and any rest pattern (`..`).
        let mut depth = 0i32;
        let mut has_outcome = false;
        let mut has_deadline = false;
        let mut has_rest = false;
        let mut j = i + 1;
        while j < tokens.len() {
            let tok = &tokens[j];
            if tok.is_punct('{') {
                depth += 1;
            } else if tok.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1 {
                if tok.is_ident("outcome") {
                    has_outcome = true;
                } else if tok.is_ident("deadline") {
                    has_deadline = true;
                } else if tok.is_punct('.')
                    && matches!(tokens.get(j + 1), Some(d) if d.is_punct('.'))
                {
                    has_rest = true;
                }
            }
            j += 1;
        }
        if !(has_rest || (has_outcome && has_deadline)) {
            push(
                findings,
                "serve-outcome",
                path,
                t.line,
                "`RouteAnswer { .. }` built without `outcome`/`deadline`: every serving-path \
                 response must carry its overload classification (fresh/stale/degraded + \
                 deadline), or the shed/degrade policy becomes unauditable"
                    .to_string(),
            );
        }
    }
}

// --- non-exhaustive errors --------------------------------------------------

fn non_exhaustive_errors(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("pub") {
            continue;
        }
        let Some(kw) = tokens.get(i + 1) else {
            continue;
        };
        let Some(name) = tokens.get(i + 2) else {
            continue;
        };
        if !kw.is_ident("enum") || name.kind != TokenKind::Ident || !name.text.ends_with("Error") {
            continue;
        }
        // Walk back over the item's attributes/doc tokens looking for
        // `non_exhaustive`, stopping at the previous item boundary.
        let mut j = i;
        let mut found = false;
        while j > 0 {
            j -= 1;
            let b = &tokens[j];
            if b.is_punct('}') || b.is_punct(';') || b.is_punct('{') {
                break;
            }
            if b.is_ident("non_exhaustive") {
                found = true;
                break;
            }
        }
        if !found {
            push(
                findings,
                "non-exhaustive-errors",
                path,
                name.line,
                format!(
                    "public error enum `{}` is not #[non_exhaustive]: adding a variant \
                     (new failure mode) would be a breaking change, so errors rot instead",
                    name.text
                ),
            );
        }
    }
}

// --- lock discipline --------------------------------------------------------

fn lock_discipline(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        // `Condvar::wait` always consumes a guard argument, which is what
        // separates it from argument-less methods that happen to share the
        // name (`Ticket::wait()`), so `.wait(` only counts with arguments.
        let takes_args = || !matches!(tokens.get(i + 2), Some(p) if p.is_punct(')'));
        if i >= 1
            && tokens[i - 1].is_punct('.')
            && matches!(tokens.get(i + 1), Some(p) if p.is_punct('('))
            && (t.is_ident("lock")
                || t.is_ident("try_lock")
                || (t.is_ident("wait") && takes_args()))
        {
            push(
                findings,
                "lock-discipline",
                path,
                t.line,
                format!(
                    "raw `.{}()` outside sync.rs: acquire through the designated \
                     sync:: helpers so poisoning policy and lock order stay auditable",
                    t.text
                ),
            );
        }
    }
}

/// Per-function lexical lock-order check over the designated helpers.
///
/// Tracks live guards as `(rank, brace_depth, Option<name>)`; a guard
/// dies when its enclosing block closes, when `drop(name)` is seen, or
/// (for unnamed temporaries) at the next `;` at its own depth.
/// Acquiring a helper while a guard of *higher or equal* rank is live is
/// a violation of the declared order.
fn lock_order(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let rank_of = |name: &str| {
        LOCK_ORDER
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|(_, r, _)| *r)
    };
    let mut depth: i32 = 0;
    let mut guards: Vec<(u32, i32, Option<String>)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|(_, d, _)| *d <= depth);
        } else if t.is_punct(';') {
            guards.retain(|(_, d, name)| name.is_some() || *d != depth);
        } else if t.is_ident("drop") && matches!(tokens.get(i + 1), Some(p) if p.is_punct('(')) {
            if let Some(var) = tokens.get(i + 2) {
                guards.retain(|(_, _, name)| name.as_deref() != Some(var.text.as_str()));
            }
        } else if t.kind == TokenKind::Ident {
            let Some(rank) = rank_of(&t.text) else {
                continue;
            };
            // Only count call sites: `.helper(` — skip the definitions
            // (`fn lock_queue`) and paths.
            if i == 0
                || !tokens[i - 1].is_punct('.')
                || !matches!(tokens.get(i + 1), Some(p) if p.is_punct('('))
            {
                continue;
            }
            for (held, _, name) in &guards {
                if *held >= rank {
                    let held_name = LOCK_ORDER
                        .iter()
                        .find(|(_, r, _)| r == held)
                        .map(|(n, _, _)| *n)
                        .unwrap_or("?");
                    push(
                        findings,
                        "lock-order",
                        path,
                        t.line,
                        format!(
                            "`{}` (rank {rank}) acquired while `{held_name}` (rank {held}) is \
                             held{}: violates the declared lock order",
                            t.text,
                            name.as_deref()
                                .map(|n| format!(" as `{n}`"))
                                .unwrap_or_default(),
                        ),
                    );
                }
            }
            // Bind the guard name if this is a `let [mut] name = ...` stmt.
            let name = statement_binding(tokens, i);
            guards.push((rank, depth, name));
        }
    }
}

/// If the statement containing token `i` is `let [mut] NAME = ...`,
/// returns `NAME`. Searches backwards to the statement start. Shared
/// with the interprocedural lock-order pass.
pub(crate) fn statement_binding(tokens: &[Token], i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        if t.is_ident("let") {
            let mut k = j + 1;
            if matches!(tokens.get(k), Some(m) if m.is_ident("mut")) {
                k += 1;
            }
            return tokens.get(k).map(|n| n.text.clone());
        }
    }
    None
}
