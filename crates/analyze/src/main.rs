//! CLI for the workspace invariant linter.
//!
//! ```sh
//! atis-analyze check [--root DIR]   # lint the workspace; exit 1 on findings
//! atis-analyze rules                # print the rule table and lock order
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let root = match parse_root(&args[1..]) {
                Ok(root) => root,
                Err(msg) => {
                    eprintln!("{msg}");
                    return usage();
                }
            };
            match atis_analyze::check_workspace(&root) {
                Ok(findings) if findings.is_empty() => {
                    println!(
                        "atis-analyze: workspace clean ({} rules)",
                        atis_analyze::RULES.len()
                    );
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        eprintln!("{f}");
                    }
                    eprintln!(
                        "atis-analyze: {} finding(s); see ANALYSIS.md for rules and \
                         `analyze::allow(rule): reason` escape hatches",
                        findings.len()
                    );
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("atis-analyze: workspace scan failed: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("rules") => {
            println!("{:<28} {:<44} scope", "rule", "summary");
            for r in atis_analyze::RULES {
                println!("{:<28} {:<44} {}", r.id, r.summary, r.scope);
            }
            println!("\nlock acquisition order (lock-order rule):");
            for (name, rank, what) in atis_analyze::LOCK_ORDER {
                println!("  {rank}. {name:<14} {what}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    match args {
        [] => Ok(PathBuf::from(".")),
        [flag, dir] if flag == "--root" => Ok(PathBuf::from(dir)),
        other => Err(format!("unrecognized arguments: {other:?}")),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: atis-analyze <check [--root DIR] | rules>");
    ExitCode::from(2)
}
