//! CLI for the workspace invariant analyzer.
//!
//! ```sh
//! atis-analyze check [--root DIR] [--format text|json] [--stage all|lexical|graph]
//! atis-analyze graph [--root DIR] --dot   # Graphviz dump of the call graph
//! atis-analyze rules                      # print the rule table and lock order
//! atis-analyze --self-test                # embedded end-to-end pass checks
//! ```
//!
//! `check` exits 0 when clean, 1 with findings, 2 on usage or scan
//! errors. Text findings print one header line plus the indented
//! call-chain witness; `--format json` emits a machine-readable array
//! (rule id, file:line, message, witness) for CI artifacts.

use std::path::PathBuf;
use std::process::ExitCode;

use atis_analyze::Stage;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => {
            let opts = match CheckOpts::parse(&args[1..]) {
                Ok(opts) => opts,
                Err(msg) => {
                    eprintln!("{msg}");
                    return usage();
                }
            };
            run_check(&opts)
        }
        Some("graph") => {
            let root = match parse_graph_args(&args[1..]) {
                Ok(root) => root,
                Err(msg) => {
                    eprintln!("{msg}");
                    return usage();
                }
            };
            match atis_analyze::build_graph(&root) {
                Ok(g) => {
                    print!("{}", g.to_dot());
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("atis-analyze: workspace scan failed: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("rules") => {
            println!("{:<30} {:<44} scope", "rule", "summary");
            for r in atis_analyze::RULES {
                println!("{:<30} {:<44} {}", r.id, r.summary, r.scope);
            }
            println!("\nlock acquisition order (lock-order rules):");
            for (name, rank, what) in atis_analyze::LOCK_ORDER {
                println!("  {rank}. {name:<14} {what}");
            }
            ExitCode::SUCCESS
        }
        Some("--self-test") => match atis_analyze::self_test() {
            Ok(()) => {
                println!("atis-analyze: self-test passed");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("atis-analyze: {msg}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}

struct CheckOpts {
    root: PathBuf,
    json: bool,
    stage: Stage,
}

impl CheckOpts {
    fn parse(args: &[String]) -> Result<CheckOpts, String> {
        let mut opts = CheckOpts {
            root: PathBuf::from("."),
            json: false,
            stage: Stage::All,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .map(String::as_str)
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match flag.as_str() {
                "--root" => opts.root = PathBuf::from(value("--root")?),
                "--format" => {
                    opts.json = match value("--format")? {
                        "json" => true,
                        "text" => false,
                        other => return Err(format!("unknown format `{other}`")),
                    }
                }
                "--stage" => {
                    opts.stage = match value("--stage")? {
                        "all" => Stage::All,
                        "lexical" => Stage::Lexical,
                        "graph" => Stage::Graph,
                        other => return Err(format!("unknown stage `{other}`")),
                    }
                }
                other => return Err(format!("unrecognized argument: {other}")),
            }
        }
        Ok(opts)
    }
}

fn run_check(opts: &CheckOpts) -> ExitCode {
    match atis_analyze::check_workspace_stage(&opts.root, opts.stage) {
        Ok(findings) if findings.is_empty() => {
            if opts.json {
                println!("[]");
            } else {
                println!(
                    "atis-analyze: workspace clean ({} rules)",
                    atis_analyze::RULES.len()
                );
            }
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            if opts.json {
                println!("{}", atis_analyze::findings_to_json(&findings));
            } else {
                for f in &findings {
                    eprintln!("{f}");
                    for hop in &f.witness {
                        eprintln!("    {hop}");
                    }
                }
                eprintln!(
                    "atis-analyze: {} finding(s); see ANALYSIS.md for rules and \
                     `analyze::allow(rule): reason` escape hatches",
                    findings.len()
                );
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("atis-analyze: workspace scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn parse_graph_args(args: &[String]) -> Result<PathBuf, String> {
    let mut root = PathBuf::from(".");
    let mut dot = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--dot" => dot = true,
            "--root" => {
                root = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--root requires a value".to_string())?,
                )
            }
            other => return Err(format!("unrecognized argument: {other}")),
        }
    }
    if !dot {
        return Err("graph requires --dot (the only supported output)".to_string());
    }
    Ok(root)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: atis-analyze <check [--root DIR] [--format text|json] \
         [--stage all|lexical|graph] | graph [--root DIR] --dot | rules | --self-test>"
    );
    ExitCode::from(2)
}
