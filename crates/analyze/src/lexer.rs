//! A minimal Rust tokenizer for the invariant linter.
//!
//! This is the stand-in for `syn` (unavailable offline): it produces a
//! flat token stream with line numbers, correctly skipping the places
//! where forbidden identifiers may legally appear as *text* — line and
//! block comments (nested), string literals (plain, raw, byte), and
//! char literals — so the rules in [`crate::rules`] only ever see real
//! code tokens.
//!
//! While lexing, `analyze::allow(...)` directives embedded in comments
//! are collected into an [`Allows`] table (see `ANALYSIS.md` for the
//! syntax); the rule engine uses it to suppress findings.

use std::cell::Cell;

/// What kind of token this is. Rules mostly match on identifier text,
/// but punctuation kinds matter for context (attribute vs indexing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, ...).
    Ident,
    /// A numeric, string, char, or byte literal (text not preserved for
    /// strings — replaced by a placeholder so rules cannot match inside).
    Literal,
    /// A lifetime such as `'a`.
    Lifetime,
    /// A single punctuation character (`.`, `[`, `::` is two tokens).
    Punct(char),
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Token text (`""` placeholder for string literals).
    pub text: String,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Allow-directive table collected from comments.
///
/// * `analyze::allow(rule)` — suppresses `rule` findings on the
///   directive's own line and the next line (so a trailing comment
///   covers its statement, and a comment line covers the line below).
/// * `analyze::allow-file(rule)` — suppresses `rule` for the whole file.
///
/// Multiple rules may be listed comma-separated. An optional trailing
/// `: reason` is encouraged (and ignored by the machinery).
///
/// Each directive tracks whether it ever suppressed a finding, so the
/// `unused-allow` check (see [`crate::check_files`]) can flag stale
/// directives that no longer mask anything.
#[derive(Debug, Default)]
pub struct Allows {
    entries: Vec<AllowEntry>,
}

/// One parsed `analyze::allow` / `allow-file` directive.
#[derive(Debug)]
struct AllowEntry {
    /// The rule id the directive names.
    rule: String,
    /// Whether this is an `allow-file` (whole-file) directive.
    file_level: bool,
    /// 1-based line the directive appears on.
    line: u32,
    /// Whether any finding was suppressed by this entry.
    used: Cell<bool>,
}

impl Allows {
    /// Whether a finding of `rule` at `line` is suppressed. Every
    /// directive that covers the finding is marked used.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for e in self.entries.iter().filter(|e| e.rule == rule) {
            // A directive on line N covers N and N+1.
            if e.file_level || line == e.line || line == e.line + 1 {
                e.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// Directives that never suppressed anything: `(rule, directive
    /// line)`, in source order.
    pub fn unused(&self) -> Vec<(String, u32)> {
        self.entries
            .iter()
            .filter(|e| !e.used.get())
            .map(|e| (e.rule.clone(), e.line))
            .collect()
    }

    fn record(&mut self, comment: &str, line: u32) {
        // Doc comments describe the directive syntax; only plain
        // comments carry live directives (otherwise every module doc
        // quoting the syntax would register a stale entry and trip
        // `unused-allow` on itself).
        if ["//!", "///", "/*!", "/**"]
            .iter()
            .any(|doc| comment.starts_with(doc))
        {
            return;
        }
        for (marker, file_level) in [("analyze::allow-file(", true), ("analyze::allow(", false)] {
            let Some(start) = comment.find(marker) else {
                continue;
            };
            let rest = &comment[start + marker.len()..];
            let Some(end) = rest.find(')') else { continue };
            for rule in rest[..end].split(',') {
                let rule = rule.trim().to_string();
                if rule.is_empty() {
                    continue;
                }
                self.entries.push(AllowEntry {
                    rule,
                    file_level,
                    line,
                    used: Cell::new(false),
                });
            }
            return; // allow-file( also contains allow( — first match wins
        }
    }
}

/// Lexes `source` into a token stream plus its allow-directive table.
pub fn lex(source: &str) -> (Vec<Token>, Allows) {
    let bytes: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut allows = Allows::default();
    let mut i = 0;
    let mut line: u32 = 1;

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.chars().filter(|&c| c == '\n').count() as u32
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '/' => {
                let start = i;
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                let comment: String = bytes[start..i].iter().collect();
                allows.record(&comment, line);
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == '*' => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == '/' && i + 1 < bytes.len() && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let comment: String = bytes[start..i].iter().collect();
                allows.record(&comment, line);
                bump_lines!(comment);
            }
            '"' => {
                let (consumed, _) = scan_string(&bytes[i..]);
                let text: String = bytes[i..i + consumed].iter().collect();
                bump_lines!(text);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
                i += consumed;
            }
            'r' | 'b' if starts_string(&bytes[i..]) => {
                let mut j = i;
                if bytes[j] == 'b' {
                    j += 1;
                }
                let consumed = if bytes[j] == 'r' {
                    j += 1;
                    let mut hashes = 0;
                    while bytes[j] == '#' {
                        hashes += 1;
                        j += 1;
                    }
                    j += 1; // opening quote
                            // body ends at `"` followed by `hashes` hash marks
                    loop {
                        if j >= bytes.len() {
                            break j - i;
                        }
                        if bytes[j] == '"'
                            && bytes.len() - (j + 1) >= hashes
                            && bytes[j + 1..j + 1 + hashes].iter().all(|&h| h == '#')
                        {
                            break j + 1 + hashes - i;
                        }
                        j += 1;
                    }
                } else {
                    // b"..." — escapes behave like a plain string
                    let (c, _) = scan_string(&bytes[j..]);
                    j - i + c
                };
                let text: String = bytes[i..i + consumed].iter().collect();
                bump_lines!(text);
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: String::new(),
                    line,
                });
                i += consumed;
            }
            '\'' => {
                // Lifetime or char literal. `'ident` not followed by a
                // closing quote is a lifetime.
                let mut j = i + 1;
                let is_lifetime = j < bytes.len()
                    && (bytes[j].is_alphabetic() || bytes[j] == '_')
                    && !(j + 1 < bytes.len() && bytes[j + 1] == '\'');
                if is_lifetime {
                    while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: bytes[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                } else {
                    // Char literal: consume until unescaped closing quote.
                    j = i + 1;
                    while j < bytes.len() {
                        if bytes[j] == '\\' {
                            j += 2;
                        } else if bytes[j] == '\'' {
                            j += 1;
                            break;
                        } else {
                            j += 1;
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::new(),
                        line,
                    });
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_alphanumeric()
                        || bytes[j] == '_'
                        || (bytes[j] == '.'
                            && j + 1 < bytes.len()
                            && bytes[j + 1].is_ascii_digit()
                            && !bytes[i..j].contains(&'.')))
                {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: bytes[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: bytes[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            c => {
                tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    (tokens, allows)
}

/// Whether the stream starting at an `r`/`b` begins a (raw/byte) string
/// literal rather than an identifier.
fn starts_string(s: &[char]) -> bool {
    // r" r#" b" br" rb"? (rb is not legal Rust; br is) — accept r, b, br.
    let mut j = 0;
    if s[j] == 'b' {
        j += 1;
    }
    if j < s.len() && s[j] == 'r' {
        j += 1;
        while j < s.len() && s[j] == '#' {
            j += 1;
        }
    }
    j < s.len() && s[j] == '"' && j > 0
}

/// Consumes a plain string starting at its opening `"`; returns
/// (chars consumed, lines spanned).
fn scan_string(s: &[char]) -> (usize, u32) {
    let mut j = 1;
    while j < s.len() {
        match s[j] {
            '\\' => j += 2,
            '"' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    (j, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // unwrap in a comment
            /* Instant in /* a nested */ block */
            let s = "thread_rng inside a string";
            let r = r#"HashMap "quoted" inside raw"#;
            let c = 'x';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        for hidden in ["unwrap", "Instant", "thread_rng", "HashMap"] {
            assert!(!ids.contains(&hidden.to_string()), "{hidden} leaked");
        }
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (tokens, _) = lex("fn f<'a>(x: &'a str) { let c = 'q'; }");
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        // the 'q' char literal must not produce a stray lifetime
        assert!(!tokens.iter().any(|t| t.text == "'q"));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let (tokens, _) = lex(src);
        let b = tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn allow_directives_cover_their_line_and_the_next() {
        let src = "// analyze::allow(determinism-wall-clock): trace metadata\nlet t = Instant::now();\nlet u = Instant::now();";
        let (_, allows) = lex(src);
        assert!(allows.covers("determinism-wall-clock", 1));
        assert!(allows.covers("determinism-wall-clock", 2));
        assert!(!allows.covers("determinism-wall-clock", 3));
        assert!(!allows.covers("other-rule", 2));
    }

    #[test]
    fn unmatched_directives_are_reported_unused() {
        let src = "// analyze::allow(panic-hygiene): stale\n// analyze::allow(lock-order)\nx;";
        let (_, allows) = lex(src);
        assert!(allows.covers("lock-order", 3));
        assert_eq!(allows.unused(), vec![("panic-hygiene".to_string(), 1)]);
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let src = "//! syntax: analyze::allow(rule): reason\n/// e.g. analyze::allow(lock-order)\n/*! analyze::allow(a) */\nx;";
        let (_, allows) = lex(src);
        assert!(!allows.covers("rule", 1));
        assert!(!allows.covers("lock-order", 2));
        assert!(allows.unused().is_empty());
    }

    #[test]
    fn allow_file_covers_everything_and_lists_split() {
        let src = "// analyze::allow-file(panic-hygiene): fixture\n// analyze::allow(a, b)\nx;";
        let (_, allows) = lex(src);
        assert!(allows.covers("panic-hygiene", 999));
        assert!(allows.covers("a", 2) && allows.covers("b", 3));
    }
}
