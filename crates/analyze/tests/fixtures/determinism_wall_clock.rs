// Fixture: trips `determinism-wall-clock` (checked as if it lived in a
// determinism-scoped crate). Never compiled — parsed by the linter only.
use std::time::Instant;

pub fn timed_run() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}
