// Fixture: trips `lock-order` — acquires the rank-4 answer slot, then
// the rank-1 admission queue while the slot guard is still live, an
// inversion of the declared order. Never compiled.
pub fn inverted(ticket: &TicketInner, shared: &Shared) {
    let slot = ticket.lock_slot();
    let queue = shared.lock_queue();
    drop(queue);
    drop(slot);
}
