// Fixture: trips `non-exhaustive-errors` (public error enum without the
// attribute); the second enum carries it and must NOT be flagged. Never
// compiled.

/// Wire-protocol failure surface.
pub enum ProtocolError {
    Timeout,
    Malformed(String),
}

/// Already future-proofed: no finding.
#[non_exhaustive]
pub enum TransportError {
    Closed,
}
