// analyze::allow-file(determinism-rng)
// Fixture: two determinism-rng violations suppressed by one file-level
// directive — the linter must report nothing. Never compiled.
pub fn jitter() -> f64 {
    rand::thread_rng().gen()
}

pub fn seed() -> u64 {
    let rng = SmallRng::from_entropy();
    rng.next_u64()
}
