//! A stale allow directive: the panic it once masked is gone, so the
//! full-stage run must flag the directive itself.

// analyze::allow(panic-reachability): stale — the unwrap this masked was removed
pub fn tidy() {}
