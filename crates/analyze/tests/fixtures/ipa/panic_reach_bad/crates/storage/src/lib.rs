//! Storage half of the panic-reachability fixture: the `expect` is the
//! reachable panic site.

pub fn fetch() -> u32 {
    lookup().expect("key present")
}

fn lookup() -> Option<u32> {
    None
}
