//! A panic site reachable from the serving path: `execute` calls into
//! `atis_storage::fetch`, which `expect`s outside the serve scope.

fn execute() {
    atis_storage::fetch();
}
