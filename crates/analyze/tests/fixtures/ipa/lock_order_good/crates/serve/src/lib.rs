//! The fixed shape of `lock_order_bad`: the outer function holds the
//! lower-ranked `lock_queue` (rank 1) and the callee chain acquires the
//! higher-ranked `lock_entries` (rank 3) — the declared order.

pub struct Svc {
    state: State,
}

impl Svc {
    fn load(&self) {
        let entries = self.state.lock_entries();
        drop(entries);
    }

    fn touch(&self) {
        self.load();
    }

    fn drain(&self) {
        let q = self.state.lock_queue();
        self.touch();
        drop(q);
    }
}
