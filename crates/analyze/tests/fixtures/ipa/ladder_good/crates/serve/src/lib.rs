//! The fixed shape of `ladder_bad`: every constructed variant is named
//! in a pattern on the serving path, so nothing falls through the `_`
//! arm unclassified.

/// Serving failures for the fixture ladder.
pub enum ServeError {
    /// The request outlived its deadline.
    Timeout,
    /// The queue is full.
    Overload,
}

pub fn admit(full: bool) -> Result<(), ServeError> {
    if full {
        return Err(ServeError::Overload);
    }
    Err(ServeError::Timeout)
}

pub fn label(e: &ServeError) -> &'static str {
    match e {
        ServeError::Timeout => "timeout",
        ServeError::Overload => "overload",
        _ => "other",
    }
}
