//! Storage half of the fixed metered-io fixture: `spill_charged`
//! records the block read before touching the filesystem, so the raw
//! read below it is inside the cost model.

pub fn spill_charged(io: &IoStats) {
    io.read_blocks(1);
    raw();
}

fn raw() {
    let _ = std::fs::read("spill.dat");
}
