//! The fixed shape of `metered_io_bad`: the cross-crate call goes
//! through a charging wrapper, so the raw read sits behind an
//! `IoStats` barrier.

fn worker_loop(io: &IoStats) {
    atis_storage::spill_charged(io);
}
