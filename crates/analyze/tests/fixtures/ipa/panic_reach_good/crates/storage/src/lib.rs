//! Storage half of the fixed panic-reachability fixture: the miss is
//! propagated, not unwrapped.

pub fn fetch() -> Option<u32> {
    lookup()
}

fn lookup() -> Option<u32> {
    None
}
