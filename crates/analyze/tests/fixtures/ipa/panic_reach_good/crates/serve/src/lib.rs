//! The fixed shape of `panic_reach_bad`: the storage lookup returns an
//! `Option` instead of panicking, so nothing reachable from `execute`
//! can abort.

fn execute() {
    atis_storage::fetch();
}
