//! Lock-order inversion across a two-hop call chain: `drain` holds
//! `lock_entries` (rank 3) while `touch` → `requeue` acquires
//! `lock_queue` (rank 1) underneath it.

pub struct Svc {
    state: State,
}

impl Svc {
    fn requeue(&self) {
        let q = self.state.lock_queue();
        drop(q);
    }

    fn touch(&self) {
        self.requeue();
    }

    fn drain(&self) {
        let entries = self.state.lock_entries();
        self.touch();
        drop(entries);
    }
}
