//! Storage half of the metered-io escape: a raw read with no charge.

pub fn spill() {
    let _ = std::fs::read("spill.dat");
}
