//! Raw filesystem I/O escaping the cost model: the serving root calls
//! across the crate boundary into `atis_storage::spill`, which reads a
//! file without an `IoStats` charge anywhere on the chain.

fn worker_loop() {
    atis_storage::spill();
}
