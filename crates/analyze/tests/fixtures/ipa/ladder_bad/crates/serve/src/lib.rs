//! A degrade-ladder gap: `ServeError::Overload` is constructed by
//! `admit` but never named in a pattern on the serving path — `label`'s
//! `_` arm swallows it.

/// Serving failures for the fixture ladder.
pub enum ServeError {
    /// The request outlived its deadline.
    Timeout,
    /// The queue is full.
    Overload,
}

pub fn admit(full: bool) -> Result<(), ServeError> {
    if full {
        return Err(ServeError::Overload);
    }
    Err(ServeError::Timeout)
}

pub fn label(e: &ServeError) -> &'static str {
    match e {
        ServeError::Timeout => "timeout",
        _ => "other",
    }
}
