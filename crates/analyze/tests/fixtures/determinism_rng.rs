// Fixture: trips `determinism-rng`. Never compiled.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
