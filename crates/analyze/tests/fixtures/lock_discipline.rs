// Fixture: trips `lock-discipline` (raw Mutex::lock and an
// argument-taking Condvar::wait outside sync.rs) when checked under a
// crates/serve/src/ file name. Never compiled.
use std::sync::{Condvar, Mutex};

pub fn peek(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|p| p.into_inner())
}

pub fn block(m: &Mutex<u32>, cv: &Condvar) {
    let guard = m.lock().unwrap_or_else(|p| p.into_inner());
    let _guard = cv.wait(guard);
}
