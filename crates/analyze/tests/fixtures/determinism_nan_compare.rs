// Fixture: trips `determinism-nan-compare` (partial_cmp + unwrap and
// partial_cmp + expect). Never compiled.
pub fn sorted(xs: &[f64]) -> Vec<f64> {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}

pub fn best(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .min_by(|a, b| a.partial_cmp(b).expect("comparable"))
}
