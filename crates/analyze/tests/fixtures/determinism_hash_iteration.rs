// Fixture: trips `determinism-hash-iteration` twice (`.iter()` call and
// a `for … in` loop over a HashMap-typed binding). Never compiled.
use std::collections::HashMap;

pub fn total_cost(costs: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for v in costs.values() {
        total += v;
    }
    total
}

pub fn first_key(costs: &HashMap<u32, f64>) -> Option<u32> {
    costs.iter().next().map(|(k, _)| *k)
}
