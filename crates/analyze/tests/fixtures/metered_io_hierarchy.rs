// Fixture: trips `metered-io` inside the `atis-hierarchy` scope — a
// contraction pass persisting its overlay through raw `std::fs` instead
// of charging `IoStats` block writes. Never compiled.
pub fn persist_overlay(path: &str, arcs: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, arcs)
}
