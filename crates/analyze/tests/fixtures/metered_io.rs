// Fixture: trips `metered-io` (std::fs and OpenOptions bypassing the
// IoStats choke point). Never compiled.
pub fn load(path: &str) -> std::io::Result<String> {
    std::fs::read_to_string(path)
}

pub fn append(path: &str) -> std::io::Result<std::fs::File> {
    std::fs::OpenOptions::new().append(true).open(path)
}
