// Fixture: trips `serve-outcome` — the first literal builds a
// RouteAnswer without its `outcome`/`deadline` classification. The
// second names both and must pass; the destructuring pattern forwards
// with `..` and must also pass. Never compiled.
pub fn bare_answer(exec: Exec) -> RouteAnswer {
    RouteAnswer {
        path: exec.path,
        epoch: exec.epoch,
        cached: false,
    }
}

pub fn classified_answer(exec: Exec, job: Job) -> RouteAnswer {
    RouteAnswer {
        path: exec.path,
        epoch: exec.epoch,
        outcome: exec.outcome,
        deadline: job.deadline,
    }
}

pub fn destructure(answer: RouteAnswer) -> u64 {
    let RouteAnswer { epoch, .. } = answer;
    epoch
}
