// Fixture: trips `panic-hygiene` four ways (unwrap, expect, panic!,
// slice indexing) when checked under a serving-path file name. Never
// compiled.
pub fn parse_node(arg: Option<&str>) -> u32 {
    arg.unwrap().parse().expect("numeric node id")
}

pub fn first_hop(nodes: &[u32]) -> (u32, u32) {
    if nodes.len() < 2 {
        panic!("route too short");
    }
    (nodes[0], nodes[1])
}
