// Fixture: a determinism-wall-clock violation suppressed by a line
// directive — the linter must report nothing. Never compiled.
pub fn stamp() -> std::time::Duration {
    // analyze::allow(determinism-wall-clock): fixture exercising the line-level escape hatch
    let t0 = std::time::Instant::now();
    t0.elapsed()
}
