//! Integration tests for `atis-analyze`: each fixture under
//! `tests/fixtures/` trips exactly the rule it is named after (checked
//! under a scope-appropriate fake path, since rules dispatch on the file
//! path), the allow-directive fixtures come back clean, the binary's
//! exit codes match the contract, and the workspace at HEAD is clean.

use atis_analyze::check_source;
use std::process::Command;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}.rs", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Checks `fixture` as if it lived at `as_path`; returns the rule ids.
fn rules_hit(name: &str, as_path: &str) -> Vec<String> {
    let mut rules: Vec<String> = check_source(as_path, &fixture(name))
        .into_iter()
        .map(|f| f.rule.to_string())
        .collect();
    rules.sort();
    rules.dedup();
    rules
}

const ALGO_PATH: &str = "crates/algorithms/src/fixture.rs";
const SERVE_PATH: &str = "crates/serve/src/fixture.rs";

#[test]
fn fixture_trips_determinism_wall_clock() {
    assert_eq!(
        rules_hit("determinism_wall_clock", ALGO_PATH),
        ["determinism-wall-clock"]
    );
}

#[test]
fn fixture_trips_determinism_rng() {
    assert_eq!(rules_hit("determinism_rng", ALGO_PATH), ["determinism-rng"]);
}

#[test]
fn fixture_trips_determinism_hash_iteration() {
    assert_eq!(
        rules_hit("determinism_hash_iteration", ALGO_PATH),
        ["determinism-hash-iteration"]
    );
    // Both the `.iter()`/`.values()` calls and the `for … in` loop count.
    let findings = check_source(ALGO_PATH, &fixture("determinism_hash_iteration"));
    assert!(findings.len() >= 2, "expected both sites: {findings:?}");
}

#[test]
fn fixture_trips_determinism_nan_compare() {
    assert_eq!(
        rules_hit("determinism_nan_compare", ALGO_PATH),
        ["determinism-nan-compare"]
    );
}

#[test]
fn fixture_trips_metered_io() {
    assert_eq!(rules_hit("metered_io", ALGO_PATH), ["metered-io"]);
}

#[test]
fn fixture_trips_metered_io_in_the_hierarchy_crate() {
    // The new crate is opted into the determinism/metered-io scope: a
    // raw std::fs call in `crates/hierarchy/src/` must fire the rule.
    assert_eq!(
        rules_hit("metered_io_hierarchy", "crates/hierarchy/src/fixture.rs"),
        ["metered-io"]
    );
}

#[test]
fn fixture_trips_panic_hygiene() {
    assert_eq!(rules_hit("panic_hygiene", SERVE_PATH), ["panic-hygiene"]);
    let findings = check_source(SERVE_PATH, &fixture("panic_hygiene"));
    // unwrap, expect, panic!, and two index expressions.
    assert!(findings.len() >= 4, "expected all sites: {findings:?}");
}

#[test]
fn fixture_trips_serve_outcome() {
    assert_eq!(rules_hit("serve_outcome", SERVE_PATH), ["serve-outcome"]);
    // Exactly one finding: the classified literal and the `..`
    // destructuring pattern must both pass.
    let findings = check_source(SERVE_PATH, &fixture("serve_outcome"));
    assert_eq!(findings.len(), 1, "{findings:?}");
}

#[test]
fn fixture_trips_non_exhaustive_errors() {
    let findings = check_source(ALGO_PATH, &fixture("non_exhaustive_errors"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "non-exhaustive-errors");
    assert!(
        findings[0].message.contains("ProtocolError"),
        "the attributed enum must not be flagged: {findings:?}"
    );
}

#[test]
fn fixture_trips_lock_discipline() {
    // The unwrap_or_else recovery is fine; the raw lock()/wait() is not.
    assert!(rules_hit("lock_discipline", SERVE_PATH).contains(&"lock-discipline".to_string()));
}

#[test]
fn fixture_trips_lock_order() {
    assert_eq!(rules_hit("lock_order", SERVE_PATH), ["lock-order"]);
}

#[test]
fn scope_gates_the_rules() {
    // The same violating source outside its rule's scope: no findings.
    let outside = "crates/obs/src/fixture.rs";
    assert!(check_source(outside, &fixture("determinism_wall_clock")).is_empty());
    assert!(check_source(outside, &fixture("panic_hygiene")).is_empty());
    assert!(check_source(outside, &fixture("lock_discipline")).is_empty());
    assert!(check_source(outside, &fixture("serve_outcome")).is_empty());
}

#[test]
fn allow_directives_suppress_findings() {
    assert!(check_source(ALGO_PATH, &fixture("allowed_line")).is_empty());
    assert!(check_source(ALGO_PATH, &fixture("allowed_file")).is_empty());
}

#[test]
fn test_code_is_exempt() {
    let src = r#"
        #[cfg(test)]
        mod tests {
            use std::time::Instant;
            #[test]
            fn timing() { let _ = Instant::now(); }
        }
    "#;
    assert!(check_source(ALGO_PATH, src).is_empty());
}

// --- the binary's exit-code contract ---------------------------------------

fn run_binary(root: &std::path::Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_atis-analyze"))
        .args(["check", "--root"])
        .arg(root)
        .output()
        .expect("run atis-analyze")
}

struct TempRoot(std::path::PathBuf);

impl TempRoot {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("atis-analyze-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/algorithms/src")).expect("mkdir");
        TempRoot(dir)
    }

    fn write(&self, rel: &str, content: &str) {
        std::fs::write(self.0.join(rel), content).expect("write fixture workspace");
    }
}

impl Drop for TempRoot {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn binary_exits_nonzero_on_violation_and_zero_when_clean() {
    let root = TempRoot::new("dirty");
    root.write(
        "crates/algorithms/src/lib.rs",
        &fixture("determinism_wall_clock"),
    );
    let out = run_binary(&root.0);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("determinism-wall-clock"), "{stderr}");

    let root = TempRoot::new("clean");
    root.write("crates/algorithms/src/lib.rs", "pub fn ok() {}\n");
    let out = run_binary(&root.0);
    assert_eq!(out.status.code(), Some(0), "clean tree must exit 0");
}

#[test]
fn workspace_at_head_is_clean() {
    // The crate lives at <repo>/crates/analyze.
    let repo = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root");
    let findings = atis_analyze::check_workspace(repo).expect("scan workspace");
    assert!(
        findings.is_empty(),
        "the workspace must stay lint-clean:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
