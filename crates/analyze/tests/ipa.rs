//! Integration tests for the interprocedural (graph) stage: each
//! fixture tree under `tests/fixtures/ipa/` is a miniature workspace —
//! every `*_bad` tree trips exactly the pass it is named after, and the
//! matching `*_good` tree (the same code with the fix applied) comes
//! back clean, pinning both directions of every pass. The stale-allow
//! tree pins the stage gating of `unused-allow`.

use atis_analyze::{check_workspace_stage, Stage};
use std::path::PathBuf;

fn tree(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/ipa")
        .join(name)
}

/// Rule ids hit by the graph stage over the named fixture tree.
fn graph_rules(name: &str) -> Vec<String> {
    let mut rules: Vec<String> = check_workspace_stage(&tree(name), Stage::Graph)
        .unwrap_or_else(|e| panic!("scan {name}: {e}"))
        .into_iter()
        .map(|f| f.rule.to_string())
        .collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn lock_order_fixture_trips_and_its_fix_is_clean() {
    assert_eq!(
        graph_rules("lock_order_bad"),
        ["lock-order-interprocedural"]
    );
    assert_eq!(graph_rules("lock_order_good"), [] as [&str; 0]);
}

#[test]
fn metered_io_fixture_trips_and_its_fix_is_clean() {
    assert_eq!(graph_rules("metered_io_bad"), ["metered-io-escape"]);
    assert_eq!(graph_rules("metered_io_good"), [] as [&str; 0]);
}

#[test]
fn panic_reach_fixture_trips_and_its_fix_is_clean() {
    assert_eq!(graph_rules("panic_reach_bad"), ["panic-reachability"]);
    assert_eq!(graph_rules("panic_reach_good"), [] as [&str; 0]);
}

#[test]
fn ladder_fixture_trips_and_its_fix_is_clean() {
    assert_eq!(graph_rules("ladder_bad"), ["degrade-ladder-exhaustiveness"]);
    assert_eq!(graph_rules("ladder_good"), [] as [&str; 0]);
}

#[test]
fn findings_carry_call_chain_witnesses() {
    let findings = check_workspace_stage(&tree("panic_reach_bad"), Stage::Graph).unwrap();
    let f = findings
        .iter()
        .find(|f| f.rule == "panic-reachability")
        .expect("panic finding");
    // The witness walks the chain from the panic site back to the
    // serving root, naming the cross-crate hop.
    let chain = f.witness.join("\n");
    assert!(chain.contains("fetch"), "missing callee hop: {chain}");
    assert!(
        chain.contains("crates/serve/src/lib.rs"),
        "missing root hop: {chain}"
    );
}

#[test]
fn ladder_finding_names_the_unmatched_variant() {
    let findings = check_workspace_stage(&tree("ladder_bad"), Stage::Graph).unwrap();
    let f = findings
        .iter()
        .find(|f| f.rule == "degrade-ladder-exhaustiveness")
        .expect("ladder finding");
    assert!(
        f.message.contains("ServeError::Overload"),
        "wrong variant: {}",
        f.message
    );
    assert!(
        f.witness.iter().any(|w| w.contains("constructed at")),
        "missing construction site: {:?}",
        f.witness
    );
}

#[test]
fn stale_allows_are_findings_at_the_full_stage_only() {
    let all: Vec<String> = check_workspace_stage(&tree("unused_allow"), Stage::All)
        .unwrap()
        .into_iter()
        .map(|f| f.rule.to_string())
        .collect();
    assert_eq!(all, ["unused-allow"]);
    // The graph stage alone cannot judge staleness (a directive may
    // cover a lexical finding), so it stays silent.
    assert_eq!(graph_rules("unused_allow"), [] as [&str; 0]);
}
