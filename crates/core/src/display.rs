//! Route display (Section 1.1): "the goal of route display is to
//! effectively communicate the optimal route to the traveller for
//! navigation."
//!
//! Two renderers:
//!
//! * [`turn_instructions`] — a turn-by-turn list derived from segment
//!   headings;
//! * [`MapCanvas`] / [`render_map`] — an ASCII map of the network with the
//!   route and labelled landmarks, used to regenerate Figure 8.

use atis_graph::{Graph, NodeId, Path, Point};

/// Compass heading of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Heading {
    North,
    NorthEast,
    East,
    SouthEast,
    South,
    SouthWest,
    West,
    NorthWest,
}

impl Heading {
    fn of(from: Point, to: Point) -> Heading {
        let dx = to.x - from.x;
        let dy = to.y - from.y;
        let angle = dy.atan2(dx); // radians, east = 0, north = pi/2
        let octant = ((angle / std::f64::consts::FRAC_PI_4).round() as i32).rem_euclid(8);
        match octant {
            0 => Heading::East,
            1 => Heading::NorthEast,
            2 => Heading::North,
            3 => Heading::NorthWest,
            4 => Heading::West,
            5 => Heading::SouthWest,
            6 => Heading::South,
            _ => Heading::SouthEast,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Heading::North => "north",
            Heading::NorthEast => "northeast",
            Heading::East => "east",
            Heading::SouthEast => "southeast",
            Heading::South => "south",
            Heading::SouthWest => "southwest",
            Heading::West => "west",
            Heading::NorthWest => "northwest",
        }
    }

    fn index(self) -> i32 {
        match self {
            Heading::East => 0,
            Heading::NorthEast => 1,
            Heading::North => 2,
            Heading::NorthWest => 3,
            Heading::West => 4,
            Heading::SouthWest => 5,
            Heading::South => 6,
            Heading::SouthEast => 7,
        }
    }
}

/// Builds a turn-by-turn instruction list for a route. Consecutive
/// same-heading segments are merged into one "continue" leg.
pub fn turn_instructions(graph: &Graph, path: &Path) -> Vec<String> {
    if path.is_empty() {
        return vec!["You are already at your destination.".to_string()];
    }
    let mut legs: Vec<(Heading, f64)> = Vec::new();
    for (u, v) in path.hops() {
        let h = Heading::of(graph.point(u), graph.point(v));
        let cost = graph.edge_cost(u, v).unwrap_or(0.0);
        match legs.last_mut() {
            Some((lh, lc)) if *lh == h => *lc += cost,
            _ => legs.push((h, cost)),
        }
    }
    let mut out = Vec::with_capacity(legs.len() + 1);
    let mut prev: Option<Heading> = None;
    for (h, dist) in legs {
        let verb = match prev {
            None => format!("Head {}", h.name()),
            Some(p) => {
                // Positive differences (mod 8) in 1..=3 are left turns in
                // this east-counterclockwise convention.
                let diff = (h.index() - p.index()).rem_euclid(8);
                match diff {
                    0 => format!("Continue {}", h.name()),
                    1..=3 => format!("Turn left, heading {}", h.name()),
                    4 => format!("Make a U-turn, heading {}", h.name()),
                    _ => format!("Turn right, heading {}", h.name()),
                }
            }
        };
        out.push(format!("{verb} for {dist:.1} units"));
        prev = Some(h);
    }
    out.push("You have arrived at your destination.".to_string());
    out
}

/// A character-grid map renderer.
#[derive(Debug)]
pub struct MapCanvas {
    width: usize,
    height: usize,
    cells: Vec<char>,
    min: Point,
    max: Point,
}

impl MapCanvas {
    /// Creates a canvas sized `width × height` characters covering the
    /// graph's bounding box.
    pub fn new(graph: &Graph, width: usize, height: usize) -> MapCanvas {
        let (mut min, mut max) = (
            Point::new(f64::MAX, f64::MAX),
            Point::new(f64::MIN, f64::MIN),
        );
        for u in graph.node_ids() {
            let p = graph.point(u);
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        if graph.node_count() == 0 {
            min = Point::new(0.0, 0.0);
            max = Point::new(1.0, 1.0);
        }
        MapCanvas {
            width,
            height,
            cells: vec![' '; width * height],
            min,
            max,
        }
    }

    fn locate(&self, p: Point) -> (usize, usize) {
        let fx = if self.max.x > self.min.x {
            (p.x - self.min.x) / (self.max.x - self.min.x)
        } else {
            0.5
        };
        let fy = if self.max.y > self.min.y {
            (p.y - self.min.y) / (self.max.y - self.min.y)
        } else {
            0.5
        };
        let col = (fx * (self.width - 1) as f64).round() as usize;
        // y grows upward; rows grow downward.
        let row = ((1.0 - fy) * (self.height - 1) as f64).round() as usize;
        (row.min(self.height - 1), col.min(self.width - 1))
    }

    /// Plots a character at a map position (later plots win).
    pub fn plot(&mut self, p: Point, c: char) {
        let (row, col) = self.locate(p);
        self.cells[row * self.width + col] = c;
    }

    /// Renders the canvas with a border.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.width + 3) * (self.height + 2));
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.width));
        out.push_str("+\n");
        for row in 0..self.height {
            out.push('|');
            out.extend(self.cells[row * self.width..(row + 1) * self.width].iter());
            out.push_str("|\n");
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.width));
        out.push_str("+\n");
        out
    }
}

/// Renders a network map with optional route and landmarks:
/// `.` network nodes, `*` the route, letters the landmarks (uppercase
/// plots win over the route, which wins over plain nodes).
pub fn render_map(
    graph: &Graph,
    route: Option<&Path>,
    landmarks: &[(char, NodeId)],
    width: usize,
    height: usize,
) -> String {
    let mut canvas = MapCanvas::new(graph, width, height);
    for u in graph.node_ids() {
        if graph.degree(u) > 0 {
            canvas.plot(graph.point(u), '.');
        }
    }
    if let Some(path) = route {
        for &n in &path.nodes {
            canvas.plot(graph.point(n), '*');
        }
    }
    for &(c, n) in landmarks {
        canvas.plot(graph.point(n), c);
    }
    canvas.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_graph::graph::graph_from_arcs;
    use atis_graph::{CostModel, Grid, QueryKind};

    #[test]
    fn trivial_route_has_arrival_message() {
        let g = graph_from_arcs(2, &[(0, 1, 1.0)]).unwrap();
        let msgs = turn_instructions(&g, &Path::trivial(NodeId(0)));
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("already"));
    }

    #[test]
    fn straight_route_merges_into_one_leg() {
        let g = graph_from_arcs(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let p = Path {
            nodes: (0..4).map(NodeId).collect(),
            cost: 3.0,
        };
        let msgs = turn_instructions(&g, &p);
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        assert!(msgs[0].starts_with("Head east for 3.0"));
        assert!(msgs[1].contains("arrived"));
    }

    #[test]
    fn l_shaped_route_turns_once() {
        let grid = Grid::new(4, CostModel::Uniform, 0).unwrap();
        // (0,0) -> (0,1) -> (1,1): east then north = left turn.
        let p = Path {
            nodes: vec![grid.node_at(0, 0), grid.node_at(0, 1), grid.node_at(1, 1)],
            cost: 2.0,
        };
        let msgs = turn_instructions(grid.graph(), &p);
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs[0].contains("east"));
        assert!(msgs[1].contains("Turn left"), "{}", msgs[1]);
        assert!(msgs[1].contains("north"));
    }

    #[test]
    fn right_turn_is_detected() {
        let grid = Grid::new(4, CostModel::Uniform, 0).unwrap();
        // north then east = right turn.
        let p = Path {
            nodes: vec![grid.node_at(0, 0), grid.node_at(1, 0), grid.node_at(1, 1)],
            cost: 2.0,
        };
        let msgs = turn_instructions(grid.graph(), &p);
        assert!(msgs[1].contains("Turn right"), "{}", msgs[1]);
    }

    #[test]
    fn all_eight_headings_are_named() {
        use atis_graph::{Edge, GraphBuilder, NodeId};
        // A star of 8 spokes from the origin.
        let mut b = GraphBuilder::new();
        let centre = b.add_node(Point::new(0.0, 0.0));
        let dirs: [(f64, f64, &str); 8] = [
            (1.0, 0.0, "east"),
            (1.0, 1.0, "northeast"),
            (0.0, 1.0, "north"),
            (-1.0, 1.0, "northwest"),
            (-1.0, 0.0, "west"),
            (-1.0, -1.0, "southwest"),
            (0.0, -1.0, "south"),
            (1.0, -1.0, "southeast"),
        ];
        let mut spokes = Vec::new();
        for &(x, y, _) in &dirs {
            let n = b.add_node(Point::new(x, y));
            b.add_edge(Edge::new(centre, n, 1.0));
            spokes.push(n);
        }
        let g = b.build().unwrap();
        for (i, &(_, _, name)) in dirs.iter().enumerate() {
            let p = Path {
                nodes: vec![NodeId(0), spokes[i]],
                cost: 1.0,
            };
            let first = &turn_instructions(&g, &p)[0];
            assert!(
                first.contains(name),
                "direction {i}: expected {name} in {first:?}"
            );
        }
    }

    #[test]
    fn u_turn_is_detected() {
        use atis_graph::{GraphBuilder, NodeId};
        let mut b = GraphBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        b.add_undirected(a, c, 1.0);
        let g = b.build().unwrap();
        let p = Path {
            nodes: vec![NodeId(0), NodeId(1), NodeId(0)],
            cost: 2.0,
        };
        let msgs = turn_instructions(&g, &p);
        assert!(msgs.iter().any(|m| m.contains("U-turn")), "{msgs:?}");
    }

    #[test]
    fn map_renders_route_and_landmarks() {
        let grid = Grid::new(6, CostModel::Uniform, 0).unwrap();
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let route = Path {
            nodes: vec![s, grid.node_at(0, 1), grid.node_at(1, 1)],
            cost: 2.0,
        };
        let map = render_map(grid.graph(), Some(&route), &[('S', s), ('D', d)], 24, 12);
        assert!(map.contains('S'));
        assert!(map.contains('D'));
        assert!(map.contains('*'));
        assert!(map.contains('.'));
        // Border intact.
        assert!(map.starts_with('+'));
        assert!(map.trim_end().ends_with('+'));
    }

    #[test]
    fn map_dimensions_are_respected() {
        let grid = Grid::new(5, CostModel::Uniform, 0).unwrap();
        let map = render_map(grid.graph(), None, &[], 30, 10);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 12); // 10 rows + 2 borders
        assert!(lines.iter().all(|l| l.chars().count() == 32)); // 30 + 2 borders
    }

    #[test]
    fn landmark_positions_are_geographic() {
        // South-west landmark must land in the lower-left of the canvas.
        let grid = Grid::new(10, CostModel::Uniform, 0).unwrap();
        let sw = grid.node_at(0, 0);
        let map = render_map(grid.graph(), None, &[('X', sw)], 20, 10);
        let lines: Vec<&str> = map.lines().collect();
        // Row 10 (last content row) should contain X near the left edge.
        let row = lines[10];
        let xpos = row.find('X').expect("X plotted");
        assert!(xpos <= 3, "X at column {xpos} of {row:?}");
    }
}
