//! SVG map rendering — a publication-quality counterpart to the ASCII
//! renderer, used to regenerate Figure 8 as a vector image.

use atis_graph::{Graph, NodeId, Path, RoadClass};
use std::fmt::Write as _;

/// Rendering options for [`render_svg`].
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
    /// Margin around the map, in pixels.
    pub margin: f64,
    /// Whether to draw network edges (off for very dense maps).
    pub draw_edges: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 800,
            height: 800,
            margin: 24.0,
            draw_edges: true,
        }
    }
}

fn class_style(class: RoadClass) -> (&'static str, f64) {
    match class {
        RoadClass::Street => ("#9aa0a6", 0.8),
        RoadClass::Highway => ("#5f6368", 1.2),
        RoadClass::Freeway => ("#1a73e8", 1.8),
    }
}

/// Renders a road network (with optional route and landmarks) as an SVG
/// document string.
pub fn render_svg(
    graph: &Graph,
    route: Option<&Path>,
    landmarks: &[(char, NodeId)],
    options: &SvgOptions,
) -> String {
    let (mut min_x, mut min_y, mut max_x, mut max_y) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
    for u in graph.node_ids() {
        let p = graph.point(u);
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    if graph.node_count() == 0 {
        (min_x, min_y, max_x, max_y) = (0.0, 0.0, 1.0, 1.0);
    }
    let span_x = (max_x - min_x).max(1e-9);
    let span_y = (max_y - min_y).max(1e-9);
    let w = options.width as f64 - 2.0 * options.margin;
    let h = options.height as f64 - 2.0 * options.margin;
    let place = |n: NodeId| {
        let p = graph.point(n);
        let x = options.margin + (p.x - min_x) / span_x * w;
        // SVG y grows downward; map y grows upward.
        let y = options.margin + (1.0 - (p.y - min_y) / span_y) * h;
        (x, y)
    };

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        options.width, options.height, options.width, options.height
    );
    let _ = writeln!(svg, r#"<rect width="100%" height="100%" fill="white"/>"#);

    if options.draw_edges {
        // One direction per undirected pair is enough visually.
        for e in graph.edges() {
            if e.from.0 > e.to.0 && graph.edge_cost(e.to, e.from).is_some() {
                continue;
            }
            let (x1, y1) = place(e.from);
            let (x2, y2) = place(e.to);
            let (color, width) = class_style(e.class);
            let _ = writeln!(
                svg,
                r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{color}" stroke-width="{width}"/>"#
            );
        }
    } else {
        for u in graph.node_ids() {
            if graph.degree(u) > 0 {
                let (x, y) = place(u);
                let _ = writeln!(
                    svg,
                    r##"<circle cx="{x:.1}" cy="{y:.1}" r="1.2" fill="#9aa0a6"/>"##
                );
            }
        }
    }

    if let Some(path) = route {
        let points: Vec<String> = path
            .nodes
            .iter()
            .map(|&n| {
                let (x, y) = place(n);
                format!("{x:.1},{y:.1}")
            })
            .collect();
        let _ = writeln!(
            svg,
            r##"<polyline points="{}" fill="none" stroke="#d93025" stroke-width="3" stroke-linejoin="round"/>"##,
            points.join(" ")
        );
    }

    for &(label, n) in landmarks {
        let (x, y) = place(n);
        let _ = writeln!(
            svg,
            r##"<circle cx="{x:.1}" cy="{y:.1}" r="6" fill="#188038"/>"##
        );
        let _ = writeln!(
            svg,
            r##"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="14" font-weight="bold" fill="#188038">{label}</text>"##,
            x + 8.0,
            y - 6.0
        );
    }

    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_graph::{CostModel, Grid, Minneapolis, QueryKind};

    #[test]
    fn renders_well_formed_svg() {
        let grid = Grid::new(6, CostModel::Uniform, 0).unwrap();
        let svg = render_svg(grid.graph(), None, &[], &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<line"));
        // Balanced: one line per undirected segment = 2*6*5 / 2... each
        // undirected pair renders once.
        assert_eq!(svg.matches("<line").count(), 2 * 6 * 5);
    }

    #[test]
    fn route_renders_as_polyline() {
        let grid = Grid::new(5, CostModel::Uniform, 0).unwrap();
        let (s, d) = grid.query_pair(QueryKind::Horizontal);
        let path = Path {
            nodes: (0..5).map(|c| grid.node_at(0, c)).collect(),
            cost: 4.0,
        };
        let svg = render_svg(
            grid.graph(),
            Some(&path),
            &[('S', s), ('D', d)],
            &SvgOptions::default(),
        );
        assert!(svg.contains("<polyline"));
        assert_eq!(svg.matches("<text").count(), 2);
        assert!(svg.contains(">S</text>"));
    }

    #[test]
    fn minneapolis_renders_with_freeway_styling() {
        let m = Minneapolis::paper();
        let svg = render_svg(m.graph(), None, m.landmarks(), &SvgOptions::default());
        // Freeway color appears (one-way corridors).
        assert!(svg.contains("#1a73e8"));
        // All seven landmarks labelled.
        assert_eq!(svg.matches("<text").count(), 7);
    }

    #[test]
    fn empty_graph_renders_cleanly() {
        let g = atis_graph::GraphBuilder::new().build().unwrap();
        let svg = render_svg(&g, None, &[], &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn nodes_mode_draws_circles() {
        let grid = Grid::new(4, CostModel::Uniform, 0).unwrap();
        let opts = SvgOptions {
            draw_edges: false,
            ..SvgOptions::default()
        };
        let svg = render_svg(grid.graph(), None, &[], &opts);
        assert!(!svg.contains("<line"));
        assert_eq!(svg.matches("<circle").count(), 16);
    }
}
