//! The ATIS route-planning service (Section 1.1 of the paper).
//!
//! "Route planning services need to provide three facilities: route
//! computation, route evaluation and route display."
//!
//! * [`planner`] — **route computation**: [`RoutePlanner`] wraps the
//!   database-resident algorithms of `atis-algorithms` behind a
//!   destination-oriented API and picks A\* (version 3) by default — the
//!   paper's recommendation for the short-trip queries an ATIS serves.
//! * [`evaluation`] — **route evaluation**: "to find the attributes of a
//!   given route between two points ... travel time and traffic congestion
//!   information".
//! * [`display`] — **route display**: turn-by-turn instructions and an
//!   ASCII map renderer (used to regenerate Figure 8's Minneapolis map).
//!
//! Beyond the paper's three facilities, the planner carries the service
//! concerns of a deployed ATIS: [`RoutePlanner::plan_resilient`] rides out
//! injected storage faults via bounded retries and a degradation ladder
//! (`DESIGN.md` §5a), and `with_trace_sink` / `with_metrics` attach the
//! `atis-obs` observability layer so every attempt, retry, degradation
//! rung and per-iteration I/O delta is emitted as a structured event
//! (`OBSERVABILITY.md`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod display;
pub mod evaluation;
pub mod matching;
pub mod planner;
pub mod svg;
pub mod trip;

pub use display::{render_map, turn_instructions, MapCanvas};
pub use evaluation::{evaluate_route, RouteAttributes};
pub use matching::{match_trace, MatchedTrace};
pub use planner::{AttemptRecord, PlanReport, ResiliencePolicy, RoutePlanner};
pub use svg::{render_svg, SvgOptions};
pub use trip::{itinerary, plan_alternatives, plan_trip, TripPlan};
