//! Trip planning on top of single-pair route computation: multi-leg
//! journeys through waypoints, and alternative-route generation — the
//! service-level features an ATIS terminal offers over the paper's
//! single-pair primitive.

use crate::planner::{PlanReport, RoutePlanner};
use atis_algorithms::{Algorithm, AlgorithmError};
use atis_graph::{Graph, NodeId, Path};

/// A multi-leg journey: one [`PlanReport`] per leg plus the concatenated
/// route.
#[derive(Debug, Clone)]
pub struct TripPlan {
    /// Per-leg reports, in travel order.
    pub legs: Vec<PlanReport>,
    /// The stitched end-to-end route.
    pub route: Path,
}

impl TripPlan {
    /// Total simulated I/O cost across all legs.
    pub fn total_cost_units(&self) -> f64 {
        self.legs.iter().map(|l| l.cost_units).sum()
    }

    /// Total iterations across all legs.
    pub fn total_iterations(&self) -> u64 {
        self.legs.iter().map(|l| l.iterations).sum()
    }
}

/// Renders a full multi-leg itinerary: per-leg turn instructions with
/// waypoint announcements between legs — what an ATIS terminal prints for
/// a planned journey.
pub fn itinerary(graph: &Graph, plan: &TripPlan) -> Vec<String> {
    let mut out = Vec::new();
    let legs = plan.legs.len();
    for (i, leg) in plan.legs.iter().enumerate() {
        let route = leg
            .route
            .as_ref()
            .expect("plan_trip rejects unreachable legs");
        out.push(format!(
            "Leg {} of {legs}: {} -> {} ({:.1} units)",
            i + 1,
            route.source(),
            route.destination(),
            route.cost
        ));
        let directions = crate::display::turn_instructions(graph, route);
        let last = directions.len().saturating_sub(1);
        for (j, line) in directions.into_iter().enumerate() {
            if j == last && i + 1 < legs {
                out.push(format!("  Waypoint reached: {}", route.destination()));
            } else {
                out.push(format!("  {line}"));
            }
        }
    }
    out
}

/// Plans a journey visiting `waypoints` in order (at least two: origin and
/// destination). Each leg is an independent single-pair computation with
/// the planner's default algorithm.
///
/// ```
/// use atis_core::{plan_trip, RoutePlanner};
/// use atis_graph::{CostModel, Grid};
///
/// let grid = Grid::new(6, CostModel::Uniform, 0).unwrap();
/// let planner = RoutePlanner::new(grid.graph()).unwrap();
/// let stops = [grid.node_at(0, 0), grid.node_at(5, 0), grid.node_at(5, 5)];
/// let trip = plan_trip(&planner, &stops).unwrap();
/// assert_eq!(trip.legs.len(), 2);
/// assert_eq!(trip.route.cost, 10.0); // two 5-hop legs at unit cost
/// ```
///
/// # Errors
/// Fails if fewer than two waypoints are given, a waypoint is unknown, or
/// any leg is unreachable.
pub fn plan_trip(planner: &RoutePlanner, waypoints: &[NodeId]) -> Result<TripPlan, AlgorithmError> {
    let [first, rest @ ..] = waypoints else {
        return Err(AlgorithmError::Graph(
            atis_graph::GraphError::MalformedPath(
                "a trip needs at least origin and destination".into(),
            ),
        ));
    };
    if rest.is_empty() {
        return Err(AlgorithmError::Graph(
            atis_graph::GraphError::MalformedPath(
                "a trip needs at least origin and destination".into(),
            ),
        ));
    }
    let mut legs = Vec::with_capacity(rest.len());
    let mut nodes = vec![*first];
    let mut cost = 0.0;
    let mut from = *first;
    for &to in rest {
        let report = planner.plan(from, to)?;
        let Some(route) = report.route.clone() else {
            return Err(AlgorithmError::Graph(
                atis_graph::GraphError::MalformedPath(format!("no route from {from} to {to}")),
            ));
        };
        nodes.extend(route.nodes.iter().skip(1));
        cost += route.cost;
        legs.push(report);
        from = to;
    }
    Ok(TripPlan {
        legs,
        route: Path { nodes, cost },
    })
}

/// Generates up to `k` distinct routes from `s` to `d` by the penalty
/// method: after each route is found, the edges it used are re-costed by
/// `(1 + penalty)` and the network is re-planned. Routes are returned
/// with their *original* costs, best first; duplicates are filtered, so
/// fewer than `k` may come back on sparse networks.
///
/// Dijkstra is used for each round (exactness keeps the alternatives
/// meaningfully ranked).
///
/// # Errors
/// Fails if the endpoints are unknown or the pair is disconnected.
pub fn plan_alternatives(
    graph: &Graph,
    s: NodeId,
    d: NodeId,
    k: usize,
    penalty: f64,
) -> Result<Vec<Path>, AlgorithmError> {
    assert!(penalty > 0.0, "penalty must be positive");
    let mut working = graph.clone();
    let mut out: Vec<Path> = Vec::new();
    for _ in 0..k {
        let planner = RoutePlanner::new(&working)?.with_algorithm(Algorithm::Dijkstra);
        let report = planner.plan(s, d)?;
        let Some(found) = report.route else {
            break;
        };
        // Re-cost against the *original* network for honest ranking.
        let original_cost: f64 = found
            .hops()
            .map(|(u, v)| {
                graph
                    .edge_cost(u, v)
                    .expect("route edges exist in the original")
            })
            .sum();
        let candidate = Path {
            nodes: found.nodes.clone(),
            cost: original_cost,
        };
        let duplicate = out.iter().any(|p| p.nodes == candidate.nodes);
        if !duplicate {
            out.push(candidate);
        }
        // Penalise the edges just used (both directions, so two-way roads
        // are discouraged as a corridor).
        let used: std::collections::HashSet<(NodeId, NodeId)> = found.hops().collect();
        working = working
            .map_costs(|e| {
                if used.contains(&(e.from, e.to)) || used.contains(&(e.to, e.from)) {
                    e.cost * (1.0 + penalty)
                } else {
                    e.cost
                }
            })
            .expect("scaling positive costs stays valid");
    }
    if out.is_empty() {
        return Err(AlgorithmError::Graph(
            atis_graph::GraphError::MalformedPath(format!("no route from {s} to {d}")),
        ));
    }
    out.sort_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_graph::{CostModel, Grid, QueryKind};

    fn setup() -> (Grid, RoutePlanner) {
        let grid = Grid::new(8, CostModel::TWENTY_PERCENT, 5).unwrap();
        let planner = RoutePlanner::new(grid.graph()).unwrap();
        (grid, planner)
    }

    #[test]
    fn trip_through_waypoints_stitches_legs() {
        let (grid, planner) = setup();
        let a = grid.node_at(0, 0);
        let b = grid.node_at(7, 0);
        let c = grid.node_at(7, 7);
        let trip = plan_trip(&planner, &[a, b, c]).unwrap();
        assert_eq!(trip.legs.len(), 2);
        assert_eq!(trip.route.source(), a);
        assert_eq!(trip.route.destination(), c);
        trip.route.validate(grid.graph()).unwrap();
        // The stitched route passes through the waypoint.
        assert!(trip.route.nodes.contains(&b));
        assert!(trip.total_cost_units() > 0.0);
        assert!(trip.total_iterations() > 0);
    }

    #[test]
    fn itinerary_announces_waypoints_and_arrival() {
        let (grid, planner) = setup();
        let a = grid.node_at(0, 0);
        let b = grid.node_at(4, 4);
        let c = grid.node_at(0, 7);
        let plan = plan_trip(&planner, &[a, b, c]).unwrap();
        let lines = itinerary(grid.graph(), &plan);
        assert!(lines[0].starts_with("Leg 1 of 2"));
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("Waypoint reached"))
                .count(),
            1
        );
        assert_eq!(lines.iter().filter(|l| l.contains("arrived")).count(), 1);
        assert!(lines.last().unwrap().contains("arrived"));
        // Every leg header names its endpoints.
        assert!(lines.iter().any(|l| l.contains(&format!("{b}"))));
    }

    #[test]
    fn trip_rejects_too_few_waypoints() {
        let (grid, planner) = setup();
        assert!(plan_trip(&planner, &[grid.node_at(0, 0)]).is_err());
        assert!(plan_trip(&planner, &[]).is_err());
    }

    #[test]
    fn trip_cost_is_the_sum_of_leg_costs() {
        let (grid, planner) = setup();
        let a = grid.node_at(0, 0);
        let b = grid.node_at(3, 3);
        let c = grid.node_at(0, 7);
        let trip = plan_trip(&planner, &[a, b, c]).unwrap();
        let leg_sum: f64 = trip
            .legs
            .iter()
            .map(|l| l.route.as_ref().unwrap().cost)
            .sum();
        assert!((trip.route.cost - leg_sum).abs() < 1e-9);
    }

    #[test]
    fn alternatives_are_distinct_valid_and_ranked() {
        let (grid, _) = setup();
        let (s, d) = grid.query_pair(QueryKind::SemiDiagonal);
        let alts = plan_alternatives(grid.graph(), s, d, 3, 0.5).unwrap();
        assert!(!alts.is_empty());
        for p in &alts {
            p.validate(grid.graph()).unwrap();
            assert_eq!(p.source(), s);
            assert_eq!(p.destination(), d);
        }
        for pair in alts.windows(2) {
            assert!(
                pair[0].cost <= pair[1].cost + 1e-9,
                "alternatives must be ranked"
            );
            assert_ne!(pair[0].nodes, pair[1].nodes, "alternatives must differ");
        }
        // The best alternative is the true shortest path.
        let oracle = atis_algorithms::memory::dijkstra_pair(grid.graph(), s, d).unwrap();
        assert!((alts[0].cost - oracle.cost).abs() < 1e-9);
    }

    #[test]
    fn alternatives_on_a_single_corridor_collapse() {
        // A path graph has exactly one route no matter the penalty.
        let g = atis_graph::graph::graph_from_arcs(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
            .unwrap();
        let alts = plan_alternatives(&g, NodeId(0), NodeId(3), 5, 1.0).unwrap();
        assert_eq!(alts.len(), 1);
    }

    #[test]
    fn unreachable_alternatives_error() {
        let g = atis_graph::graph::graph_from_arcs(3, &[(0, 1, 1.0)]).unwrap();
        assert!(plan_alternatives(&g, NodeId(0), NodeId(2), 2, 0.5).is_err());
    }
}
