//! Map matching: snapping observed positions onto the road network — the
//! "current location" primitive an ATIS needs before it can run any
//! path computation (Section 1.1 frames route computation as "from
//! current location to destination").
//!
//! [`match_trace`] converts a polyline of (noisy) positions into a
//! connected route: each observation snaps to its nearest connected node,
//! consecutive snaps are joined by shortest paths, and repeated snaps are
//! collapsed.

use atis_algorithms::memory;
use atis_graph::{Graph, NodeId, Path, Point};

/// The result of matching one observed trace.
#[derive(Debug, Clone)]
pub struct MatchedTrace {
    /// The snapped node for each input observation (same length/order).
    pub snapped: Vec<NodeId>,
    /// The stitched road route through the snapped nodes.
    pub route: Path,
    /// Mean snap distance (observation → chosen node).
    pub mean_snap_distance: f64,
}

/// Matches a polyline of observed positions to the network.
///
/// # Errors
/// Returns `None` if the trace is empty, the graph has no nodes, or two
/// consecutive snaps are disconnected.
pub fn match_trace(graph: &Graph, observations: &[Point]) -> Option<MatchedTrace> {
    if observations.is_empty() {
        return None;
    }
    let snapped: Vec<NodeId> = observations
        .iter()
        .map(|&p| graph.nearest_node(p))
        .collect::<Option<_>>()?;
    let mean_snap_distance = observations
        .iter()
        .zip(&snapped)
        .map(|(p, &n)| graph.point(n).euclidean(p))
        .sum::<f64>()
        / observations.len() as f64;

    // Stitch shortest paths between consecutive *distinct* snaps.
    let mut nodes = vec![snapped[0]];
    let mut cost = 0.0;
    for window in snapped.windows(2) {
        let (a, b) = (window[0], window[1]);
        if a == b {
            continue;
        }
        let leg = memory::dijkstra_pair(graph, a, b)?;
        nodes.extend(leg.nodes.iter().skip(1));
        cost += leg.cost;
    }
    Some(MatchedTrace {
        snapped,
        route: Path { nodes, cost },
        mean_snap_distance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_graph::{CostModel, Grid, Minneapolis};

    #[test]
    fn clean_trace_matches_exactly() {
        let grid = Grid::new(8, CostModel::Uniform, 0).unwrap();
        // Observations exactly on nodes along row 2.
        let obs: Vec<Point> = (0..5).map(|c| Point::new(c as f64, 2.0)).collect();
        let m = match_trace(grid.graph(), &obs).unwrap();
        assert_eq!(m.snapped.len(), 5);
        assert!(m.mean_snap_distance < 1e-9);
        m.route.validate(grid.graph()).unwrap();
        assert_eq!(m.route.len(), 4);
        assert_eq!(m.route.source(), grid.node_at(2, 0));
        assert_eq!(m.route.destination(), grid.node_at(2, 4));
    }

    #[test]
    fn noisy_trace_snaps_to_the_road() {
        let grid = Grid::new(8, CostModel::Uniform, 0).unwrap();
        let obs: Vec<Point> = (0..5)
            .map(|c| Point::new(c as f64 + 0.2, 2.0 - 0.3))
            .collect();
        let m = match_trace(grid.graph(), &obs).unwrap();
        assert!(m.mean_snap_distance > 0.0 && m.mean_snap_distance < 0.5);
        m.route.validate(grid.graph()).unwrap();
    }

    #[test]
    fn sparse_observations_get_stitched_through_the_network() {
        // Two observations far apart: the route fills in the road between.
        let grid = Grid::new(10, CostModel::TWENTY_PERCENT, 3).unwrap();
        let obs = vec![Point::new(0.0, 0.0), Point::new(9.0, 9.0)];
        let m = match_trace(grid.graph(), &obs).unwrap();
        assert_eq!(m.route.len(), 18, "shortest hop path has 18 edges");
        m.route.validate(grid.graph()).unwrap();
    }

    #[test]
    fn stationary_observations_collapse() {
        let grid = Grid::new(6, CostModel::Uniform, 0).unwrap();
        let obs = vec![Point::new(2.0, 2.0); 4];
        let m = match_trace(grid.graph(), &obs).unwrap();
        assert_eq!(m.route.len(), 0);
        assert_eq!(m.snapped.len(), 4);
    }

    #[test]
    fn empty_trace_and_empty_graph_are_none() {
        let grid = Grid::new(4, CostModel::Uniform, 0).unwrap();
        assert!(match_trace(grid.graph(), &[]).is_none());
        let empty = atis_graph::GraphBuilder::new().build().unwrap();
        assert!(match_trace(&empty, &[Point::new(0.0, 0.0)]).is_none());
    }

    #[test]
    fn minneapolis_trace_avoids_lakes() {
        // Observations over the lake snap to shoreline roads, never to
        // isolated island nodes.
        let m = Minneapolis::paper();
        let obs = vec![
            Point::new(6.0, 6.5),
            Point::new(10.0, 6.0),
            Point::new(14.0, 8.0),
        ];
        let matched = match_trace(m.graph(), &obs).unwrap();
        for &n in &matched.snapped {
            assert!(m.graph().degree(n) > 0, "snapped to an isolated node {n}");
        }
        matched.route.validate(m.graph()).unwrap();
    }
}
