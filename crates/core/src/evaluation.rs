//! Route evaluation (Section 1.1): "the goal of route evaluation is to
//! find the attributes of a given route between two points. These
//! attributes may include travel time and traffic congestion information."

use atis_graph::{Graph, GraphError, Path, RoadClass};

/// Attributes of a route, computed from the per-segment data the
//  Minneapolis map carries (distance, speed class, occupancy).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteAttributes {
    /// Total edge cost (distance for distance-costed maps).
    pub distance: f64,
    /// Congestion-aware travel time (segment distance over effective
    /// speed).
    pub travel_time: f64,
    /// Number of road segments.
    pub segments: usize,
    /// Mean segment occupancy, distance-weighted.
    pub mean_occupancy: f64,
    /// The single worst segment occupancy on the route.
    pub worst_occupancy: f64,
    /// Distance travelled on each road class: (street, highway, freeway).
    pub class_distance: (f64, f64, f64),
}

impl RouteAttributes {
    /// Fraction of the route's distance on freeways.
    pub fn freeway_fraction(&self) -> f64 {
        if self.distance <= 0.0 {
            0.0
        } else {
            self.class_distance.2 / self.distance
        }
    }
}

/// Evaluates a route against the network it was planned on.
///
/// # Errors
/// Fails if the path uses a missing edge or its stored cost is stale.
pub fn evaluate_route(graph: &Graph, path: &Path) -> Result<RouteAttributes, GraphError> {
    path.validate(graph)?;
    let mut distance = 0.0;
    let mut travel_time = 0.0;
    let mut weighted_occ = 0.0;
    let mut worst_occ: f64 = 0.0;
    let mut class_distance = (0.0, 0.0, 0.0);
    let mut segments = 0usize;
    for (u, v) in path.hops() {
        let e = graph
            .edge(u, v)
            .ok_or(GraphError::MissingEdge { from: u, to: v })?;
        distance += e.cost;
        travel_time += e.travel_time();
        weighted_occ += e.occupancy * e.cost;
        worst_occ = worst_occ.max(e.occupancy);
        match e.class {
            RoadClass::Street => class_distance.0 += e.cost,
            RoadClass::Highway => class_distance.1 += e.cost,
            RoadClass::Freeway => class_distance.2 += e.cost,
        }
        segments += 1;
    }
    let mean_occupancy = if distance > 0.0 {
        weighted_occ / distance
    } else {
        0.0
    };
    Ok(RouteAttributes {
        distance,
        travel_time,
        segments,
        mean_occupancy,
        worst_occupancy: worst_occ,
        class_distance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_graph::{Edge, GraphBuilder, NodeId, Point};

    fn network() -> Graph {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(1.0, 0.0));
        let n2 = b.add_node(Point::new(2.0, 0.0));
        b.add_edge(Edge::new(n0, n1, 1.0).with_occupancy(0.5));
        b.add_edge(
            Edge::new(n1, n2, 3.0)
                .with_class(RoadClass::Freeway)
                .with_occupancy(0.1),
        );
        b.build().unwrap()
    }

    fn route() -> Path {
        Path {
            nodes: vec![NodeId(0), NodeId(1), NodeId(2)],
            cost: 4.0,
        }
    }

    #[test]
    fn attributes_add_up() {
        let g = network();
        let a = evaluate_route(&g, &route()).unwrap();
        assert_eq!(a.segments, 2);
        assert!((a.distance - 4.0).abs() < 1e-12);
        assert_eq!(a.worst_occupancy, 0.5);
        assert!((a.class_distance.0 - 1.0).abs() < 1e-12);
        assert!((a.class_distance.2 - 3.0).abs() < 1e-12);
        assert!((a.freeway_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn travel_time_reflects_congestion_and_class() {
        let g = network();
        let a = evaluate_route(&g, &route()).unwrap();
        // Segment 1: street at 0.5 occupancy -> speed 0.6 -> 1/0.6.
        // Segment 2: freeway at 0.1 occupancy -> speed 2.5*0.92 -> 3/2.3.
        let expect = 1.0 / 0.6 + 3.0 / (2.5 * 0.92);
        assert!((a.travel_time - expect).abs() < 1e-9);
        // Congestion makes it slower than distance/free-flow alone.
        assert!(a.travel_time > a.distance / 2.5);
    }

    #[test]
    fn mean_occupancy_is_distance_weighted() {
        let g = network();
        let a = evaluate_route(&g, &route()).unwrap();
        let expect = (0.5 * 1.0 + 0.1 * 3.0) / 4.0;
        assert!((a.mean_occupancy - expect).abs() < 1e-9);
    }

    #[test]
    fn invalid_route_is_rejected() {
        let g = network();
        let bad = Path {
            nodes: vec![NodeId(2), NodeId(0)],
            cost: 1.0,
        };
        assert!(evaluate_route(&g, &bad).is_err());
    }

    #[test]
    fn trivial_route_evaluates_to_zero() {
        let g = network();
        let a = evaluate_route(&g, &Path::trivial(NodeId(1))).unwrap();
        assert_eq!(a.segments, 0);
        assert_eq!(a.distance, 0.0);
        assert_eq!(a.travel_time, 0.0);
    }
}
