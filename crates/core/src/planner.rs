//! Route computation: the planner facade over the database-resident
//! algorithms.

use atis_algorithms::{
    memory, AStarVersion, Algorithm, AlgorithmError, Budgets, Database, RunTrace,
};
use atis_graph::{Graph, NodeId, Path};
use atis_hierarchy::{Hierarchy, HierarchyConfig, HierarchyError};
use atis_obs::{PlanEvent, SharedRegistry, SharedSink, TraceEvent};
use atis_preprocess::{LandmarkTables, PreprocessConfig, PreprocessError};
use atis_storage::{CostParams, FaultPlan, IoStats, JoinPolicy};
use std::time::{Duration, Instant};

/// How the planner reacts when a database-resident run fails.
///
/// Transient faults ([`atis_algorithms::AlgorithmError::is_transient`],
/// i.e. injected I/O failures) are retried with doubling backoff; anything
/// else — corruption, an exhausted budget — skips straight to degradation.
/// When a rung of the ladder is out of retries the planner falls to the
/// next one: the requested algorithm, then Dijkstra (exact, no estimator
/// to mislead under partial data), then the in-memory oracle, which cannot
/// touch the (faulty) storage engine at all and therefore always answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResiliencePolicy {
    /// Retries per ladder rung for *transient* errors (0 = fail fast).
    pub max_retries: u32,
    /// Sleep before the first retry; doubles on each subsequent one.
    pub backoff: Duration,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        ResiliencePolicy {
            max_retries: 2,
            backoff: Duration::from_millis(1),
        }
    }
}

impl ResiliencePolicy {
    /// No retries, no sleeps: every failure degrades immediately.
    pub fn fail_fast() -> Self {
        ResiliencePolicy {
            max_retries: 0,
            backoff: Duration::ZERO,
        }
    }

    /// Overrides the per-rung retry count.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Overrides the initial backoff (doubles per retry).
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

/// One failed run recorded by [`RoutePlanner::plan_resilient`].
#[derive(Debug, Clone)]
pub struct AttemptRecord {
    /// Label of the algorithm that was attempted.
    pub algorithm: String,
    /// The error it returned, rendered for display.
    pub error: String,
    /// Whether the error was transient (and thus eligible for retry).
    pub transient: bool,
}

/// The result of planning one route.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Which algorithm produced it.
    pub algorithm: String,
    /// The route, or `None` if the destination is unreachable.
    pub route: Option<Path>,
    /// Iterations the run took (the paper's reported metric).
    pub iterations: u64,
    /// Simulated I/O cost in Table 4A units (the paper's execution time).
    pub cost_units: f64,
    /// Wall-clock time of the run on this machine.
    pub wall: Duration,
    /// Whether the answer came from a lower rung than the requested
    /// algorithm (set only by [`RoutePlanner::plan_resilient`]).
    pub degraded: bool,
    /// Every failed run that preceded this answer (empty for the plain
    /// `plan`/`plan_with` paths and for first-try successes).
    pub attempts: Vec<AttemptRecord>,
    /// The full trace, for detailed inspection.
    pub trace: RunTrace,
}

impl PlanReport {
    fn from_trace(trace: RunTrace, params: &CostParams) -> Self {
        PlanReport {
            algorithm: trace.algorithm.clone(),
            route: trace.path.clone(),
            iterations: trace.iterations,
            cost_units: trace.cost_units(params),
            wall: trace.wall,
            degraded: false,
            attempts: Vec::new(),
            trace,
        }
    }

    /// Whether a route was found.
    pub fn found(&self) -> bool {
        self.route.is_some()
    }
}

/// The ATIS route planner: a road network loaded into the storage engine
/// plus a default algorithm choice.
///
/// ```
/// use atis_core::RoutePlanner;
/// use atis_graph::{CostModel, Grid, QueryKind};
///
/// let grid = Grid::new(8, CostModel::TWENTY_PERCENT, 1).unwrap();
/// let planner = RoutePlanner::new(grid.graph()).unwrap();
/// let (s, d) = grid.query_pair(QueryKind::Diagonal);
/// let report = planner.plan(s, d).unwrap();
/// assert!(report.found());
/// assert!(report.cost_units > 0.0);
/// ```
///
/// The default is A\* (version 3): the paper's conclusion is that
/// estimator-based single-pair search wins "if the path\[source,
/// destination\] is much smaller than the diameter of the graph" — the
/// common case for a traveller information system — at the cost of
/// guaranteed optimality when the Manhattan estimator overestimates
/// (Section 6 explicitly embraces that trade-off for ATIS).
#[derive(Debug, Clone)]
pub struct RoutePlanner {
    db: Database,
    default_algorithm: Algorithm,
    resilience: ResiliencePolicy,
}

impl RoutePlanner {
    /// Loads a road network with default settings.
    ///
    /// # Errors
    /// Fails if the graph exceeds the storage encodings (> 65 535 nodes).
    pub fn new(graph: &Graph) -> Result<Self, AlgorithmError> {
        Ok(RoutePlanner {
            db: Database::open(graph)?,
            default_algorithm: Algorithm::AStar(AStarVersion::V3),
            resilience: ResiliencePolicy::default(),
        })
    }

    /// Overrides the default algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.default_algorithm = algorithm;
        self
    }

    /// Builds landmark (ALT) tables for the resident network and makes
    /// A\* version 4 the default algorithm. The resilience ladder then
    /// runs v4 → v3 → Dijkstra → in-memory oracle: if the tables go
    /// stale (a cost update without re-preprocessing), v4 fails with
    /// `LandmarksUnavailable` and the planner degrades to v3, which needs
    /// no tables.
    ///
    /// # Errors
    /// Propagates preprocessing errors (empty graph, landmark count
    /// exceeding the node count).
    pub fn with_alt_estimator(mut self, config: PreprocessConfig) -> Result<Self, PreprocessError> {
        let tables = LandmarkTables::build(self.db.graph(), config)?;
        self.db = self.db.with_landmarks(tables);
        self.default_algorithm = Algorithm::AStar(AStarVersion::V4);
        Ok(self)
    }

    /// Attaches already-built landmark tables (e.g. an epoch artifact
    /// shared by a serving fleet) without changing the default algorithm.
    pub fn with_landmarks(mut self, tables: LandmarkTables) -> Self {
        self.db = self.db.with_landmarks(tables);
        self
    }

    /// Builds a contraction hierarchy for the resident network and makes
    /// A\* version 5 the default algorithm. The resilience ladder then
    /// runs v5 → v4 (when landmark tables are attached) → v3 → Dijkstra
    /// → in-memory oracle: if the hierarchy goes stale (a cost update
    /// without customization), v5 fails with `HierarchyUnavailable` and
    /// the planner degrades down the ladder.
    ///
    /// # Errors
    /// Propagates hierarchy build errors (empty graph).
    pub fn with_hierarchy_overlay(
        mut self,
        config: HierarchyConfig,
    ) -> Result<Self, HierarchyError> {
        let hierarchy = Hierarchy::build(self.db.graph(), config)?;
        self.db = self.db.with_hierarchy(hierarchy);
        self.default_algorithm = Algorithm::AStar(AStarVersion::V5);
        Ok(self)
    }

    /// Attaches an already-built contraction hierarchy (e.g. an epoch
    /// artifact shared by a serving fleet) without changing the default
    /// algorithm.
    pub fn with_hierarchy(mut self, hierarchy: Hierarchy) -> Self {
        self.db = self.db.with_hierarchy(hierarchy);
        self
    }

    /// Overrides the join policy (e.g. `JoinPolicy::CostBased` to let the
    /// optimizer replace the paper's forced nested-loop joins).
    pub fn with_join_policy(mut self, policy: JoinPolicy) -> Self {
        self.db = self.db.with_join_policy(policy);
        self
    }

    /// Overrides the retry/degradation policy used by
    /// [`plan_resilient`](Self::plan_resilient).
    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> Self {
        self.resilience = policy;
        self
    }

    /// Caps every run with the given search budgets.
    pub fn with_budgets(mut self, budgets: Budgets) -> Self {
        self.db = self.db.with_budgets(budgets);
        self
    }

    /// Attaches a fault-injection plan to the storage engine underneath
    /// the planner (for chaos testing the resilience ladder).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.db = self.db.with_fault_plan(plan);
        self
    }

    /// Attaches a trace sink: every run emits its iteration events, and
    /// [`plan_resilient`](Self::plan_resilient) additionally emits
    /// [`PlanEvent`] spans — attempts, retries, degradation rungs,
    /// completion — interleaved with the runs they describe.
    pub fn with_trace_sink(mut self, sink: SharedSink) -> Self {
        self.db = self.db.with_trace_sink(sink);
        self
    }

    /// Attaches a metrics registry; the planner adds `plans_total`,
    /// `plans_degraded_total` and `plan_retries_total` on top of the
    /// per-run metrics the database layer records.
    pub fn with_metrics(mut self, metrics: SharedRegistry) -> Self {
        self.db = self.db.with_metrics(metrics);
        self
    }

    fn emit(&self, event: PlanEvent) {
        if let Some(sink) = self.db.trace_sink() {
            sink.record(&TraceEvent::Plan(event));
        }
    }

    /// The retry/degradation policy.
    pub fn resilience(&self) -> ResiliencePolicy {
        self.resilience
    }

    /// The default algorithm.
    pub fn default_algorithm(&self) -> Algorithm {
        self.default_algorithm
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Consumes the planner and hands its configured database over — the
    /// entry point for pooled execution: `atis-serve`'s `RouteService`
    /// takes a `Database` (with whatever budgets, join policy, metrics
    /// and sinks the planner accumulated) and serves it from a worker
    /// pool behind epoch snapshots. The single-query planner and the
    /// serving layer therefore share one configuration path.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// The resident road network.
    pub fn graph(&self) -> &Graph {
        self.db.graph()
    }

    /// Plans a route with the default algorithm.
    ///
    /// # Errors
    /// Fails for unknown endpoints.
    pub fn plan(&self, s: NodeId, d: NodeId) -> Result<PlanReport, AlgorithmError> {
        self.plan_with(self.default_algorithm, s, d)
    }

    /// Plans a route with an explicit algorithm.
    ///
    /// # Errors
    /// Fails for unknown endpoints.
    pub fn plan_with(
        &self,
        algorithm: Algorithm,
        s: NodeId,
        d: NodeId,
    ) -> Result<PlanReport, AlgorithmError> {
        let trace = self.db.run(algorithm, s, d)?;
        Ok(PlanReport::from_trace(trace, self.db.params()))
    }

    /// Plans routes from one source to several destinations, one report
    /// per destination in input order. With `Algorithm::Dijkstra` and
    /// two or more destinations the whole set executes as a **single
    /// batched sweep** (set-at-a-time frontier expansion): one charged
    /// pass over the node relation settles every destination, and each
    /// report's path and iteration count are bit-identical to a solo
    /// `plan_with` call. Estimator-driven algorithms fall back to
    /// independent runs — their expansion order depends on the
    /// destination, so they cannot share a sweep.
    ///
    /// # Errors
    /// Fails for unknown endpoints; an exhausted budget mid-sweep fails
    /// the whole batch.
    pub fn plan_many(
        &self,
        algorithm: Algorithm,
        s: NodeId,
        destinations: &[NodeId],
    ) -> Result<Vec<PlanReport>, AlgorithmError> {
        let traces =
            self.db
                .run_many_with_budgets(algorithm, s, destinations, self.db.budgets())?;
        Ok(traces
            .into_iter()
            .map(|trace| PlanReport::from_trace(trace, self.db.params()))
            .collect())
    }

    /// Runs several algorithms on the same query — the paper's comparative
    /// methodology — returning one report per algorithm.
    ///
    /// # Errors
    /// Fails for unknown endpoints.
    pub fn compare(
        &self,
        algorithms: &[Algorithm],
        s: NodeId,
        d: NodeId,
    ) -> Result<Vec<PlanReport>, AlgorithmError> {
        algorithms
            .iter()
            .map(|&a| self.plan_with(a, s, d))
            .collect()
    }

    /// Plans a route, riding out storage faults and exhausted budgets.
    ///
    /// Transient I/O failures are retried per [`ResiliencePolicy`]; when a
    /// rung stays broken the planner degrades — requested algorithm, then
    /// Dijkstra, then the in-memory oracle (which bypasses the storage
    /// engine entirely and cannot fail). The report records every failed
    /// attempt and whether the answer is degraded.
    ///
    /// # Errors
    /// Only for unknown endpoints — the query itself is wrong, and no
    /// amount of retrying fixes it.
    pub fn plan_resilient(&self, s: NodeId, d: NodeId) -> Result<PlanReport, AlgorithmError> {
        if !self.graph().contains(s) {
            return Err(AlgorithmError::UnknownSource(s));
        }
        if !self.graph().contains(d) {
            return Err(AlgorithmError::UnknownDestination(d));
        }

        let mut ladder = vec![self.default_algorithm];
        if self.default_algorithm == Algorithm::AStar(AStarVersion::V5) {
            // v5 depends on the hierarchy overlay: when it is missing or
            // stale the run fails without searching. The next rung is v4
            // when landmark tables are attached (the other preprocessing
            // artifact may still be fresh), then v3, which needs nothing.
            if self.db.landmarks().is_some() {
                ladder.push(Algorithm::AStar(AStarVersion::V4));
            }
            ladder.push(Algorithm::AStar(AStarVersion::V3));
        }
        if self.default_algorithm == Algorithm::AStar(AStarVersion::V4) {
            // v4's preprocessing dependency is the landmark tables: when
            // they are missing or stale it fails without searching, and
            // v3 — same engine, geometric estimator, no tables — is the
            // natural next rung.
            ladder.push(Algorithm::AStar(AStarVersion::V3));
        }
        if self.default_algorithm != Algorithm::Dijkstra {
            ladder.push(Algorithm::Dijkstra);
        }

        let mut attempts = Vec::new();
        for (rung, &algorithm) in ladder.iter().enumerate() {
            let mut retries = 0u32;
            let mut backoff = self.resilience.backoff;
            loop {
                self.emit(PlanEvent::AttemptStarted {
                    algorithm: algorithm.label(),
                    rung: rung as u32,
                    retry: retries,
                });
                match self.db.run(algorithm, s, d) {
                    Ok(trace) => {
                        let mut report = PlanReport::from_trace(trace, self.db.params());
                        report.degraded = rung > 0;
                        report.attempts = attempts;
                        self.emit(PlanEvent::Completed {
                            algorithm: report.algorithm.clone(),
                            degraded: report.degraded,
                            failed_attempts: report.attempts.len() as u32,
                            found: report.found(),
                        });
                        self.record_plan_metrics(&report);
                        return Ok(report);
                    }
                    Err(err) => {
                        let transient = err.is_transient();
                        self.emit(PlanEvent::AttemptFailed {
                            algorithm: algorithm.label(),
                            rung: rung as u32,
                            retry: retries,
                            error: err.to_string(),
                            transient,
                        });
                        attempts.push(AttemptRecord {
                            algorithm: algorithm.label(),
                            error: err.to_string(),
                            transient,
                        });
                        // Corruption and blown budgets won't heal on a
                        // rerun; only transient I/O errors earn a retry.
                        if transient && retries < self.resilience.max_retries {
                            retries += 1;
                            if let Some(m) = self.db.metrics() {
                                m.inc("plan_retries_total");
                            }
                            if !backoff.is_zero() {
                                std::thread::sleep(backoff);
                                backoff *= 2;
                            }
                            continue;
                        }
                        break; // next rung of the ladder
                    }
                }
            }
            let next = ladder
                .get(rung + 1)
                .map(|a| a.label())
                .unwrap_or_else(|| "Dijkstra (in-memory fallback)".to_string());
            self.emit(PlanEvent::Degraded {
                from: algorithm.label(),
                to: next,
                rung: rung as u32 + 1,
            });
        }

        // Last rung: the in-memory oracle. No storage engine, no faults,
        // no budget — degraded service beats no service for a traveller
        // already on the road.
        let started = Instant::now();
        let path = memory::dijkstra_pair(self.graph(), s, d);
        let trace = RunTrace {
            algorithm: "Dijkstra (in-memory fallback)".to_string(),
            iterations: 0,
            expanded: 0,
            reopened: 0,
            io: IoStats::new(),
            join_strategy: None,
            path,
            wall: started.elapsed(),
            expansion_order: Vec::new(),
            steps: Default::default(),
            frontier_peak: 0,
        };
        let mut report = PlanReport::from_trace(trace, self.db.params());
        report.degraded = true;
        report.attempts = attempts;
        self.emit(PlanEvent::Completed {
            algorithm: report.algorithm.clone(),
            degraded: true,
            failed_attempts: report.attempts.len() as u32,
            found: report.found(),
        });
        self.record_plan_metrics(&report);
        Ok(report)
    }

    fn record_plan_metrics(&self, report: &PlanReport) {
        let Some(m) = self.db.metrics() else { return };
        m.inc("plans_total");
        if report.degraded {
            m.inc("plans_degraded_total");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_graph::{CostModel, Grid, QueryKind};

    fn planner() -> (Grid, RoutePlanner) {
        let grid = Grid::new(8, CostModel::TWENTY_PERCENT, 3).unwrap();
        let p = RoutePlanner::new(grid.graph()).unwrap();
        (grid, p)
    }

    #[test]
    fn default_algorithm_is_astar_v3() {
        let (_, p) = planner();
        assert_eq!(p.default_algorithm(), Algorithm::AStar(AStarVersion::V3));
    }

    #[test]
    fn plan_returns_a_valid_route() {
        let (grid, p) = planner();
        let (s, d) = grid.query_pair(QueryKind::SemiDiagonal);
        let report = p.plan(s, d).unwrap();
        assert!(report.found());
        let route = report.route.unwrap();
        assert_eq!(route.source(), s);
        assert_eq!(route.destination(), d);
        route.validate(grid.graph()).unwrap();
        assert!(report.cost_units > 0.0);
    }

    #[test]
    fn compare_runs_all_algorithms() {
        let (grid, p) = planner();
        let (s, d) = grid.query_pair(QueryKind::Horizontal);
        let reports = p.compare(&Algorithm::TABLE, s, d).unwrap();
        assert_eq!(reports.len(), 3);
        // All algorithms find a route of the same (optimal) cost on an
        // admissible configuration.
        let costs: Vec<f64> = reports
            .iter()
            .map(|r| r.route.as_ref().unwrap().cost)
            .collect();
        for c in &costs[1..] {
            assert!((c - costs[0]).abs() < 1e-3);
        }
        // A* beats Dijkstra on the short query, in simulated cost.
        let astar = reports
            .iter()
            .find(|r| r.algorithm.contains("version 3"))
            .unwrap();
        let dijkstra = reports.iter().find(|r| r.algorithm == "Dijkstra").unwrap();
        assert!(astar.cost_units < dijkstra.cost_units);
    }

    #[test]
    fn algorithm_override_applies() {
        let (grid, p) = planner();
        let p = p.with_algorithm(Algorithm::Dijkstra);
        let (s, d) = grid.query_pair(QueryKind::Horizontal);
        let report = p.plan(s, d).unwrap();
        assert_eq!(report.algorithm, "Dijkstra");
    }

    #[test]
    fn plan_resilient_is_plain_plan_when_nothing_fails() {
        let (grid, p) = planner();
        let (s, d) = grid.query_pair(QueryKind::SemiDiagonal);
        let plain = p.plan(s, d).unwrap();
        let resilient = p.plan_resilient(s, d).unwrap();
        assert!(!resilient.degraded);
        assert!(resilient.attempts.is_empty());
        assert_eq!(resilient.algorithm, plain.algorithm);
        assert_eq!(
            resilient.route.as_ref().map(|r| r.cost),
            plain.route.as_ref().map(|r| r.cost)
        );
    }

    #[test]
    fn transient_fault_is_retried_without_degrading() {
        let (grid, _) = planner();
        let (s, d) = grid.query_pair(QueryKind::SemiDiagonal);
        // One planned hard read failure: the first run dies, the retry's
        // op counter is already past it and succeeds on the same rung.
        let p = RoutePlanner::new(grid.graph())
            .unwrap()
            .with_fault_plan(atis_storage::FaultPlan::inert(7).with_fail_nth_read(30));
        let report = p.plan_resilient(s, d).unwrap();
        assert!(!report.degraded, "retry should succeed on the same rung");
        assert_eq!(report.attempts.len(), 1);
        assert!(report.attempts[0].transient);
        assert!(report.found());
    }

    #[test]
    fn persistent_faults_degrade_to_the_memory_fallback() {
        let (grid, _) = planner();
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        // Every read fails: no database-resident rung can ever finish.
        let p = RoutePlanner::new(grid.graph())
            .unwrap()
            .with_resilience(ResiliencePolicy::fail_fast())
            .with_fault_plan(atis_storage::FaultPlan::inert(1).with_read_failure_rate(1.0));
        let report = p.plan_resilient(s, d).unwrap();
        assert!(report.degraded);
        assert_eq!(report.algorithm, "Dijkstra (in-memory fallback)");
        // Fail-fast: one attempt per database-resident rung.
        assert_eq!(report.attempts.len(), 2);
        // The fallback still returns the exact shortest path.
        let oracle = atis_algorithms::memory::dijkstra_pair(grid.graph(), s, d).unwrap();
        assert!((report.route.unwrap().cost - oracle.cost).abs() < 1e-9);
    }

    #[test]
    fn blown_budget_degrades_without_retrying() {
        let (grid, _) = planner();
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let p = RoutePlanner::new(grid.graph())
            .unwrap()
            .with_budgets(Budgets::unlimited().with_max_iterations(1));
        let report = p.plan_resilient(s, d).unwrap();
        assert!(report.degraded);
        // Budget errors are not transient: exactly one attempt per rung.
        assert_eq!(report.attempts.len(), 2);
        assert!(report.attempts.iter().all(|a| !a.transient));
        assert!(report.found());
    }

    #[test]
    fn alt_estimator_makes_v4_the_default_and_plans_optimally() {
        let (grid, p) = planner();
        let p = p
            .with_alt_estimator(atis_preprocess::PreprocessConfig::grid_default())
            .unwrap();
        assert_eq!(p.default_algorithm(), Algorithm::AStar(AStarVersion::V4));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let report = p.plan(s, d).unwrap();
        assert_eq!(report.algorithm, "A* (version 4)");
        let oracle = memory::dijkstra_pair(grid.graph(), s, d).unwrap();
        assert!((report.route.unwrap().cost - oracle.cost).abs() < 1e-3);
    }

    #[test]
    fn stale_landmarks_degrade_to_v3_not_dijkstra() {
        let grid = Grid::new(8, CostModel::TWENTY_PERCENT, 3).unwrap();
        // Build tables on the pristine grid, then plan against a mutated
        // copy: the fingerprints disagree, so v4 fails fast and the
        // ladder's next rung (v3) answers.
        let tables = atis_preprocess::LandmarkTables::build(
            grid.graph(),
            atis_preprocess::PreprocessConfig::grid_default(),
        )
        .unwrap();
        let mut changed = grid.graph().clone();
        changed
            .set_edge_cost(grid.node_at(3, 3), grid.node_at(3, 4), 5.0)
            .unwrap();
        let p = RoutePlanner::new(&changed)
            .unwrap()
            .with_landmarks(tables)
            .with_algorithm(Algorithm::AStar(AStarVersion::V4));
        let (s, d) = grid.query_pair(QueryKind::SemiDiagonal);
        let report = p.plan_resilient(s, d).unwrap();
        assert!(report.degraded);
        assert_eq!(report.algorithm, "A* (version 3)");
        assert_eq!(report.attempts.len(), 1);
        assert!(report.attempts[0].error.contains("stale"));
        assert!(report.found());
    }

    #[test]
    fn hierarchy_overlay_makes_v5_the_default_and_plans_optimally() {
        let (grid, p) = planner();
        let p = p.with_hierarchy_overlay(HierarchyConfig::paper()).unwrap();
        assert_eq!(p.default_algorithm(), Algorithm::AStar(AStarVersion::V5));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let report = p.plan(s, d).unwrap();
        assert_eq!(report.algorithm, "A* (version 5)");
        let oracle = memory::dijkstra_pair(grid.graph(), s, d).unwrap();
        assert!((report.route.unwrap().cost - oracle.cost).abs() < 1e-6);
    }

    #[test]
    fn stale_hierarchy_degrades_to_v4_then_v3() {
        let grid = Grid::new(8, CostModel::TWENTY_PERCENT, 3).unwrap();
        // Both artifacts built on the pristine grid; the planner runs
        // against a mutated copy so both are stale. v5 fails fast, v4
        // fails fast, and v3 — no preprocessing dependency — answers.
        let hierarchy = Hierarchy::build(grid.graph(), HierarchyConfig::paper()).unwrap();
        let tables = atis_preprocess::LandmarkTables::build(
            grid.graph(),
            atis_preprocess::PreprocessConfig::grid_default(),
        )
        .unwrap();
        let mut changed = grid.graph().clone();
        changed
            .set_edge_cost(grid.node_at(3, 3), grid.node_at(3, 4), 5.0)
            .unwrap();
        let p = RoutePlanner::new(&changed)
            .unwrap()
            .with_hierarchy(hierarchy)
            .with_landmarks(tables)
            .with_algorithm(Algorithm::AStar(AStarVersion::V5));
        let (s, d) = grid.query_pair(QueryKind::SemiDiagonal);
        let report = p.plan_resilient(s, d).unwrap();
        assert!(report.degraded);
        assert_eq!(report.algorithm, "A* (version 3)");
        assert_eq!(report.attempts.len(), 2);
        assert!(report.attempts[0].error.contains("hierarchy"));
        assert!(report.attempts[0].error.contains("stale"));
        assert!(report.attempts[1].error.contains("landmark"));
        assert!(report.found());
    }

    #[test]
    fn stale_hierarchy_with_fresh_landmarks_degrades_to_v4_only() {
        let grid = Grid::new(8, CostModel::TWENTY_PERCENT, 3).unwrap();
        let hierarchy = Hierarchy::build(grid.graph(), HierarchyConfig::paper()).unwrap();
        let mut changed = grid.graph().clone();
        changed
            .set_edge_cost(grid.node_at(3, 3), grid.node_at(3, 4), 5.0)
            .unwrap();
        // Landmarks built on the *changed* graph stay current; only the
        // hierarchy is stale, so the ladder stops at v4.
        let tables = atis_preprocess::LandmarkTables::build(
            &changed,
            atis_preprocess::PreprocessConfig::grid_default(),
        )
        .unwrap();
        let p = RoutePlanner::new(&changed)
            .unwrap()
            .with_hierarchy(hierarchy)
            .with_landmarks(tables)
            .with_algorithm(Algorithm::AStar(AStarVersion::V5));
        let (s, d) = grid.query_pair(QueryKind::SemiDiagonal);
        let report = p.plan_resilient(s, d).unwrap();
        assert!(report.degraded);
        assert_eq!(report.algorithm, "A* (version 4)");
        assert_eq!(report.attempts.len(), 1);
        assert!(report.found());
    }

    #[test]
    fn plan_resilient_still_rejects_unknown_endpoints() {
        let (_, p) = planner();
        assert!(matches!(
            p.plan_resilient(NodeId(40_000), NodeId(0)),
            Err(AlgorithmError::UnknownSource(_))
        ));
        assert!(matches!(
            p.plan_resilient(NodeId(0), NodeId(40_000)),
            Err(AlgorithmError::UnknownDestination(_))
        ));
    }

    #[test]
    fn cost_based_join_policy_reduces_cost() {
        let (grid, _) = planner();
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let forced = RoutePlanner::new(grid.graph()).unwrap().plan(s, d).unwrap();
        let optimized = RoutePlanner::new(grid.graph())
            .unwrap()
            .with_join_policy(JoinPolicy::CostBased)
            .plan(s, d)
            .unwrap();
        assert!(optimized.cost_units < forced.cost_units);
        assert_eq!(optimized.iterations, forced.iterations);
    }
}
