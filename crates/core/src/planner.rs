//! Route computation: the planner facade over the database-resident
//! algorithms.

use atis_algorithms::{AStarVersion, Algorithm, AlgorithmError, Database, RunTrace};
use atis_graph::{Graph, NodeId, Path};
use atis_storage::{CostParams, JoinPolicy};
use std::time::Duration;

/// The result of planning one route.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// Which algorithm produced it.
    pub algorithm: String,
    /// The route, or `None` if the destination is unreachable.
    pub route: Option<Path>,
    /// Iterations the run took (the paper's reported metric).
    pub iterations: u64,
    /// Simulated I/O cost in Table 4A units (the paper's execution time).
    pub cost_units: f64,
    /// Wall-clock time of the run on this machine.
    pub wall: Duration,
    /// The full trace, for detailed inspection.
    pub trace: RunTrace,
}

impl PlanReport {
    fn from_trace(trace: RunTrace, params: &CostParams) -> Self {
        PlanReport {
            algorithm: trace.algorithm.clone(),
            route: trace.path.clone(),
            iterations: trace.iterations,
            cost_units: trace.cost_units(params),
            wall: trace.wall,
            trace,
        }
    }

    /// Whether a route was found.
    pub fn found(&self) -> bool {
        self.route.is_some()
    }
}

/// The ATIS route planner: a road network loaded into the storage engine
/// plus a default algorithm choice.
///
/// ```
/// use atis_core::RoutePlanner;
/// use atis_graph::{CostModel, Grid, QueryKind};
///
/// let grid = Grid::new(8, CostModel::TWENTY_PERCENT, 1).unwrap();
/// let planner = RoutePlanner::new(grid.graph()).unwrap();
/// let (s, d) = grid.query_pair(QueryKind::Diagonal);
/// let report = planner.plan(s, d).unwrap();
/// assert!(report.found());
/// assert!(report.cost_units > 0.0);
/// ```
///
/// The default is A\* (version 3): the paper's conclusion is that
/// estimator-based single-pair search wins "if the path\[source,
/// destination\] is much smaller than the diameter of the graph" — the
/// common case for a traveller information system — at the cost of
/// guaranteed optimality when the Manhattan estimator overestimates
/// (Section 6 explicitly embraces that trade-off for ATIS).
#[derive(Debug, Clone)]
pub struct RoutePlanner {
    db: Database,
    default_algorithm: Algorithm,
}

impl RoutePlanner {
    /// Loads a road network with default settings.
    ///
    /// # Errors
    /// Fails if the graph exceeds the storage encodings (> 65 535 nodes).
    pub fn new(graph: &Graph) -> Result<Self, AlgorithmError> {
        Ok(RoutePlanner {
            db: Database::open(graph)?,
            default_algorithm: Algorithm::AStar(AStarVersion::V3),
        })
    }

    /// Overrides the default algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.default_algorithm = algorithm;
        self
    }

    /// Overrides the join policy (e.g. `JoinPolicy::CostBased` to let the
    /// optimizer replace the paper's forced nested-loop joins).
    pub fn with_join_policy(mut self, policy: JoinPolicy) -> Self {
        self.db = self.db.with_join_policy(policy);
        self
    }

    /// The default algorithm.
    pub fn default_algorithm(&self) -> Algorithm {
        self.default_algorithm
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The resident road network.
    pub fn graph(&self) -> &Graph {
        self.db.graph()
    }

    /// Plans a route with the default algorithm.
    ///
    /// # Errors
    /// Fails for unknown endpoints.
    pub fn plan(&self, s: NodeId, d: NodeId) -> Result<PlanReport, AlgorithmError> {
        self.plan_with(self.default_algorithm, s, d)
    }

    /// Plans a route with an explicit algorithm.
    ///
    /// # Errors
    /// Fails for unknown endpoints.
    pub fn plan_with(
        &self,
        algorithm: Algorithm,
        s: NodeId,
        d: NodeId,
    ) -> Result<PlanReport, AlgorithmError> {
        let trace = self.db.run(algorithm, s, d)?;
        Ok(PlanReport::from_trace(trace, self.db.params()))
    }

    /// Runs several algorithms on the same query — the paper's comparative
    /// methodology — returning one report per algorithm.
    ///
    /// # Errors
    /// Fails for unknown endpoints.
    pub fn compare(
        &self,
        algorithms: &[Algorithm],
        s: NodeId,
        d: NodeId,
    ) -> Result<Vec<PlanReport>, AlgorithmError> {
        algorithms.iter().map(|&a| self.plan_with(a, s, d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_graph::{CostModel, Grid, QueryKind};

    fn planner() -> (Grid, RoutePlanner) {
        let grid = Grid::new(8, CostModel::TWENTY_PERCENT, 3).unwrap();
        let p = RoutePlanner::new(grid.graph()).unwrap();
        (grid, p)
    }

    #[test]
    fn default_algorithm_is_astar_v3() {
        let (_, p) = planner();
        assert_eq!(p.default_algorithm(), Algorithm::AStar(AStarVersion::V3));
    }

    #[test]
    fn plan_returns_a_valid_route() {
        let (grid, p) = planner();
        let (s, d) = grid.query_pair(QueryKind::SemiDiagonal);
        let report = p.plan(s, d).unwrap();
        assert!(report.found());
        let route = report.route.unwrap();
        assert_eq!(route.source(), s);
        assert_eq!(route.destination(), d);
        route.validate(grid.graph()).unwrap();
        assert!(report.cost_units > 0.0);
    }

    #[test]
    fn compare_runs_all_algorithms() {
        let (grid, p) = planner();
        let (s, d) = grid.query_pair(QueryKind::Horizontal);
        let reports = p.compare(&Algorithm::TABLE, s, d).unwrap();
        assert_eq!(reports.len(), 3);
        // All algorithms find a route of the same (optimal) cost on an
        // admissible configuration.
        let costs: Vec<f64> = reports.iter().map(|r| r.route.as_ref().unwrap().cost).collect();
        for c in &costs[1..] {
            assert!((c - costs[0]).abs() < 1e-3);
        }
        // A* beats Dijkstra on the short query, in simulated cost.
        let astar = reports.iter().find(|r| r.algorithm.contains("version 3")).unwrap();
        let dijkstra = reports.iter().find(|r| r.algorithm == "Dijkstra").unwrap();
        assert!(astar.cost_units < dijkstra.cost_units);
    }

    #[test]
    fn algorithm_override_applies() {
        let (grid, p) = planner();
        let p = p.with_algorithm(Algorithm::Dijkstra);
        let (s, d) = grid.query_pair(QueryKind::Horizontal);
        let report = p.plan(s, d).unwrap();
        assert_eq!(report.algorithm, "Dijkstra");
    }

    #[test]
    fn cost_based_join_policy_reduces_cost() {
        let (grid, _) = planner();
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let forced = RoutePlanner::new(grid.graph()).unwrap().plan(s, d).unwrap();
        let optimized = RoutePlanner::new(grid.graph())
            .unwrap()
            .with_join_policy(JoinPolicy::CostBased)
            .plan(s, d)
            .unwrap();
        assert!(optimized.cost_units < forced.cost_units);
        assert_eq!(optimized.iterations, forced.iterations);
    }
}
