//! The invalidation-aware route cache.
//!
//! Keyed by `(from, to, epoch)`: a lookup only hits when the cached entry
//! was computed at — or proven unaffected up to — the querying epoch, so
//! a cache hit is *bit-identical* to rerunning the algorithm against the
//! same snapshot.
//!
//! ## Invalidation rule
//!
//! A traffic update changes directed edge `(u, v)` to `new_cost` and
//! installs epoch `n + 1`. Each cached entry is then either **dropped**
//! or **promoted** to the new epoch:
//!
//! * dropped if its path uses the hop `(u, v)` — the answer's cost is
//!   definitely stale; or
//! * dropped if `new_cost < path.cost` — with non-negative edge costs any
//!   route through `(u, v)` costs at least `new_cost`, so only then could
//!   the update have created a better route than the cached one; or
//! * promoted otherwise: the update provably cannot change this answer,
//!   and the entry is re-keyed to epoch `n + 1` without recomputation.
//!
//! Entries whose epoch is *older* than the epoch the sweep expects (a
//! racing insert that landed after the sweep for its epoch already ran)
//! are dropped as stale — promotion is only sound for entries that have
//! seen every update so far.
//!
//! Unreachable results are not cached: cost updates cannot change
//! reachability, but a `None` path has no edges for the rule to inspect,
//! and misses on unreachable pairs are cheap to recompute.
//!
//! ## Eviction
//!
//! The cache is LRU-bounded: when full, an insert evicts the
//! least-recently-used entry (ties broken by smaller key, so eviction is
//! deterministic). Capacity 0 disables the cache entirely.
//!
//! ## The stale tier
//!
//! Entries an update sweep invalidates are not discarded: they retire
//! into a separate, equally bounded *stale* map, keyed `(from, to)` and
//! still carrying the epoch they were computed at. The live cache never
//! serves them — [`RouteCache::lookup`] is exact-epoch only — but when
//! the degrade ladder has nothing better (storage breaker open, every
//! rung failed), [`RouteCache::lookup_stale`] can serve one as an
//! explicitly tagged `STALE k` answer: a road that existed `k` epochs
//! ago beats no road at all for a traveller already driving. The stale
//! tier is invisible to [`RouteCache::len`] / [`RouteCache::is_empty`]
//! and to the hit/miss counters; it has its own `stale_hits` /
//! `retirements` statistics.
//!
//! ## Sharded validation (stamps)
//!
//! The epoch-keyed rule above treats every update as global: the sweep
//! rewrites (or drops) *every* entry, and — because
//! [`RouteCache::apply_update`] cannot see whether the cost went up or
//! down — it must drop any entry a cheaper new cost *could* beat, which
//! on long-route networks is nearly all of them. The sharded entry
//! points fix both:
//!
//! * [`RouteCache::insert_stamped`] stores, alongside the answer, one
//!   `(shard, version)` stamp per shard the path crosses (from the
//!   [`crate::shard::EpochVector`] of the snapshot it was computed
//!   against).
//! * [`RouteCache::lookup_vec`] hits iff every stamp still matches the
//!   querying snapshot's vector: updates in shards the path never enters
//!   provably cannot have touched it, so the entry keeps hitting across
//!   those installs *without ever being rewritten*.
//! * [`RouteCache::apply_shard_update`] receives the old cost, so it can
//!   apply the monotonicity argument: a pure cost **increase** can only
//!   raise route costs, so an entry whose path avoids the edge remains
//!   optimal — only entries whose stamp set intersects the touched
//!   shards are even examined (the path cannot use the edge otherwise),
//!   and only those actually on the edge drop. A cost **decrease** keeps
//!   the conservative global rule (drop if on-path or the new cost
//!   undercuts the cached total) — there is no sound shard-local bound
//!   for "a better route may now exist elsewhere".
//!
//! The two families share the map, capacity, LRU clock, stale tier, and
//! statistics, but a service instance uses one or the other: exact-epoch
//! lookups never see stamped entries and vice versa.

use crate::shard::EpochVector;
use crate::sync::{self, Mutex, MutexGuard};
use atis_graph::{NodeId, Path};
use atis_obs::SharedRegistry;
use std::collections::HashMap;

/// A cached answer: the route plus the run statistics it was computed
/// with (reported back to clients on a hit).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedRoute {
    /// The computed route.
    pub path: Path,
    /// Epoch the answer is valid at (advanced by promotions).
    pub epoch: u64,
    /// Iterations of the original run.
    pub iterations: u64,
    /// Simulated I/O cost of the original run (Table 4A units).
    pub cost_units: f64,
}

/// Monotonic cache statistics (also mirrored into the metrics registry
/// as `cache_hits_total` / `cache_misses_total` /
/// `cache_invalidations_total` when one is attached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (absent key or epoch mismatch).
    pub misses: u64,
    /// Entries dropped by update sweeps (rule-invalidated or stale).
    pub invalidations: u64,
    /// Entries accepted by `insert`.
    pub insertions: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Entries carried across an epoch bump without recomputation.
    pub promotions: u64,
    /// Invalidated entries retired into the stale tier.
    pub retirements: u64,
    /// Degraded lookups answered from the stale tier.
    pub stale_hits: u64,
}

#[derive(Debug)]
struct Entry {
    route: CachedRoute,
    /// `(shard, version)` per shard the path crosses, sorted by shard —
    /// empty for entries inserted through the epoch-keyed API.
    stamps: Vec<(u32, u64)>,
    last_used: u64,
}

#[derive(Debug)]
struct Inner {
    map: HashMap<(u32, u32), Entry>,
    /// Retired (invalidated) routes, still at the epoch they were
    /// computed at — the stale-serve tier. Bounded by the same capacity
    /// as the live map; never counted by `len` / `is_empty`.
    stale: HashMap<(u32, u32), CachedRoute>,
    tick: u64,
    /// Highest epoch an update sweep has installed; inserts below it are
    /// stale and refused.
    latest_epoch: u64,
    /// Highest per-shard version an [`RouteCache::apply_shard_update`]
    /// sweep has installed, indexed by shard; stamped inserts below any
    /// of them are stale and refused.
    latest_versions: Vec<u64>,
    stats: CacheStats,
}

impl Inner {
    fn latest_version(&self, shard: u32) -> u64 {
        self.latest_versions
            .get(shard as usize)
            .copied()
            .unwrap_or(0)
    }
}

/// A bounded, invalidation-aware LRU cache of computed routes.
#[derive(Debug)]
pub struct RouteCache {
    capacity: usize,
    inner: Mutex<Inner>,
    metrics: Option<SharedRegistry>,
}

impl RouteCache {
    /// A cache holding at most `capacity` routes (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        RouteCache {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                stale: HashMap::new(),
                tick: 0,
                latest_epoch: 0,
                latest_versions: Vec::new(),
                stats: CacheStats::default(),
            }),
            metrics: None,
        }
    }

    /// Mirrors the hit/miss/invalidation counters into `metrics`
    /// (`cache_hits_total`, `cache_misses_total`,
    /// `cache_invalidations_total`).
    pub fn with_metrics(mut self, metrics: SharedRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Designated acquirer for the cache table (rank 3 in the declared
    /// lock order — see `sync.rs` and `atis-analyze rules`).
    fn lock_entries(&self) -> MutexGuard<'_, Inner> {
        sync::lock(&self.inner)
    }

    fn bump(&self, name: &str, n: u64) {
        if n > 0 {
            if let Some(m) = &self.metrics {
                m.add(name, n);
            }
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.lock_entries().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the monotonic statistics.
    pub fn stats(&self) -> CacheStats {
        self.lock_entries().stats
    }

    /// Looks up `(from, to)` at `epoch`. An entry at a different epoch is
    /// a miss (it has not been proven valid for this snapshot).
    pub fn lookup(&self, from: NodeId, to: NodeId, epoch: u64) -> Option<CachedRoute> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.lock_entries();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&(from.0, to.0)) {
            Some(entry) if entry.stamps.is_empty() && entry.route.epoch == epoch => {
                entry.last_used = tick;
                let route = entry.route.clone();
                inner.stats.hits += 1;
                drop(inner);
                self.bump("cache_hits_total", 1);
                Some(route)
            }
            _ => {
                inner.stats.misses += 1;
                drop(inner);
                self.bump("cache_misses_total", 1);
                None
            }
        }
    }

    /// Inserts a computed route, evicting the LRU entry when full. The
    /// insert is refused (silently) when the cache is disabled, when the
    /// route's epoch predates the latest update sweep (a racing worker
    /// finishing against an old snapshot), or when a newer entry for the
    /// same key is already present.
    pub fn insert(&self, from: NodeId, to: NodeId, route: CachedRoute) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock_entries();
        if route.epoch < inner.latest_epoch {
            return;
        }
        if let Some(existing) = inner.map.get(&(from.0, to.0)) {
            if existing.route.epoch > route.epoch {
                return;
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&(from.0, to.0)) {
            // Deterministic LRU eviction: oldest tick, then smallest key.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(key, entry)| (entry.last_used, **key))
                .map(|(key, _)| *key);
            if let Some(victim) = victim {
                inner.map.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.map.insert(
            (from.0, to.0),
            Entry {
                route,
                stamps: Vec::new(),
                last_used: tick,
            },
        );
        inner.stats.insertions += 1;
    }

    /// Looks up `(from, to)` against a sharded snapshot's epoch vector:
    /// a hit requires every shard the cached path crosses to still be at
    /// the version the entry was last validated at. The returned route
    /// keeps the install it was computed (or last promoted) at — older
    /// than the current install when the intervening updates provably
    /// missed the path's shards.
    pub fn lookup_vec(
        &self,
        from: NodeId,
        to: NodeId,
        epochs: &EpochVector,
    ) -> Option<CachedRoute> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.lock_entries();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&(from.0, to.0)) {
            Some(entry)
                if !entry.stamps.is_empty()
                    && entry
                        .stamps
                        .iter()
                        .all(|&(shard, version)| epochs.version(shard) == version) =>
            {
                entry.last_used = tick;
                let route = entry.route.clone();
                inner.stats.hits += 1;
                drop(inner);
                self.bump("cache_hits_total", 1);
                Some(route)
            }
            _ => {
                inner.stats.misses += 1;
                drop(inner);
                self.bump("cache_misses_total", 1);
                None
            }
        }
    }

    /// Inserts a computed route stamped with the `(shard, version)` pairs
    /// of the snapshot it was computed against (`route.epoch` carries the
    /// snapshot's install counter). Refused when the cache is disabled,
    /// when any stamp predates a version an update sweep has already
    /// installed for that shard (a racing worker finishing against an old
    /// snapshot), or when a newer entry for the key is present.
    pub fn insert_stamped(
        &self,
        from: NodeId,
        to: NodeId,
        route: CachedRoute,
        stamps: Vec<(u32, u64)>,
    ) {
        if self.capacity == 0 || stamps.is_empty() {
            return;
        }
        let mut inner = self.lock_entries();
        if stamps
            .iter()
            .any(|&(shard, version)| version < inner.latest_version(shard))
        {
            return;
        }
        if let Some(existing) = inner.map.get(&(from.0, to.0)) {
            if existing.route.epoch > route.epoch {
                return;
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&(from.0, to.0)) {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(key, entry)| (entry.last_used, **key))
                .map(|(key, _)| *key);
            if let Some(victim) = victim {
                inner.map.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.map.insert(
            (from.0, to.0),
            Entry {
                route,
                stamps,
                last_used: tick,
            },
        );
        inner.stats.insertions += 1;
    }

    /// Sweeps the cache for a sharded traffic update: directed edge
    /// `(u, v)` went from `old_cost` to `new_cost`, bumping `shards` and
    /// installing the post-update vector `epochs`. Returns
    /// `(invalidated, promoted)`.
    ///
    /// A pure cost **increase** examines only entries whose stamp set
    /// intersects the touched shards (the path cannot use the edge
    /// otherwise): on-path entries drop, the rest re-stamp to the new
    /// versions; entries in untouched shards are not visited at all. A
    /// **decrease** examines every entry with the conservative global
    /// rule (drop if on-path or `new_cost` undercuts the cached total).
    pub fn apply_shard_update(
        &self,
        u: NodeId,
        v: NodeId,
        old_cost: f64,
        new_cost: f64,
        shards: &[u32],
        epochs: &EpochVector,
    ) -> (u64, u64) {
        if self.capacity == 0 {
            return (0, 0);
        }
        let increase = new_cost >= old_cost;
        let install = epochs.install();
        let mut inner = self.lock_entries();
        let mut invalidated = 0u64;
        let mut promoted = 0u64;
        let swept = std::mem::take(&mut inner.map);
        let mut retired: Vec<((u32, u32), CachedRoute)> = Vec::new();
        for (key, mut entry) in swept {
            let intersects = entry
                .stamps
                .iter()
                .any(|&(shard, _)| shards.contains(&shard));
            if increase && !intersects {
                // The path never enters a touched shard: the update
                // provably missed it. Neither dropped nor rewritten.
                inner.map.insert(key, entry);
                continue;
            }
            let on_path = entry.route.path.hops().any(|(a, b)| a == u && b == v);
            let could_beat = !increase && new_cost < entry.route.path.cost;
            if on_path || could_beat {
                invalidated += 1;
                retired.push((key, entry.route));
            } else {
                if intersects {
                    for stamp in entry.stamps.iter_mut() {
                        if shards.contains(&stamp.0) {
                            stamp.1 = epochs.version(stamp.0);
                        }
                    }
                    entry.route.epoch = install;
                    promoted += 1;
                }
                inner.map.insert(key, entry);
            }
        }
        for (key, route) in retired {
            self.retire(&mut inner, key, route);
        }
        for &shard in shards {
            let idx = shard as usize;
            if inner.latest_versions.len() <= idx {
                inner.latest_versions.resize(idx + 1, 0);
            }
            let version = epochs.version(shard);
            if let Some(slot) = inner.latest_versions.get_mut(idx) {
                if *slot < version {
                    *slot = version;
                }
            }
        }
        inner.stats.invalidations += invalidated;
        inner.stats.promotions += promoted;
        drop(inner);
        self.bump("cache_invalidations_total", invalidated);
        (invalidated, promoted)
    }

    /// Sweeps the cache for a traffic update that changed directed edge
    /// `(u, v)` to `new_cost` and installed `new_epoch`. Returns
    /// `(invalidated, promoted)` entry counts.
    pub fn apply_update(&self, u: NodeId, v: NodeId, new_cost: f64, new_epoch: u64) -> (u64, u64) {
        if self.capacity == 0 {
            return (0, 0);
        }
        let mut inner = self.lock_entries();
        let swept_from = new_epoch.saturating_sub(1);
        let mut invalidated = 0u64;
        let mut promoted = 0u64;
        let swept = std::mem::take(&mut inner.map);
        let mut retired: Vec<((u32, u32), CachedRoute)> = Vec::new();
        for (key, mut entry) in swept {
            if entry.route.epoch >= new_epoch {
                inner.map.insert(key, entry); // computed against the new costs
                continue;
            }
            let stale = entry.route.epoch < swept_from;
            let on_path = entry.route.path.hops().any(|(a, b)| a == u && b == v);
            let could_beat = new_cost < entry.route.path.cost;
            if stale || on_path || could_beat {
                invalidated += 1;
                retired.push((key, entry.route));
            } else {
                entry.route.epoch = new_epoch;
                promoted += 1;
                inner.map.insert(key, entry);
            }
        }
        for (key, route) in retired {
            self.retire(&mut inner, key, route);
        }
        inner.latest_epoch = inner.latest_epoch.max(new_epoch);
        inner.stats.invalidations += invalidated;
        inner.stats.promotions += promoted;
        drop(inner);
        self.bump("cache_invalidations_total", invalidated);
        (invalidated, promoted)
    }

    /// Moves an invalidated route into the stale tier, keeping the
    /// newest retiree per key and evicting the oldest-epoch entry (ties
    /// broken by smaller key) when the tier is full.
    fn retire(&self, inner: &mut Inner, key: (u32, u32), route: CachedRoute) {
        if let Some(existing) = inner.stale.get(&key) {
            if existing.epoch > route.epoch {
                return;
            }
        }
        if inner.stale.len() >= self.capacity && !inner.stale.contains_key(&key) {
            let victim = inner
                .stale
                .iter()
                .min_by_key(|(k, r)| (r.epoch, **k))
                .map(|(k, _)| *k);
            if let Some(victim) = victim {
                inner.stale.remove(&victim);
            }
        }
        inner.stale.insert(key, route);
        inner.stats.retirements += 1;
    }

    /// Degraded lookup against the stale tier: returns a retired route
    /// for `(from, to)` together with its age in epochs, provided the
    /// age does not exceed `max_age`. The live hit/miss counters are
    /// untouched; a returned route is counted as a `stale_hit`.
    ///
    /// The caller must surface the age to the client (the `STALE k` wire
    /// tag) — a stale answer is explicitly degraded service, never
    /// passed off as current.
    pub fn lookup_stale(
        &self,
        from: NodeId,
        to: NodeId,
        current_epoch: u64,
        max_age: u64,
    ) -> Option<(CachedRoute, u64)> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.lock_entries();
        let route = inner.stale.get(&(from.0, to.0))?.clone();
        let age = current_epoch.saturating_sub(route.epoch).max(1);
        if age > max_age {
            return None;
        }
        inner.stats.stale_hits += 1;
        drop(inner);
        self.bump("cache_stale_hits_total", 1);
        Some((route, age))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(nodes: &[u32], cost: f64, epoch: u64) -> CachedRoute {
        CachedRoute {
            path: Path {
                nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
                cost,
            },
            epoch,
            iterations: 3,
            cost_units: 10.0,
        }
    }

    #[test]
    fn hit_then_epoch_mismatch_is_a_miss() {
        let cache = RouteCache::new(8);
        cache.insert(NodeId(0), NodeId(3), route(&[0, 1, 3], 2.0, 0));
        assert!(cache.lookup(NodeId(0), NodeId(3), 0).is_some());
        assert!(cache.lookup(NodeId(0), NodeId(3), 1).is_none());
        assert!(cache.lookup(NodeId(3), NodeId(0), 0).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }

    #[test]
    fn update_on_path_invalidates_and_off_path_promotes() {
        let cache = RouteCache::new(8);
        cache.insert(NodeId(0), NodeId(3), route(&[0, 1, 3], 2.0, 0));
        cache.insert(NodeId(4), NodeId(5), route(&[4, 5], 7.0, 0));
        // Edge (0,1) is on the first path; the new cost (9.0) is not
        // cheaper than the second path (7.0), so the second survives.
        let (invalidated, promoted) = cache.apply_update(NodeId(0), NodeId(1), 9.0, 1);
        assert_eq!((invalidated, promoted), (1, 1));
        assert!(cache.lookup(NodeId(0), NodeId(3), 1).is_none());
        assert_eq!(
            cache.lookup(NodeId(4), NodeId(5), 1).unwrap().path.cost,
            7.0
        );
    }

    #[test]
    fn cheaper_than_cached_cost_invalidates_off_path_entries() {
        let cache = RouteCache::new(8);
        cache.insert(NodeId(4), NodeId(5), route(&[4, 5], 7.0, 0));
        // Edge (8,9) is not on the path, but at cost 1.0 a route through
        // it could now beat the cached 7.0 — drop.
        let (invalidated, promoted) = cache.apply_update(NodeId(8), NodeId(9), 1.0, 1);
        assert_eq!((invalidated, promoted), (1, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn direction_matters_for_the_on_path_test() {
        let cache = RouteCache::new(8);
        cache.insert(NodeId(0), NodeId(3), route(&[0, 1, 3], 2.0, 0));
        // (1,0) is the reverse hop — not on the directed path; cost 50 is
        // above the cached total, so the entry survives.
        let (invalidated, promoted) = cache.apply_update(NodeId(1), NodeId(0), 50.0, 1);
        assert_eq!((invalidated, promoted), (0, 1));
        assert!(cache.lookup(NodeId(0), NodeId(3), 1).is_some());
    }

    #[test]
    fn lru_eviction_is_deterministic() {
        let cache = RouteCache::new(2);
        cache.insert(NodeId(0), NodeId(1), route(&[0, 1], 1.0, 0));
        cache.insert(NodeId(0), NodeId(2), route(&[0, 2], 1.0, 0));
        // Touch (0,1) so (0,2) is the LRU victim.
        assert!(cache.lookup(NodeId(0), NodeId(1), 0).is_some());
        cache.insert(NodeId(0), NodeId(3), route(&[0, 3], 1.0, 0));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(NodeId(0), NodeId(2), 0).is_none());
        assert!(cache.lookup(NodeId(0), NodeId(1), 0).is_some());
        assert!(cache.lookup(NodeId(0), NodeId(3), 0).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn stale_inserts_and_stale_entries_are_refused() {
        let cache = RouteCache::new(8);
        cache.apply_update(NodeId(0), NodeId(1), 1.0, 3);
        // A worker that computed against epoch 1 finishes late: refused.
        cache.insert(NodeId(4), NodeId(5), route(&[4, 5], 7.0, 1));
        assert!(cache.is_empty());
        // An entry at the swept-from epoch is fine.
        cache.insert(NodeId(4), NodeId(5), route(&[4, 5], 7.0, 3));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let cache = RouteCache::new(0);
        cache.insert(NodeId(0), NodeId(1), route(&[0, 1], 1.0, 0));
        assert!(cache.lookup(NodeId(0), NodeId(1), 0).is_none());
        assert_eq!(cache.apply_update(NodeId(0), NodeId(1), 2.0, 1), (0, 0));
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn invalidated_entries_retire_into_the_stale_tier() {
        let cache = RouteCache::new(8);
        cache.insert(NodeId(0), NodeId(3), route(&[0, 1, 3], 2.0, 0));
        let (invalidated, _) = cache.apply_update(NodeId(0), NodeId(1), 9.0, 1);
        assert_eq!(invalidated, 1);
        assert!(cache.is_empty(), "the stale tier is not the live cache");
        assert!(cache.lookup(NodeId(0), NodeId(3), 1).is_none());
        let (stale, age) = cache
            .lookup_stale(NodeId(0), NodeId(3), 1, 8)
            .expect("the retired route is servable");
        assert_eq!(stale.epoch, 0);
        assert_eq!(age, 1);
        assert_eq!(stale.path.cost, 2.0);
        let stats = cache.stats();
        assert_eq!((stats.retirements, stats.stale_hits), (1, 1));
    }

    #[test]
    fn stale_lookups_respect_the_age_bound() {
        let cache = RouteCache::new(8);
        cache.insert(NodeId(0), NodeId(3), route(&[0, 1, 3], 2.0, 0));
        cache.apply_update(NodeId(0), NodeId(1), 9.0, 1);
        assert!(cache.lookup_stale(NodeId(0), NodeId(3), 10, 8).is_none());
        assert!(cache.lookup_stale(NodeId(0), NodeId(3), 8, 8).is_some());
        assert!(cache.lookup_stale(NodeId(9), NodeId(9), 1, 8).is_none());
    }

    #[test]
    fn stale_tier_keeps_the_newest_retiree_per_key_and_is_bounded() {
        let cache = RouteCache::new(2);
        // Retire (0,3) at epoch 0, then a fresher (0,3) at epoch 1.
        cache.insert(NodeId(0), NodeId(3), route(&[0, 1, 3], 2.0, 0));
        cache.apply_update(NodeId(0), NodeId(1), 9.0, 1);
        cache.insert(NodeId(0), NodeId(3), route(&[0, 2, 3], 3.0, 1));
        cache.apply_update(NodeId(0), NodeId(2), 9.0, 2);
        let (stale, age) = cache.lookup_stale(NodeId(0), NodeId(3), 2, 8).unwrap();
        assert_eq!((stale.epoch, age), (1, 1), "newest retiree wins");
        // Fill the tier past capacity: the oldest epoch is evicted.
        cache.insert(NodeId(4), NodeId(5), route(&[4, 5], 7.0, 2));
        cache.insert(NodeId(6), NodeId(7), route(&[6, 7], 8.0, 2));
        cache.apply_update(NodeId(0), NodeId(1), 0.5, 3); // undercuts both
        assert!(
            cache.lookup_stale(NodeId(0), NodeId(3), 3, 8).is_none(),
            "the epoch-1 retiree was the eviction victim"
        );
        assert!(cache.lookup_stale(NodeId(4), NodeId(5), 3, 8).is_some());
        assert!(cache.lookup_stale(NodeId(6), NodeId(7), 3, 8).is_some());
    }

    #[test]
    fn zero_capacity_disables_the_stale_tier_too() {
        let cache = RouteCache::new(0);
        cache.insert(NodeId(0), NodeId(1), route(&[0, 1], 1.0, 0));
        cache.apply_update(NodeId(0), NodeId(1), 2.0, 1);
        assert!(cache.lookup_stale(NodeId(0), NodeId(1), 1, 8).is_none());
    }

    fn vector(install: u64, versions: &[u64]) -> EpochVector {
        EpochVector::with_versions(install, versions.to_vec())
    }

    #[test]
    fn stamped_entries_hit_across_updates_in_other_shards() {
        let cache = RouteCache::new(8);
        // Path crosses shards 0 and 1; computed at install 0.
        cache.insert_stamped(
            NodeId(0),
            NodeId(3),
            route(&[0, 1, 3], 2.0, 0),
            vec![(0, 0), (1, 0)],
        );
        // An increase in shard 2: install 1, version vector [0, 0, 1].
        let v1 = vector(1, &[0, 0, 1]);
        let (invalidated, promoted) =
            cache.apply_shard_update(NodeId(9), NodeId(10), 5.0, 40.0, &[2], &v1);
        assert_eq!((invalidated, promoted), (0, 0), "entry was never visited");
        let hit = cache.lookup_vec(NodeId(0), NodeId(3), &v1).unwrap();
        assert_eq!(hit.epoch, 0, "kept its compute-time install");
        assert_eq!(hit.path.cost, 2.0);
    }

    #[test]
    fn increase_in_an_intersecting_shard_restamps_off_path_entries() {
        let cache = RouteCache::new(8);
        cache.insert_stamped(
            NodeId(0),
            NodeId(3),
            route(&[0, 1, 3], 2.0, 0),
            vec![(0, 0)],
        );
        cache.insert_stamped(NodeId(4), NodeId(5), route(&[4, 5], 7.0, 0), vec![(0, 0)]);
        // (0,1) jams from 1.0 to 40.0 in shard 0. The first path uses the
        // hop — dropped. The second is off-path: under a pure increase it
        // stays optimal even though 40.0 > its 7.0 total (the legacy rule
        // would have dropped it as `could_beat` if this were a decrease).
        let v1 = vector(1, &[1]);
        let (invalidated, promoted) =
            cache.apply_shard_update(NodeId(0), NodeId(1), 1.0, 40.0, &[0], &v1);
        assert_eq!((invalidated, promoted), (1, 1));
        assert!(cache.lookup_vec(NodeId(0), NodeId(3), &v1).is_none());
        let hit = cache.lookup_vec(NodeId(4), NodeId(5), &v1).unwrap();
        assert_eq!(hit.epoch, 1, "promotion advances the install");
    }

    #[test]
    fn decrease_sweeps_every_shard_conservatively() {
        let cache = RouteCache::new(8);
        cache.insert_stamped(NodeId(4), NodeId(5), route(&[4, 5], 7.0, 0), vec![(1, 0)]);
        // A decrease in shard 0 to 1.0 could create a better route
        // anywhere — the shard-1 entry must drop (could_beat).
        let v1 = vector(1, &[1, 0]);
        let (invalidated, promoted) =
            cache.apply_shard_update(NodeId(0), NodeId(1), 5.0, 1.0, &[0], &v1);
        assert_eq!((invalidated, promoted), (1, 0));
        assert!(cache.lookup_vec(NodeId(4), NodeId(5), &v1).is_none());
        // …and it retired into the stale tier like any invalidation.
        assert!(cache.lookup_stale(NodeId(4), NodeId(5), 1, 8).is_some());
    }

    #[test]
    fn stale_stamped_inserts_are_refused() {
        let cache = RouteCache::new(8);
        // A sweep installs shard 0 at version 2.
        let v = vector(1, &[2]);
        cache.apply_shard_update(NodeId(0), NodeId(1), 1.0, 9.0, &[0], &v);
        // A worker that computed against shard 0 @ version 1 finishes
        // late: refused.
        cache.insert_stamped(NodeId(4), NodeId(5), route(&[4, 5], 7.0, 0), vec![(0, 1)]);
        assert!(cache.is_empty());
        // At the swept version it is accepted.
        cache.insert_stamped(NodeId(4), NodeId(5), route(&[4, 5], 7.0, 1), vec![(0, 2)]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn vector_lookup_misses_when_a_crossed_shard_moved() {
        let cache = RouteCache::new(8);
        cache.insert_stamped(
            NodeId(0),
            NodeId(3),
            route(&[0, 1, 3], 2.0, 0),
            vec![(0, 0), (1, 0)],
        );
        assert!(cache
            .lookup_vec(NodeId(0), NodeId(3), &vector(0, &[0, 0]))
            .is_some());
        assert!(
            cache
                .lookup_vec(NodeId(0), NodeId(3), &vector(1, &[0, 1]))
                .is_none(),
            "shard 1 moved under the path"
        );
        // Epoch-keyed lookups never see stamped entries.
        assert!(cache.lookup(NodeId(0), NodeId(3), 0).is_none());
    }

    #[test]
    fn metrics_mirror_the_counters() {
        let registry = atis_obs::MetricsRegistry::shared();
        let cache = RouteCache::new(8).with_metrics(registry.clone());
        cache.insert(NodeId(0), NodeId(3), route(&[0, 1, 3], 2.0, 0));
        cache.lookup(NodeId(0), NodeId(3), 0);
        cache.lookup(NodeId(9), NodeId(9), 0);
        cache.apply_update(NodeId(0), NodeId(1), 9.0, 1);
        assert_eq!(registry.counter("cache_hits_total"), 1);
        assert_eq!(registry.counter("cache_misses_total"), 1);
        assert_eq!(registry.counter("cache_invalidations_total"), 1);
    }
}
