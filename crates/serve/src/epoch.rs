//! Epoch snapshots: concurrent reads, serialized copy-on-write updates.
//!
//! The paper's serving scenario has many in-vehicle clients reading one
//! central map while live traffic updates trickle in. The seed route
//! server funnelled both through a single `Mutex<Database>`, so one slow
//! A\* run blocked the fleet *and* an `UPDATE` could land between two
//! storage reads of a running query, mixing pre- and post-update edge
//! costs in a single answer.
//!
//! [`EpochDb`] fixes both with the classic snapshot scheme:
//!
//! * The current database lives behind an `Arc`. Readers grab
//!   `(epoch, Arc<Database>)` in one cheap lock acquisition and then run
//!   entirely against that immutable snapshot — queries at the same epoch
//!   run in parallel, and no later write can reach them.
//! * A writer clones the current snapshot, applies the cost update to the
//!   clone, and installs it as epoch `n + 1`. Writers are serialized by
//!   the same lock; readers never wait on a running query, only on the
//!   (small) clone-and-swap window.
//!
//! Every answer therefore has a well-defined epoch, which is what makes
//! the route cache's `(from, to, epoch)` key and the stress tests'
//! "bit-identical to the single-threaded oracle at the same epoch"
//! criterion meaningful.

use crate::sync::{self, Arc, Mutex, MutexGuard};
use atis_algorithms::{AlgorithmError, Database};
use atis_graph::{Graph, NodeId};
use atis_storage::StorageProfile;

/// An immutable view of the database at one epoch. Cloning is cheap
/// (`Arc` bump); the underlying [`Database`] is shared, never mutated.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The epoch this snapshot belongs to (0 = the initial load).
    pub epoch: u64,
    /// The database frozen at that epoch.
    pub db: Arc<Database>,
}

/// How an update maintained the snapshot's landmark (ALT) tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandmarkRefresh {
    /// The database carries no landmark tables (or the update touched no
    /// edge), so there was nothing to maintain.
    None,
    /// Cost increase: the old tables stay admissible (old bounds
    /// under-estimate distances that only grew), so they were re-stamped
    /// for the new epoch without recomputation — degraded but sound.
    Patched,
    /// Cost decrease: stale bounds could overestimate, so the tables were
    /// rebuilt from scratch (2·k SSSP sweeps) before the epoch installed.
    Rebuilt,
    /// A required rebuild failed: the stale tables were left in place
    /// (marked not-current, so v4 fails typed and the degrade ladder
    /// serves v3 instead of wrong answers). The serving layer counts
    /// this against the landmark circuit breaker.
    RebuildFailed,
}

/// How an update maintained the snapshot's contraction hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierarchyRefresh {
    /// The database carries no hierarchy (or the update touched no
    /// edge), so there was nothing to maintain.
    None,
    /// Cost increase: the overlay topology stays valid and a
    /// customization pass re-priced every shortcut for the new metric —
    /// exact but degraded (witness dormancy cleared, so v5 expands
    /// more arcs until the next re-contraction).
    Customized,
    /// Cost decrease: witness dormancy computed at the old metric could
    /// hide the now-cheaper shortcuts, so the hierarchy was
    /// re-contracted from scratch before the epoch installed.
    Recontracted,
    /// A required re-contraction failed: the stale hierarchy was left
    /// in place (marked not-current, so v5 fails typed and the degrade
    /// ladder serves v4/v3 instead of stale-priced shortcuts). Counted
    /// against the hierarchy circuit breaker.
    RebuildFailed,
}

/// The result of installing one traffic update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochUpdate {
    /// The newly installed epoch.
    pub epoch: u64,
    /// Directed edge tuples the update touched.
    pub updated: usize,
    /// The edge's cost before the update (minimum over parallel edges).
    pub old_cost: f64,
    /// The edge's cost after the update.
    pub new_cost: f64,
    /// How the epoch's landmark tables were kept current.
    pub landmarks: LandmarkRefresh,
    /// How the epoch's contraction hierarchy was kept current.
    pub hierarchy: HierarchyRefresh,
}

/// Maintains a cloned snapshot's landmark (ALT) tables and contraction
/// hierarchy for an edge-cost change from `old_cost` to `new_cost`:
/// increases patch/customize (cheap, degraded-but-sound), decreases
/// rebuild/re-contract (a failure leaves the stale artifact in place,
/// marked not-current, so the degrade ladder serves a lower rung).
///
/// Shared by [`EpochDb`] (one global epoch) and
/// [`crate::shard::ShardedEpochDb`] (per-shard epoch vector): the
/// artifact contract is identical in both schemes — artifacts are
/// whole-graph, only the *versioning* of installs differs.
pub(crate) fn maintain_artifacts(
    mut next: Database,
    old_cost: f64,
    new_cost: f64,
) -> (Database, LandmarkRefresh, HierarchyRefresh) {
    let mut landmarks = LandmarkRefresh::None;
    let mut hierarchy = HierarchyRefresh::None;
    if let Some(overlay) = next.hierarchy().cloned() {
        if new_cost >= old_cost {
            // Congestion: the overlay topology is metric-independent,
            // so a customization pass re-prices every shortcut
            // exactly — no re-contraction needed.
            let customized = overlay.customized_for(next.graph());
            next = next.with_hierarchy(customized);
            hierarchy = HierarchyRefresh::Customized;
        } else {
            match overlay.rebuild_for(next.graph()) {
                Ok(fresh) => {
                    next = next.with_hierarchy(fresh);
                    hierarchy = HierarchyRefresh::Recontracted;
                }
                // Leave the stale hierarchy in place — v5 then
                // fails typed and the ladder serves v4/v3:
                // degraded service, never a stale-priced
                // shortcut.
                Err(_) => hierarchy = HierarchyRefresh::RebuildFailed,
            }
        }
    }
    if let Some(tables) = next.landmarks().cloned() {
        if new_cost >= old_cost {
            let patched = tables.patched_for(next.graph());
            next = next.with_landmarks(patched);
            landmarks = LandmarkRefresh::Patched;
        } else {
            match tables.rebuild_for(next.graph()) {
                Ok(fresh) => {
                    next = next.with_landmarks(fresh);
                    landmarks = LandmarkRefresh::Rebuilt;
                }
                // Leave the stale tables in place — v4 then
                // fails typed and the degrade ladder serves v3:
                // degraded service, not wrong answers. Reported
                // so the serving layer can trip its landmark
                // breaker instead of re-attempting the rebuild
                // on every subsequent update.
                Err(_) => landmarks = LandmarkRefresh::RebuildFailed,
            }
        }
    }
    (next, landmarks, hierarchy)
}

/// A database versioned by epochs: lock-briefly reads, copy-on-write
/// updates.
#[derive(Debug)]
pub struct EpochDb {
    current: Mutex<Snapshot>,
}

impl EpochDb {
    /// Wraps a freshly loaded database as epoch 0.
    pub fn new(db: Database) -> Self {
        EpochDb {
            current: Mutex::new(Snapshot {
                epoch: 0,
                db: Arc::new(db),
            }),
        }
    }

    /// Opens `graph` as epoch 0 under an explicit [`StorageProfile`] —
    /// the serving-layer entry point for segmented stores. The epoch
    /// clone-and-swap machinery is layout-agnostic: every copy-on-write
    /// update inherits the profile, so a server opened segmented stays
    /// segmented across its whole epoch history.
    ///
    /// # Errors
    /// Fails if the graph exceeds the tuple encodings or the profile is
    /// degenerate (zero segment blocks / zero pool capacity).
    pub fn open_with_profile(
        graph: &Graph,
        profile: StorageProfile,
    ) -> Result<Self, AlgorithmError> {
        Ok(EpochDb::new(Database::open_with_profile(graph, profile)?))
    }

    /// Opens `graph` as epoch 0 under the scaled profile for its node
    /// count ([`StorageProfile::for_nodes`]): region-aligned heap
    /// segments plus the matching capacity-preset buffer pool with
    /// region-aware eviction. This is how a metro-scale route server
    /// should open its stores — see `SCALING.md`.
    ///
    /// # Errors
    /// Fails if the graph exceeds the tuple encodings.
    pub fn open_scaled(graph: &Graph) -> Result<Self, AlgorithmError> {
        Self::open_with_profile(graph, StorageProfile::for_nodes(graph.node_count()))
    }

    /// Designated acquirer for the epoch slot (rank 2 in the declared
    /// lock order — see `sync.rs` and `atis-analyze rules`).
    fn lock_current(&self) -> MutexGuard<'_, Snapshot> {
        sync::lock(&self.current)
    }

    /// The current `(epoch, database)` pair. Queries must use the returned
    /// snapshot for *all* their reads — re-fetching mid-query is exactly
    /// the torn-answer bug epochs exist to prevent.
    pub fn snapshot(&self) -> Snapshot {
        self.lock_current().clone()
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.lock_current().epoch
    }

    /// Applies a traffic update copy-on-write: clones the current
    /// database, updates edge `(u, v)` on the clone, and installs the
    /// clone as the next epoch. Running queries keep their old snapshots;
    /// queries admitted after this call see the new costs.
    ///
    /// When the database carries landmark (ALT) tables they are part of
    /// the epoch artifact: a cost *increase* (congestion, the common
    /// case) keeps the old tables admissible, so they are cheaply
    /// re-stamped for the new fingerprint; a cost *decrease* rebuilds
    /// them before the epoch installs, so A\* version 4 never sees a
    /// snapshot whose tables could overestimate.
    ///
    /// A contraction hierarchy follows the same contract with cheaper
    /// repairs: a cost increase re-prices the metric-independent overlay
    /// via a customization pass, and a decrease re-contracts from
    /// scratch — either way A\* version 5 never unpacks a stale-priced
    /// shortcut.
    ///
    /// # Errors
    /// Fails for unknown endpoints or invalid costs; the current epoch is
    /// left untouched.
    pub fn update_edge_cost(
        &self,
        u: NodeId,
        v: NodeId,
        cost: f64,
    ) -> Result<EpochUpdate, AlgorithmError> {
        let mut current = self.lock_current();
        if !current.db.graph().contains(u) {
            return Err(AlgorithmError::UnknownSource(u));
        }
        if !current.db.graph().contains(v) {
            return Err(AlgorithmError::UnknownDestination(v));
        }
        let old_cost = current.db.graph().edge_cost(u, v).unwrap_or(f64::INFINITY);
        let mut next: Database = (*current.db).clone();
        let updated = next.update_edge_cost(u, v, cost)?;
        let mut landmarks = LandmarkRefresh::None;
        let mut hierarchy = HierarchyRefresh::None;
        if updated > 0 {
            (next, landmarks, hierarchy) = maintain_artifacts(next, old_cost, cost);
        }
        let epoch = current.epoch + 1;
        *current = Snapshot {
            epoch,
            db: Arc::new(next),
        };
        Ok(EpochUpdate {
            epoch,
            updated,
            old_cost,
            new_cost: cost,
            landmarks,
            hierarchy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_algorithms::Algorithm;
    use atis_graph::graph::graph_from_arcs;

    fn two_route_graph() -> EpochDb {
        // 0 -> 1 -> 3 (cost 2) versus 0 -> 2 -> 3 (cost 4).
        let g = graph_from_arcs(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)]).unwrap();
        EpochDb::new(Database::open(&g).unwrap())
    }

    #[test]
    fn snapshots_are_immutable_across_updates() {
        let epochs = two_route_graph();
        let before = epochs.snapshot();
        assert_eq!(before.epoch, 0);

        let upd = epochs.update_edge_cost(NodeId(0), NodeId(1), 50.0).unwrap();
        assert_eq!(upd.epoch, 1);
        assert_eq!(upd.updated, 1);
        assert_eq!(upd.old_cost, 1.0);

        // The old snapshot still answers with the pre-update costs …
        let old = before
            .db
            .run(Algorithm::Dijkstra, NodeId(0), NodeId(3))
            .unwrap();
        assert_eq!(old.path.as_ref().unwrap().cost, 2.0);
        // … while the new epoch routes around the jam.
        let new = epochs.snapshot();
        assert_eq!(new.epoch, 1);
        let fresh = new
            .db
            .run(Algorithm::Dijkstra, NodeId(0), NodeId(3))
            .unwrap();
        assert_eq!(fresh.path.as_ref().unwrap().cost, 4.0);
    }

    #[test]
    fn failed_updates_do_not_advance_the_epoch() {
        let epochs = two_route_graph();
        assert!(epochs
            .update_edge_cost(NodeId(0), NodeId(1), f64::NAN)
            .is_err());
        assert!(epochs.update_edge_cost(NodeId(99), NodeId(1), 1.0).is_err());
        assert_eq!(epochs.epoch(), 0);
    }

    #[test]
    fn cost_increase_patches_tables_cost_decrease_rebuilds() {
        use atis_algorithms::AStarVersion;
        use atis_graph::{CostModel, Grid, QueryKind};
        use atis_preprocess::{LandmarkTables, PreprocessConfig};

        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 8).unwrap();
        let tables = LandmarkTables::build(grid.graph(), PreprocessConfig::grid_default()).unwrap();
        let epochs = EpochDb::new(Database::open(grid.graph()).unwrap().with_landmarks(tables));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let (a, b) = (grid.node_at(2, 2), grid.node_at(2, 3));

        // Congestion: patched, degraded, and v4 still answers optimally
        // at the new epoch.
        let up = epochs.update_edge_cost(a, b, 9.0).unwrap();
        assert_eq!(up.landmarks, LandmarkRefresh::Patched);
        let snap = epochs.snapshot();
        let lm = snap.db.landmarks().unwrap();
        assert!(lm.is_current_for(snap.db.graph()) && lm.is_degraded());
        let t = snap
            .db
            .run(Algorithm::AStar(AStarVersion::V4), s, d)
            .unwrap();
        let oracle = atis_algorithms::memory::dijkstra_pair(snap.db.graph(), s, d).unwrap();
        assert!((t.path_cost() - oracle.cost).abs() < 1e-3);

        // The jam clears: a cost decrease forces a rebuild, clearing the
        // degraded flag.
        let down = epochs.update_edge_cost(a, b, 1.0).unwrap();
        assert_eq!(down.landmarks, LandmarkRefresh::Rebuilt);
        let snap = epochs.snapshot();
        let lm = snap.db.landmarks().unwrap();
        assert!(lm.is_current_for(snap.db.graph()) && !lm.is_degraded());
        assert!(snap
            .db
            .run(Algorithm::AStar(AStarVersion::V4), s, d)
            .is_ok());
    }

    #[test]
    fn cost_increase_customizes_the_hierarchy_cost_decrease_recontracts() {
        use atis_algorithms::AStarVersion;
        use atis_graph::{CostModel, Grid, QueryKind};
        use atis_hierarchy::{Hierarchy, HierarchyConfig};

        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 8).unwrap();
        let overlay = Hierarchy::build(grid.graph(), HierarchyConfig::paper()).unwrap();
        let epochs = EpochDb::new(
            Database::open(grid.graph())
                .unwrap()
                .with_hierarchy(overlay),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let (a, b) = (grid.node_at(2, 2), grid.node_at(2, 3));

        // Congestion: a customization pass re-prices the overlay — v5
        // answers exactly at the new epoch, never from stale shortcuts.
        let up = epochs.update_edge_cost(a, b, 9.0).unwrap();
        assert_eq!(up.hierarchy, HierarchyRefresh::Customized);
        let snap = epochs.snapshot();
        let h = snap.db.hierarchy().unwrap();
        assert!(h.is_current_for(snap.db.graph()) && h.is_degraded());
        let t = snap
            .db
            .run(Algorithm::AStar(AStarVersion::V5), s, d)
            .unwrap();
        let oracle = atis_algorithms::memory::dijkstra_pair(snap.db.graph(), s, d).unwrap();
        assert!((t.path_cost() - oracle.cost).abs() < 1e-9);

        // The jam clears: a decrease re-contracts, restoring witness
        // dormancy (the degraded flag drops).
        let down = epochs.update_edge_cost(a, b, 1.0).unwrap();
        assert_eq!(down.hierarchy, HierarchyRefresh::Recontracted);
        let snap = epochs.snapshot();
        let h = snap.db.hierarchy().unwrap();
        assert!(h.is_current_for(snap.db.graph()) && !h.is_degraded());
        let t = snap
            .db
            .run(Algorithm::AStar(AStarVersion::V5), s, d)
            .unwrap();
        let oracle = atis_algorithms::memory::dijkstra_pair(snap.db.graph(), s, d).unwrap();
        assert!((t.path_cost() - oracle.cost).abs() < 1e-9);
    }

    #[test]
    fn updates_without_a_hierarchy_report_no_hierarchy_refresh() {
        let epochs = two_route_graph();
        let up = epochs.update_edge_cost(NodeId(0), NodeId(1), 3.0).unwrap();
        assert_eq!(up.hierarchy, HierarchyRefresh::None);
    }

    #[test]
    fn scaled_stores_answer_like_paper_stores_across_epochs() {
        use atis_graph::{Metro, MetroQuery, MetroSpec};

        let metro = Metro::new(MetroSpec::new(2, 2, 7)).unwrap();
        let scaled = EpochDb::open_scaled(metro.graph()).unwrap();
        assert!(scaled.snapshot().db.profile().is_segmented());
        let paper = EpochDb::new(Database::open(metro.graph()).unwrap());
        let (s, d) = metro.query_pair(MetroQuery::AdjacentCity);

        for epochs in [&scaled, &paper] {
            // Congest a street on the intra-city route, then run at the
            // new epoch.
            epochs
                .update_edge_cost(metro.node_at(0, 0, 8, 8), metro.node_at(0, 0, 8, 9), 40.0)
                .unwrap();
        }
        let a = scaled.snapshot();
        let b = paper.snapshot();
        assert_eq!(a.epoch, b.epoch);
        let ra = a.db.run(Algorithm::Dijkstra, s, d).unwrap();
        let rb = b.db.run(Algorithm::Dijkstra, s, d).unwrap();
        // Same answer and the same *charged* I/O — the layouts differ
        // only in physical-read patterns.
        assert_eq!(
            ra.path.as_ref().unwrap().cost,
            rb.path.as_ref().unwrap().cost
        );
        assert_eq!(
            ra.path.as_ref().unwrap().nodes,
            rb.path.as_ref().unwrap().nodes
        );
    }

    #[test]
    fn updates_without_tables_report_no_refresh() {
        let epochs = two_route_graph();
        let up = epochs.update_edge_cost(NodeId(0), NodeId(1), 3.0).unwrap();
        assert_eq!(up.landmarks, LandmarkRefresh::None);
    }

    #[test]
    fn updates_serialize_into_consecutive_epochs() {
        let epochs = two_route_graph();
        for i in 1..=5u64 {
            let upd = epochs
                .update_edge_cost(NodeId(0), NodeId(1), i as f64)
                .unwrap();
            assert_eq!(upd.epoch, i);
        }
        assert_eq!(epochs.epoch(), 5);
        assert_eq!(
            epochs.snapshot().db.graph().edge_cost(NodeId(0), NodeId(1)),
            Some(5.0)
        );
    }
}
