//! The deterministic chaos harness: seeded overload waves against a
//! real [`RouteService`].
//!
//! A [`ChaosScenario`] describes one reproducible storm — concurrent
//! client threads replaying seeded query streams, an update thread
//! replaying an incident storm, optionally a [`FaultPlan`] browning out
//! the storage engine — and [`run_scenario`] drives it to completion,
//! returning a [`ChaosReport`] with every response classified. All
//! randomness is `splitmix64` from the scenario seed: the same scenario
//! produces the same query streams, the same update log, and the same
//! injected-fault decisions on every run, so CI failures replay locally
//! byte-for-byte.
//!
//! The resilience invariants the harness lets tests assert:
//!
//! 1. **Every request ends in a typed outcome** — an answer, a typed
//!    [`ServeError::Shed`] with a retry hint, or a typed algorithm
//!    error. Never a hang (the run completes) and never a panic
//!    ([`ChaosReport::panicked_clients`] is 0).
//! 2. **No torn or invented answers** —
//!    [`ChaosReport::verify_answers`] replays the update log and checks
//!    every returned path prices cost-exactly against the graph at
//!    exactly the epoch the answer claims (stale answers against their
//!    *older* epoch).
//! 3. **Breakers recover** — after the fault window closes, the
//!    storage breaker is driven back to `closed`
//!    ([`ChaosReport::storage_breaker`]).
//! 4. **Shedding stays within policy** — [`ChaosReport::shed_fraction`]
//!    is bounded away from both 0 (the storm really overloaded the
//!    service) and 1 (the service kept serving).
//!
//! The three standard scenarios ([`standard_scenarios`]) are the ones
//! the CI stress job replays: `burst-overload`, `update-storm`, and
//! `io-brownout`.

use crate::breaker::{BreakerConfig, BreakerState};
use crate::error::ServeError;
use crate::service::{RequestClass, RouteService, ServeConfig};
use atis_algorithms::{AlgorithmError, Database};
use atis_graph::{CostModel, Graph, Grid, NodeId, Path};
use atis_storage::FaultPlan;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One seeded, reproducible overload scenario.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Scenario name (report labels, CI output).
    pub name: &'static str,
    /// Master seed; every client stream and the update storm derive
    /// from it.
    pub seed: u64,
    /// Grid side length of the generated road network.
    pub grid_size: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client submits.
    pub requests_per_client: usize,
    /// Every `bulk_every`-th request is submitted as
    /// [`RequestClass::Bulk`] (0 = interactive only).
    pub bulk_every: usize,
    /// Per-request deadline in virtual ticks (`None` = service default).
    pub deadline_ticks: Option<u64>,
    /// Updates the incident storm applies.
    pub updates: usize,
    /// Milliseconds the storm sleeps between updates (0 = full-rate
    /// storm).
    pub update_pause_ms: u64,
    /// Storage fault injection for the scenario's database.
    pub fault_plan: Option<FaultPlan>,
    /// Requests to warm the cache with before the storm (their answers
    /// are counted separately and excluded from the report).
    pub warmup_requests: usize,
    /// Service tuning under test.
    pub config: ServeConfig,
}

/// How the responses of one scenario broke down. Every request the
/// harness submitted lands in exactly one bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Fresh full-fidelity answers at the current epoch.
    pub computed: u64,
    /// Cache-served answers (bit-identical to fresh).
    pub cache_hits: u64,
    /// Degrade-ladder answers (exact, current epoch, fallback rung).
    pub degraded: u64,
    /// Stale-tier answers (tagged with their age).
    pub stale: u64,
    /// Typed sheds (queue-full, displaced, deadline, breaker-open).
    pub shed: u64,
    /// Typed algorithm errors (storage faults that exhausted the
    /// ladder).
    pub failed: u64,
}

impl OutcomeCounts {
    /// Total classified responses.
    pub fn total(&self) -> u64 {
        self.computed + self.cache_hits + self.degraded + self.stale + self.shed + self.failed
    }

    /// Answers that carried a route (any fidelity).
    pub fn answered(&self) -> u64 {
        self.computed + self.cache_hits + self.degraded + self.stale
    }
}

/// One recorded answer, kept for post-hoc replay verification.
#[derive(Debug, Clone)]
pub struct RecordedAnswer {
    /// Queried source.
    pub from: NodeId,
    /// Queried destination.
    pub to: NodeId,
    /// Epoch the answer claims validity at.
    pub epoch: u64,
    /// The returned route (`None` = unreachable).
    pub path: Option<Path>,
    /// Whether the answer came from the stale tier.
    pub stale: bool,
    /// End-to-end wall time the client observed (queue wait + service).
    pub wall: Duration,
}

/// Everything one scenario run produced.
#[derive(Debug)]
pub struct ChaosReport {
    /// The scenario's name.
    pub scenario: &'static str,
    /// Response breakdown (storm phase only; warm-up excluded).
    pub counts: OutcomeCounts,
    /// Client threads that panicked (must be 0 — a panic is an
    /// invariant violation, never an acceptable outcome).
    pub panicked_clients: usize,
    /// Every answered request, for replay verification.
    pub answers: Vec<RecordedAnswer>,
    /// The exact update log: `(epoch, u, v, cost)` in install order.
    pub updates: Vec<(u64, NodeId, NodeId, f64)>,
    /// Storage-breaker state at the end of the run (after recovery
    /// probing).
    pub storage_breaker: BreakerState,
    /// Landmark-breaker state at the end of the run.
    pub landmarks_breaker: BreakerState,
    /// The service's final epoch.
    pub final_epoch: u64,
    /// The service's final virtual time.
    pub final_ticks: u64,
}

impl ChaosReport {
    /// Fraction of storm-phase requests that were shed.
    pub fn shed_fraction(&self) -> f64 {
        let total = self.counts.total();
        if total == 0 {
            return 0.0;
        }
        self.counts.shed as f64 / total as f64
    }

    /// Wall-clock percentile (0.0–1.0) over the *answered* requests.
    /// `None` when nothing was answered.
    pub fn answered_wall_percentile(&self, q: f64) -> Option<Duration> {
        let mut walls: Vec<Duration> = self.answers.iter().map(|a| a.wall).collect();
        if walls.is_empty() {
            return None;
        }
        walls.sort();
        let rank = ((walls.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        walls.get(rank).copied()
    }

    /// Replays the update log and checks every recorded answer against
    /// the graph at exactly the epoch it claims: all hops exist there
    /// and the path's stored cost re-prices exactly (±1e-6 relative).
    /// Catches both torn answers (mixed epochs) and invented routes
    /// (paths no epoch ever contained).
    ///
    /// # Errors
    /// A description of the first violating answer.
    pub fn verify_answers(&self, initial: &Graph) -> Result<(), String> {
        for (i, answer) in self.answers.iter().enumerate() {
            let Some(path) = &answer.path else { continue };
            let mut graph = initial.clone();
            for &(epoch, u, v, cost) in &self.updates {
                if epoch <= answer.epoch {
                    graph
                        .set_edge_cost(u, v, cost)
                        .map_err(|e| format!("replaying update at epoch {epoch}: {e}"))?;
                }
            }
            let repriced = path.validate(&graph).map_err(|e| {
                format!(
                    "answer {i} ({:?}->{:?}, epoch {}): invalid at its own epoch: {e}",
                    answer.from, answer.to, answer.epoch
                )
            })?;
            if (repriced - path.cost).abs() > 1e-6 * repriced.abs().max(1.0) {
                return Err(format!(
                    "answer {i} ({:?}->{:?}, epoch {}): torn pricing — stored {} vs replayed {}",
                    answer.from, answer.to, answer.epoch, path.cost, repriced
                ));
            }
        }
        Ok(())
    }
}

/// `splitmix64`: the workspace's standard deterministic mixer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A tiny deterministic stream over `splitmix64`.
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64, stream: u64) -> Self {
        Rng {
            state: splitmix64(seed ^ splitmix64(stream)),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.next() % n
    }
}

/// The scenario's road network: deterministic in the scenario seed, so
/// tests and the report's replay verification reconstruct the exact
/// graph the harness served.
///
/// # Errors
/// Grid construction failures as strings.
pub fn scenario_grid(scenario: &ChaosScenario) -> Result<Grid, String> {
    Grid::new(
        scenario.grid_size,
        CostModel::TWENTY_PERCENT,
        scenario.seed % 1_000,
    )
    .map_err(|e| format!("grid: {e}"))
}

/// A deterministic query pair on the grid (endpoints never equal).
fn query_pair_from(grid: &Grid, size: u64, rng: &mut Rng) -> (NodeId, NodeId) {
    let (r1, c1) = (rng.below(size) as usize, rng.below(size) as usize);
    let (mut r2, c2) = (rng.below(size) as usize, rng.below(size) as usize);
    if r1 == r2 && c1 == c2 {
        r2 = (r2 + 1) % size as usize;
    }
    (grid.node_at(r1, c1), grid.node_at(r2, c2))
}

/// The three seeded storms the CI stress job replays.
pub fn standard_scenarios() -> Vec<ChaosScenario> {
    vec![
        // A pure arrival burst: more clients than workers, a deliberately
        // tiny queue, bulk traffic mixed in. Exercises queue-full
        // shedding, displacement, and deadline expiry under pressure. The
        // tiny queue is what keeps admitted-request latency bounded (a
        // dequeued request waited behind at most ~queue/workers runs), so
        // the CI invariant "admitted p99 stays within a small factor of
        // uncontended p99" holds by construction; the injected uniform
        // read latency makes service times large enough to swamp
        // scheduler noise.
        ChaosScenario {
            name: "burst-overload",
            seed: 0xA71B_0001,
            grid_size: 8,
            clients: 8,
            requests_per_client: 32,
            bulk_every: 4,
            deadline_ticks: Some(4_000),
            updates: 0,
            update_pause_ms: 0,
            fault_plan: Some(
                FaultPlan::inert(0xA71B_0001).with_read_latency(Duration::from_micros(30)),
            ),
            warmup_requests: 0,
            config: ServeConfig::default()
                .with_workers(4)
                .with_queue_capacity(2)
                .with_cache_capacity(0),
        },
        // An incident storm: full-rate UPDATEs racing queries. Exercises
        // epoch installs, cache invalidation/promotion, and torn-answer
        // freedom under churn.
        ChaosScenario {
            name: "update-storm",
            seed: 0xA71B_0002,
            grid_size: 8,
            clients: 6,
            requests_per_client: 24,
            bulk_every: 0,
            deadline_ticks: None,
            updates: 48,
            update_pause_ms: 0,
            fault_plan: None,
            warmup_requests: 0,
            config: ServeConfig::default()
                .with_workers(4)
                .with_queue_capacity(64)
                .with_cache_capacity(128),
        },
        // An I/O brownout with a deterministic end: reads fail hard for
        // a bounded window of physical operations, then recover.
        // Exercises the storage breaker (open, stale-serve, half-open
        // probe, re-close). The window is sized so the breaker's probe
        // cycles — each burning one failed read while the clock crawls
        // through `open_ticks` of refused work — traverse it within the
        // harness's bounded recovery phase.
        ChaosScenario {
            name: "io-brownout",
            seed: 0xA71B_0003,
            grid_size: 6,
            clients: 4,
            requests_per_client: 24,
            bulk_every: 0,
            deadline_ticks: None,
            updates: 2,
            update_pause_ms: 1,
            fault_plan: Some(FaultPlan::inert(0xA71B_0003).with_read_failure_window(400, 430, 1.0)),
            warmup_requests: 6,
            config: ServeConfig::default()
                .with_workers(2)
                .with_queue_capacity(32)
                .with_cache_capacity(64)
                .with_breaker(BreakerConfig {
                    failure_threshold: 3,
                    open_ticks: 8,
                    probes: 1,
                }),
        },
    ]
}

/// Builds the scenario's service and drives the storm to completion.
///
/// Phases: warm-up (optional, cache priming), the storm itself
/// (clients + update thread concurrently), then a bounded recovery
/// phase that keeps probing until the storage breaker re-closes (or a
/// fixed probe budget runs out — the report then shows the stuck
/// state).
///
/// # Errors
/// Setup failures (grid/database construction, thread spawning) as
/// strings; the storm itself never errors — client failures land in
/// the report.
pub fn run_scenario(scenario: &ChaosScenario) -> Result<ChaosReport, String> {
    let grid = scenario_grid(scenario)?;
    let mut db = Database::open(grid.graph()).map_err(|e| format!("database: {e}"))?;
    if let Some(plan) = &scenario.fault_plan {
        db = db.with_fault_plan(*plan);
    }
    let service = Arc::new(RouteService::new(db, scenario.config.clone()));
    let size = scenario.grid_size.max(2) as u64;

    // Warm-up: prime the cache so the stale tier has something to
    // retire into when the storm's updates sweep it.
    {
        let mut rng = Rng::new(scenario.seed, 0xFEED);
        for _ in 0..scenario.warmup_requests {
            let (from, to) = query_pair_from(&grid, size, &mut rng);
            let _ = service.route(from, to);
        }
    }

    // The update storm, on its own thread, recording the exact log.
    let updater = {
        let service = service.clone();
        let updates = scenario.updates;
        let pause = scenario.update_pause_ms;
        let seed = scenario.seed;
        let grid_updates = grid.clone();
        std::thread::Builder::new()
            .name("chaos-updater".to_string())
            .spawn(move || {
                let mut rng = Rng::new(seed, 0xD1CE);
                let mut log = Vec::new();
                for i in 0..updates {
                    if pause > 0 {
                        std::thread::sleep(Duration::from_millis(pause));
                    }
                    let r = rng.below(size) as usize;
                    let c = rng.below(size.saturating_sub(1)) as usize;
                    let (u, v) = (grid_updates.node_at(r, c), grid_updates.node_at(r, c + 1));
                    // Alternate congestion spikes and clears.
                    let cost = if i % 2 == 0 {
                        20.0 + rng.below(30) as f64
                    } else {
                        1.0 + rng.below(4) as f64
                    };
                    if let Ok(update) = service.update_edge_cost(u, v, cost) {
                        log.push((update.epoch, u, v, cost));
                    }
                }
                log
            })
            .map_err(|e| format!("spawn updater: {e}"))?
    };

    // The client storm.
    let mut clients = Vec::new();
    for client in 0..scenario.clients {
        let service = service.clone();
        let seed = scenario.seed;
        let requests = scenario.requests_per_client;
        let bulk_every = scenario.bulk_every;
        let deadline = scenario.deadline_ticks;
        let grid_client = grid.clone();
        let handle = std::thread::Builder::new()
            .name(format!("chaos-client-{client}"))
            .spawn(move || {
                let mut rng = Rng::new(seed, client as u64 + 1);
                let mut results = Vec::with_capacity(requests);
                for r in 0..requests {
                    let (from, to) = query_pair_from(&grid_client, size, &mut rng);
                    let class = if bulk_every > 0 && r % bulk_every == bulk_every - 1 {
                        RequestClass::Bulk
                    } else {
                        RequestClass::Interactive
                    };
                    let started = Instant::now();
                    let outcome = service.route_with(from, to, class, deadline);
                    results.push((from, to, started.elapsed(), outcome));
                }
                results
            })
            .map_err(|e| format!("spawn client {client}: {e}"))?;
        clients.push(handle);
    }

    let updates = updater.join().unwrap_or_default();
    let mut counts = OutcomeCounts::default();
    let mut answers = Vec::new();
    let mut panicked_clients = 0usize;
    for handle in clients {
        let Ok(results) = handle.join() else {
            panicked_clients += 1;
            continue;
        };
        for (from, to, wall, outcome) in results {
            match outcome {
                Ok(answer) => {
                    use crate::service::RouteOutcome;
                    let stale = matches!(answer.outcome, RouteOutcome::Stale { .. });
                    match answer.outcome {
                        RouteOutcome::Computed => counts.computed += 1,
                        RouteOutcome::CacheHit => counts.cache_hits += 1,
                        RouteOutcome::Degraded { .. } => counts.degraded += 1,
                        RouteOutcome::Stale { .. } => counts.stale += 1,
                    }
                    answers.push(RecordedAnswer {
                        from,
                        to,
                        epoch: answer.epoch,
                        path: answer.path,
                        stale,
                        wall,
                    });
                }
                Err(e) if e.is_shed() => counts.shed += 1,
                Err(ServeError::Algorithm(AlgorithmError::Storage(_))) => counts.failed += 1,
                Err(ServeError::ShuttingDown) => counts.failed += 1,
                Err(ServeError::Algorithm(_)) => counts.failed += 1,
                Err(_) => counts.failed += 1,
            }
        }
    }

    // Recovery phase: keep probing (cheap, deterministic stream) until
    // the storage breaker re-closes. Bounded so a genuinely stuck
    // breaker surfaces in the report instead of hanging the harness.
    let mut rng = Rng::new(scenario.seed, 0x9EC0);
    for _ in 0..400 {
        if service.breaker_state("storage") == Some(BreakerState::Closed) {
            break;
        }
        let (from, to) = query_pair_from(&grid, size, &mut rng);
        let _ = service.route(from, to);
    }

    Ok(ChaosReport {
        scenario: scenario.name,
        counts,
        panicked_clients,
        answers,
        updates,
        storage_breaker: service
            .breaker_state("storage")
            .unwrap_or(BreakerState::Closed),
        landmarks_breaker: service
            .breaker_state("landmarks")
            .unwrap_or(BreakerState::Closed),
        final_epoch: service.epoch(),
        final_ticks: service.now_ticks(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7, 1);
            (0..8).map(|_| r.next()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7, 1);
            (0..8).map(|_| r.next()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::new(7, 2);
            (0..8).map(|_| r.next()).collect()
        };
        assert_eq!(a, b, "same seed + stream replays identically");
        assert_ne!(a, c, "streams are independent");
    }

    #[test]
    fn standard_scenarios_are_three_distinct_storms() {
        let scenarios = standard_scenarios();
        assert_eq!(scenarios.len(), 3);
        let names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        assert_eq!(names, ["burst-overload", "update-storm", "io-brownout"]);
        assert!(scenarios.iter().all(|s| s.clients > 0));
        assert!(
            scenarios.iter().any(|s| s.fault_plan.is_some()),
            "one scenario must inject I/O faults"
        );
        assert!(
            scenarios.iter().any(|s| s.updates > 10),
            "one scenario must storm updates"
        );
    }

    #[test]
    fn a_tiny_scenario_runs_to_a_fully_typed_report() {
        let scenario = ChaosScenario {
            name: "smoke",
            seed: 42,
            grid_size: 5,
            clients: 2,
            requests_per_client: 6,
            bulk_every: 3,
            deadline_ticks: None,
            updates: 2,
            update_pause_ms: 0,
            fault_plan: None,
            warmup_requests: 0,
            config: ServeConfig::default()
                .with_workers(2)
                .with_queue_capacity(16),
        };
        let report = run_scenario(&scenario).expect("scenario runs");
        assert_eq!(report.panicked_clients, 0);
        assert_eq!(report.counts.total(), 12, "every request is classified");
        let grid = scenario_grid(&scenario).unwrap();
        report
            .verify_answers(grid.graph())
            .expect("no torn answers");
    }

    #[test]
    fn percentiles_and_fractions_handle_empty_reports() {
        let report = ChaosReport {
            scenario: "empty",
            counts: OutcomeCounts::default(),
            panicked_clients: 0,
            answers: Vec::new(),
            updates: Vec::new(),
            storage_breaker: BreakerState::Closed,
            landmarks_breaker: BreakerState::Closed,
            final_epoch: 0,
            final_ticks: 0,
        };
        assert_eq!(report.shed_fraction(), 0.0);
        assert!(report.answered_wall_percentile(0.99).is_none());
    }
}
