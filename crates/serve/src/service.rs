//! The concurrent route service: two-class admission control with
//! load-shedding, deadline propagation over a virtual clock, a fixed
//! worker pool, epoch snapshots, circuit breakers with stale-serve
//! degradation, and the route cache.
//!
//! ## Request life cycle
//!
//! ```text
//! submit() ──admission──▶ class queues ──▶ worker i
//!    │ shed? SHED            (interactive     │ deadline check (virtual ticks)
//!    ▼       (typed reason)   before bulk)    │ pin snapshot (epoch e)
//! Ticket::wait() ◀── answer ◀────────────────┤ cache lookup (from,to,e)
//!                                            │ hit: serve cached
//!                                            └ miss: degrade ladder
//!                                               primary → v4/v3 → Dijkstra
//!                                               → stale tier (STALE k)
//! ```
//!
//! ## Overload policy
//!
//! Admission is **shed-not-queue**: the submission queue is bounded, and
//! when it is full the service sheds the *least valuable* work first —
//! requests whose deadline already expired (either class), then the
//! oldest-deadline bulk request (displaced to admit interactive work) —
//! before finally refusing the newcomer with a typed
//! [`ServeError::Shed`] carrying a `retry_after` hint. `BUSY` never
//! appears; every refusal says why and when to come back.
//!
//! **Deadlines** are measured on a deterministic virtual clock
//! ([`RouteService::now_ticks`]): one tick per dequeue plus one tick per
//! Table 4A cost unit of completed work, so virtual time advances with
//! admitted load, never with wall time (consistent with the analyze
//! determinism rules). An admitted request whose deadline passes while
//! queued is shed at dequeue without running; one that is still running
//! when its deadline-derived cost budget (80% of the remaining ticks by
//! default) runs out is aborted mid-expansion by the planner's budget
//! meter — it stops consuming block reads instead of completing
//! uselessly.
//!
//! **Circuit breakers** guard the storage engine, the landmark rebuild
//! path, and the hierarchy maintenance path (see `breaker.rs`). An open
//! storage breaker skips the database rungs entirely and serves from
//! the stale cache tier; an open hierarchy breaker skips A\* v5 and
//! starts the ladder at v4 (or v3 without landmark tables); an open
//! landmark breaker skips A\* v4 and starts the ladder at v3.
//!
//! Updates bypass the queue: [`RouteService::update_edge_cost`] installs
//! a new epoch copy-on-write (running queries keep their snapshots) and
//! sweeps the cache under the invalidation rule, retiring invalidated
//! entries into the stale tier.

use crate::breaker::{
    Admission, BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker, ProbeGuard,
};
use crate::cache::{CachedRoute, RouteCache};
use crate::epoch::{EpochDb, EpochUpdate, HierarchyRefresh, LandmarkRefresh, Snapshot};
use crate::error::{ServeError, ShedReason};
use crate::sync::{self, Arc, Condvar, Mutex, MutexGuard};
use atis_algorithms::{AStarVersion, Algorithm, AlgorithmError, BudgetKind, Budgets, Database};
use atis_graph::{NodeId, Path};
use atis_obs::{ServeEvent, SharedRegistry, SharedSink, TraceEvent};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

type JoinHandle = sync::thread::JoinHandle<()>;

/// Admission class of a request. Interactive work is served first; bulk
/// work is displaced first under pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// A traveller waiting on an answer (the `ROUTE` wire command).
    Interactive,
    /// Deferrable background work (incident-driven refresh, prefetch).
    Bulk,
}

impl RequestClass {
    /// Stable lowercase label (trace events, docs).
    pub fn label(&self) -> &'static str {
        match self {
            RequestClass::Interactive => "interactive",
            RequestClass::Bulk => "bulk",
        }
    }
}

/// An absolute expiry on the service's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline {
    /// Virtual tick at which the request is no longer worth answering.
    pub expires_at: u64,
}

impl Deadline {
    /// Ticks left at virtual time `now` (0 = expired).
    pub fn remaining(&self, now: u64) -> u64 {
        self.expires_at.saturating_sub(now)
    }

    /// Whether the deadline has passed at virtual time `now`.
    pub fn expired(&self, now: u64) -> bool {
        now >= self.expires_at
    }
}

/// How an answer was produced — every response is classified, so a
/// client (and the chaos harness) can always tell full-fidelity service
/// from degraded service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteOutcome {
    /// A fresh run of the configured algorithm at the current epoch.
    Computed,
    /// Served from the route cache, bit-identical to a fresh run.
    CacheHit,
    /// A fallback rung of the degrade ladder answered (still exact, and
    /// still at the current epoch — just a cheaper/estimator-free
    /// algorithm).
    Degraded {
        /// Ladder rung that produced the answer (`"astar-v3"`,
        /// `"dijkstra"`).
        rung: &'static str,
    },
    /// Served from the stale cache tier: a route valid `age` epochs ago
    /// (the `STALE k` wire tag).
    Stale {
        /// Age of the answer in epochs.
        age: u64,
    },
}

impl RouteOutcome {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            RouteOutcome::Computed => "computed",
            RouteOutcome::CacheHit => "cache-hit",
            RouteOutcome::Degraded { .. } => "degraded",
            RouteOutcome::Stale { .. } => "stale",
        }
    }

    /// Whether the answer is anything other than full-fidelity service
    /// at the current epoch.
    pub fn is_degraded(&self) -> bool {
        matches!(
            self,
            RouteOutcome::Degraded { .. } | RouteOutcome::Stale { .. }
        )
    }
}

/// Tuning knobs for a [`RouteService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing planner runs (≥ 1).
    pub workers: usize,
    /// Bounded submission-queue capacity (both classes combined); a full
    /// queue sheds (see [`ServeError::Shed`]) (≥ 1).
    pub queue_capacity: usize,
    /// Route-cache capacity in entries (0 disables caching, including
    /// the stale tier).
    pub cache_capacity: usize,
    /// Algorithm every `ROUTE` request runs.
    pub algorithm: Algorithm,
    /// Default per-request deadline, in virtual-time ticks.
    pub default_deadline_ticks: u64,
    /// Fraction of the remaining deadline a run may spend as cost units
    /// before being aborted mid-expansion (the "shed at 80%" rule).
    pub deadline_spend_fraction: f64,
    /// `retry_after = queue_depth × retry_unit_ticks` on queue-full
    /// sheds.
    pub retry_unit_ticks: u64,
    /// Circuit-breaker tuning (shared by the storage and landmark
    /// breakers).
    pub breaker: BreakerConfig,
    /// Oldest answer (in epochs) the stale-serve rung may return.
    pub stale_max_age: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 1024,
            algorithm: Algorithm::AStar(AStarVersion::V3),
            default_deadline_ticks: 100_000,
            deadline_spend_fraction: 0.8,
            retry_unit_ticks: 16,
            breaker: BreakerConfig::default(),
            stale_max_age: 8,
        }
    }
}

impl ServeConfig {
    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the submission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Overrides the route-cache capacity (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Overrides the default per-request deadline (virtual ticks).
    pub fn with_default_deadline_ticks(mut self, ticks: u64) -> Self {
        self.default_deadline_ticks = ticks;
        self
    }

    /// Overrides the deadline spend fraction (clamped to `(0, 1]`).
    pub fn with_deadline_spend_fraction(mut self, fraction: f64) -> Self {
        self.deadline_spend_fraction = fraction.clamp(0.05, 1.0);
        self
    }

    /// Overrides the circuit-breaker tuning.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Overrides the maximum stale-serve age (epochs).
    pub fn with_stale_max_age(mut self, age: u64) -> Self {
        self.stale_max_age = age;
        self
    }
}

/// One answered route request.
#[derive(Debug, Clone)]
pub struct RouteAnswer {
    /// The route, or `None` when the destination is unreachable.
    pub path: Option<Path>,
    /// Epoch the answer is valid at: every edge cost the answer reflects
    /// comes from exactly this snapshot. For a [`RouteOutcome::Stale`]
    /// answer this is the *older* epoch the route was computed at.
    pub epoch: u64,
    /// How the answer was produced (fresh run, cache hit, degraded rung,
    /// stale tier).
    pub outcome: RouteOutcome,
    /// The deadline the request ran under (virtual ticks).
    pub deadline: Deadline,
    /// Admission class the request was served as.
    pub class: RequestClass,
    /// Whether the answer came from the route cache (kept alongside
    /// [`RouteAnswer::outcome`] for call-site convenience).
    pub cached: bool,
    /// Iterations of the (original) run.
    pub iterations: u64,
    /// Simulated I/O cost of the (original) run, Table 4A units.
    pub cost_units: f64,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Worker time (cache lookup + algorithm run).
    pub service_time: Duration,
    /// Pool index of the worker that served the request.
    pub worker: usize,
}

/// The pending-answer slot a submitted request blocks on.
#[derive(Debug, Default)]
struct TicketInner {
    slot: Mutex<Option<Result<RouteAnswer, ServeError>>>,
    ready: Condvar,
}

impl TicketInner {
    /// Designated acquirer for the answer slot (rank 4 in the declared
    /// order — see `sync.rs`).
    fn lock_slot(&self) -> MutexGuard<'_, Option<Result<RouteAnswer, ServeError>>> {
        sync::lock(&self.slot)
    }

    /// Fills the slot and wakes the waiter.
    fn resolve(&self, answer: Result<RouteAnswer, ServeError>) {
        let mut slot = self.lock_slot();
        *slot = Some(answer);
        drop(slot);
        self.ready.notify_all();
    }
}

/// A claim on a submitted request's future answer.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    inner: Arc<TicketInner>,
}

impl Ticket {
    /// The request id (monotonic per service, matches trace events).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the worker pool answers this request.
    pub fn wait(self) -> Result<RouteAnswer, ServeError> {
        let mut slot = self.inner.lock_slot();
        loop {
            if let Some(answer) = slot.take() {
                return answer;
            }
            slot = sync::wait(&self.inner.ready, slot);
        }
    }
}

struct Job {
    id: u64,
    from: NodeId,
    to: NodeId,
    class: RequestClass,
    deadline: Deadline,
    submitted: Instant,
    ticket: Arc<TicketInner>,
}

#[derive(Default)]
struct QueueState {
    interactive: VecDeque<Job>,
    bulk: VecDeque<Job>,
    closed: bool,
}

impl QueueState {
    fn len(&self) -> usize {
        self.interactive.len() + self.bulk.len()
    }

    fn pop(&mut self) -> Option<Job> {
        self.interactive
            .pop_front()
            .or_else(|| self.bulk.pop_front())
    }

    /// Removes every queued job whose deadline has passed at `now`.
    fn drain_expired(&mut self, now: u64) -> Vec<Job> {
        let mut expired = Vec::new();
        for queue in [&mut self.interactive, &mut self.bulk] {
            let mut keep = VecDeque::with_capacity(queue.len());
            while let Some(job) = queue.pop_front() {
                if job.deadline.expired(now) {
                    expired.push(job);
                } else {
                    keep.push_back(job);
                }
            }
            *queue = keep;
        }
        expired
    }

    /// Removes the bulk job with the earliest deadline (the one that
    /// would be shed soonest anyway), if any.
    fn displace_bulk(&mut self) -> Option<Job> {
        let victim = self
            .bulk
            .iter()
            .enumerate()
            .min_by_key(|(i, job)| (job.deadline, *i))
            .map(|(i, _)| i);
        victim.and_then(|i| self.bulk.remove(i))
    }
}

struct Breakers {
    storage: CircuitBreaker,
    landmarks: CircuitBreaker,
    hierarchy: CircuitBreaker,
}

struct Shared {
    epochs: EpochDb,
    cache: RouteCache,
    queue: Mutex<QueueState>,
    available: Condvar,
    queue_capacity: usize,
    algorithm: Algorithm,
    default_deadline_ticks: u64,
    deadline_spend_fraction: f64,
    retry_unit_ticks: u64,
    stale_max_age: u64,
    breakers: Breakers,
    /// The virtual clock: +1 per dequeue, +⌈cost units⌉ per run —
    /// completed *or* failed (a cost-budget abort is charged its full
    /// allowance, other failures a one-unit floor). A deterministic
    /// measure of admitted load, never wall time.
    clock: AtomicU64,
    next_request: AtomicU64,
    metrics: Option<SharedRegistry>,
    sink: Option<SharedSink>,
}

impl Shared {
    /// Designated acquirer for the admission queue (rank 1, the
    /// outermost lock in the declared order — see `sync.rs`).
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        sync::lock(&self.queue)
    }

    fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    fn advance(&self, ticks: u64) -> u64 {
        self.clock.fetch_add(ticks, Ordering::Relaxed) + ticks
    }

    fn emit(&self, event: ServeEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&TraceEvent::Serve(event));
        }
    }

    fn observe(&self, name: &str, value: f64) {
        if let Some(m) = &self.metrics {
            m.observe(name, value);
        }
    }

    fn inc(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.inc(name);
        }
    }

    fn emit_transition(&self, resource: &'static str, transition: Option<BreakerTransition>) {
        let Some(t) = transition else { return };
        if matches!(t.to, BreakerState::Open { .. }) {
            self.inc("serve_breaker_open_total");
        }
        if matches!(t.to, BreakerState::Closed) {
            self.inc("serve_breaker_close_total");
        }
        self.emit(ServeEvent::BreakerTransition {
            resource: resource.to_string(),
            from: t.from.label().to_string(),
            to: t.to.label().to_string(),
            at_tick: self.now(),
        });
    }

    /// Sheds `job` with a typed reason: resolves its ticket, counts it,
    /// and emits the trace span. Never called with a lock held.
    fn shed_job(&self, job: &Job, reason: ShedReason, queue_depth: usize) {
        let retry_after = match reason {
            ShedReason::DeadlineExpired => self.default_deadline_ticks,
            _ => (queue_depth as u64).max(1) * self.retry_unit_ticks,
        };
        self.resolve_shed(job, reason, retry_after, queue_depth);
    }

    /// Sheds `job` with a back-off hint that is already known — a
    /// breaker's actual countdown, a deadline renewal — instead of the
    /// queue-depth formula. Never called with a lock held.
    fn resolve_shed(&self, job: &Job, reason: ShedReason, retry_after: u64, queue_depth: usize) {
        self.inc("serve_shed_total");
        if reason == ShedReason::DeadlineExpired {
            self.inc("serve_deadline_expired_total");
        }
        self.emit(ServeEvent::Shed {
            request: job.id,
            reason: reason.label().to_string(),
            retry_after,
            queue_depth: queue_depth as u64,
        });
        job.ticket.resolve(Err(ServeError::Shed {
            reason,
            retry_after,
            queue_depth,
        }));
    }
}

/// A pooled, cached, epoch-snapshotted, overload-resilient route-serving
/// engine.
///
/// Dropping the service closes admission, lets the workers drain every
/// already-admitted request (so no [`Ticket::wait`] deadlocks), and joins
/// the pool.
pub struct RouteService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle>,
}

impl std::fmt::Debug for RouteService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteService")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.shared.queue_capacity)
            .field("cache_capacity", &self.shared.cache.capacity())
            .field("algorithm", &self.shared.algorithm)
            .finish()
    }
}

impl RouteService {
    /// Starts a service over `db` with `config`. The database becomes
    /// epoch 0; `config.workers` threads start immediately.
    pub fn new(db: Database, config: ServeConfig) -> Self {
        Self::build(db, config, None, None)
    }

    /// Starts a service with observability attached: `metrics` receives
    /// the serving counters/histograms (and the cache counters), `sink`
    /// receives one [`ServeEvent`] span per request stage.
    pub fn with_observability(
        db: Database,
        config: ServeConfig,
        metrics: Option<SharedRegistry>,
        sink: Option<SharedSink>,
    ) -> Self {
        Self::build(db, config, metrics, sink)
    }

    fn build(
        db: Database,
        config: ServeConfig,
        metrics: Option<SharedRegistry>,
        sink: Option<SharedSink>,
    ) -> Self {
        let workers = config.workers.max(1);
        let mut cache = RouteCache::new(config.cache_capacity);
        if let Some(m) = &metrics {
            cache = cache.with_metrics(m.clone());
        }
        let shared = Arc::new(Shared {
            epochs: EpochDb::new(db),
            cache,
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            queue_capacity: config.queue_capacity.max(1),
            algorithm: config.algorithm,
            default_deadline_ticks: config.default_deadline_ticks.max(1),
            deadline_spend_fraction: config.deadline_spend_fraction.clamp(0.05, 1.0),
            retry_unit_ticks: config.retry_unit_ticks.max(1),
            stale_max_age: config.stale_max_age,
            breakers: Breakers {
                storage: CircuitBreaker::new(config.breaker),
                landmarks: CircuitBreaker::new(config.breaker),
                hierarchy: CircuitBreaker::new(config.breaker),
            },
            clock: AtomicU64::new(0),
            next_request: AtomicU64::new(0),
            metrics,
            sink,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                sync::thread::Builder::new()
                    .name(format!("atis-serve-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    // Startup-only: no request is admitted before the pool
                    // exists, so a spawn failure aborts construction here,
                    // never a client request.
                    // analyze::allow(panic-hygiene): startup-time spawn failure is fatal by design
                    .expect("spawn worker thread")
            })
            .collect();
        RouteService {
            shared,
            workers: handles,
        }
    }

    /// The worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The algorithm every request runs.
    pub fn algorithm(&self) -> Algorithm {
        self.shared.algorithm
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epochs.epoch()
    }

    /// The current virtual time, in ticks. Advances with admitted work
    /// (one tick per dequeue plus one per Table 4A cost unit completed),
    /// never with wall time.
    pub fn now_ticks(&self) -> u64 {
        self.shared.now()
    }

    /// The current `(epoch, database)` snapshot — for read-only side
    /// queries (`EVAL`) that must see one consistent epoch.
    pub fn snapshot(&self) -> Snapshot {
        self.shared.epochs.snapshot()
    }

    /// The route cache (counters, capacity).
    pub fn cache(&self) -> &RouteCache {
        &self.shared.cache
    }

    /// The state of a named circuit breaker (`"storage"`,
    /// `"landmarks"`, `"hierarchy"`); `None` for unknown names.
    pub fn breaker_state(&self, resource: &str) -> Option<BreakerState> {
        match resource {
            "storage" => Some(self.shared.breakers.storage.state()),
            "landmarks" => Some(self.shared.breakers.landmarks.state()),
            "hierarchy" => Some(self.shared.breakers.hierarchy.state()),
            _ => None,
        }
    }

    /// Submits an interactive request with the default deadline.
    ///
    /// # Errors
    /// [`ServeError::Shed`] when admission sheds the request;
    /// [`ServeError::ShuttingDown`] after the service started closing.
    pub fn submit(&self, from: NodeId, to: NodeId) -> Result<Ticket, ServeError> {
        self.submit_with(from, to, RequestClass::Interactive, None)
    }

    /// Submits a request with an explicit class and (optionally) an
    /// explicit deadline in virtual ticks from now.
    ///
    /// Under pressure the admission controller sheds in value order:
    /// already-expired queued work first (either class), then the
    /// oldest-deadline bulk request if the newcomer is interactive, and
    /// only then the newcomer itself.
    ///
    /// # Errors
    /// [`ServeError::Shed`] when the request itself is shed;
    /// [`ServeError::ShuttingDown`] after the service started closing.
    pub fn submit_with(
        &self,
        from: NodeId,
        to: NodeId,
        class: RequestClass,
        deadline_ticks: Option<u64>,
    ) -> Result<Ticket, ServeError> {
        let id = self.shared.next_request.fetch_add(1, Ordering::Relaxed);
        let now = self.shared.now();
        let deadline = Deadline {
            expires_at: now
                + deadline_ticks
                    .unwrap_or(self.shared.default_deadline_ticks)
                    .max(1),
        };
        let mut victims: Vec<(Job, ShedReason)> = Vec::new();
        let mut queue = self.shared.lock_queue();
        if queue.closed {
            return Err(ServeError::ShuttingDown);
        }
        if queue.len() >= self.shared.queue_capacity {
            for job in queue.drain_expired(now) {
                victims.push((job, ShedReason::DeadlineExpired));
            }
        }
        if queue.len() >= self.shared.queue_capacity && class == RequestClass::Interactive {
            if let Some(job) = queue.displace_bulk() {
                victims.push((job, ShedReason::Displaced));
            }
        }
        if queue.len() >= self.shared.queue_capacity {
            let depth = queue.len();
            drop(queue);
            for (job, reason) in victims {
                self.shared.shed_job(&job, reason, depth);
            }
            let retry_after = (depth as u64).max(1) * self.shared.retry_unit_ticks;
            self.shared.inc("serve_shed_total");
            self.shared.emit(ServeEvent::Shed {
                request: id,
                reason: ShedReason::QueueFull.label().to_string(),
                retry_after,
                queue_depth: depth as u64,
            });
            return Err(ServeError::Shed {
                reason: ShedReason::QueueFull,
                retry_after,
                queue_depth: depth,
            });
        }
        let ticket = Ticket {
            id,
            inner: Arc::new(TicketInner::default()),
        };
        let job = Job {
            id,
            from,
            to,
            class,
            deadline,
            submitted: Instant::now(),
            ticket: ticket.inner.clone(),
        };
        match class {
            RequestClass::Interactive => queue.interactive.push_back(job),
            RequestClass::Bulk => queue.bulk.push_back(job),
        }
        let depth = queue.len();
        drop(queue);
        for (job, reason) in victims {
            self.shared.shed_job(&job, reason, depth);
        }
        self.shared.available.notify_one();
        self.shared.observe("serve_queue_depth", depth as f64);
        self.shared.emit(ServeEvent::Submitted {
            request: id,
            queue_depth: depth as u64,
        });
        Ok(ticket)
    }

    /// Submits an interactive request and blocks for the answer.
    ///
    /// # Errors
    /// [`ServeError::Shed`] / [`ServeError::ShuttingDown`] at admission,
    /// a deadline shed while queued or mid-run, or the run's own
    /// [`ServeError::Algorithm`] failure.
    pub fn route(&self, from: NodeId, to: NodeId) -> Result<RouteAnswer, ServeError> {
        self.submit(from, to)?.wait()
    }

    /// Submits with an explicit class/deadline and blocks for the
    /// answer.
    ///
    /// # Errors
    /// As [`RouteService::route`].
    pub fn route_with(
        &self,
        from: NodeId,
        to: NodeId,
        class: RequestClass,
        deadline_ticks: Option<u64>,
    ) -> Result<RouteAnswer, ServeError> {
        self.submit_with(from, to, class, deadline_ticks)?.wait()
    }

    /// Applies a traffic update: installs a new epoch copy-on-write and
    /// sweeps the route cache (see `cache.rs` for the invalidation rule;
    /// invalidated entries retire into the stale tier). Queries already
    /// running keep their snapshots; queries admitted after this call
    /// see the new costs. A failed landmark rebuild counts against the
    /// landmark circuit breaker.
    ///
    /// # Errors
    /// Fails for unknown endpoints or invalid costs (no epoch change).
    pub fn update_edge_cost(
        &self,
        u: NodeId,
        v: NodeId,
        cost: f64,
    ) -> Result<EpochUpdate, AlgorithmError> {
        let update = self.shared.epochs.update_edge_cost(u, v, cost)?;
        match update.hierarchy {
            HierarchyRefresh::RebuildFailed => {
                self.shared.inc("serve_hierarchy_rebuild_failed_total");
                let t = self.shared.breakers.hierarchy.on_failure(self.shared.now());
                self.shared.emit_transition("hierarchy", t);
            }
            HierarchyRefresh::Customized => {
                self.shared.inc("serve_hierarchy_customized_total");
                let t = self.shared.breakers.hierarchy.on_success();
                self.shared.emit_transition("hierarchy", t);
            }
            HierarchyRefresh::Recontracted => {
                self.shared.inc("serve_hierarchy_recontracted_total");
                let t = self.shared.breakers.hierarchy.on_success();
                self.shared.emit_transition("hierarchy", t);
            }
            HierarchyRefresh::None => {}
        }
        match update.landmarks {
            LandmarkRefresh::RebuildFailed => {
                let t = self.shared.breakers.landmarks.on_failure(self.shared.now());
                self.shared.emit_transition("landmarks", t);
            }
            LandmarkRefresh::Rebuilt | LandmarkRefresh::Patched => {
                let t = self.shared.breakers.landmarks.on_success();
                self.shared.emit_transition("landmarks", t);
            }
            _ => {}
        }
        let (invalidated, promoted) =
            self.shared
                .cache
                .apply_update(u, v, update.new_cost, update.epoch);
        self.shared.inc("serve_epoch_installs_total");
        self.shared.emit(ServeEvent::EpochInstalled {
            epoch: update.epoch,
            updated_edges: update.updated as u64,
            invalidated,
            promoted,
        });
        Ok(update)
    }
}

impl Drop for RouteService {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.lock_queue();
            queue.closed = true;
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(job) = queue.pop() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = sync::wait(&shared.available, queue);
            }
        };
        let queue_wait = job.submitted.elapsed();
        shared.observe("serve_queue_wait_seconds", queue_wait.as_secs_f64());
        let now = shared.advance(1);

        // A deadline that passed while the request was queued: shed it
        // without spending a single block read on it.
        if job.deadline.expired(now) {
            shared.shed_job(&job, ShedReason::DeadlineExpired, 0);
            continue;
        }

        let snapshot = shared.epochs.snapshot();
        shared.emit(ServeEvent::Started {
            request: job.id,
            worker: worker as u64,
            epoch: snapshot.epoch,
        });

        let started = Instant::now();
        let (outcome, consumed) = execute(shared, &snapshot, &job, now);
        let service_time = started.elapsed();
        shared.observe("serve_service_seconds", service_time.as_secs_f64());
        shared.inc("serve_requests_total");
        shared.inc(&format!("serve_worker_{worker}_requests_total"));
        // The run ticks the virtual clock by what it consumed whether it
        // completed or died: a cost-budget abort burned its whole
        // allowance before the meter fired, and any other failed run is
        // charged a one-unit floor — so breaker open-windows and queued
        // deadlines keep progressing under fault storms instead of
        // freezing while every run fails.
        shared.advance(consumed);

        let answer = outcome.map(|exec| {
            if let RouteOutcome::Stale { age } = exec.outcome {
                shared.inc("serve_stale_served_total");
                shared.emit(ServeEvent::StaleServed {
                    request: job.id,
                    epoch: exec.epoch,
                    age,
                });
            }
            if let RouteOutcome::Degraded { .. } = exec.outcome {
                shared.inc("serve_degraded_total");
            }
            shared.emit(ServeEvent::Completed {
                request: job.id,
                worker: worker as u64,
                epoch: exec.epoch,
                cached: exec.outcome == RouteOutcome::CacheHit,
                found: exec.path.is_some(),
            });
            RouteAnswer {
                path: exec.path,
                epoch: exec.epoch,
                outcome: exec.outcome,
                deadline: job.deadline,
                class: job.class,
                cached: exec.outcome == RouteOutcome::CacheHit,
                iterations: exec.iterations,
                cost_units: exec.cost_units,
                queue_wait,
                service_time,
                worker,
            }
        });
        match answer {
            Err(ServeError::Shed {
                reason,
                retry_after,
                queue_depth,
            }) => {
                // A mid-run shed already carries its true back-off hint
                // (the breaker's remaining countdown, a deadline
                // renewal) and its consumed cost was metered above:
                // resolve it as-is instead of recomputing the hint from
                // queue depth.
                shared.resolve_shed(&job, reason, retry_after, queue_depth);
            }
            other => {
                if other.is_err() {
                    shared.inc("serve_failed_total");
                }
                job.ticket.resolve(other);
            }
        }
    }
}

/// What one executed request produced.
struct Exec {
    path: Option<Path>,
    outcome: RouteOutcome,
    epoch: u64,
    iterations: u64,
    cost_units: f64,
}

/// Cost units rounded up to whole virtual-clock ticks.
fn ticks(cost_units: f64) -> u64 {
    cost_units.max(0.0).ceil() as u64
}

/// Answers one job against its pinned snapshot: cache, then the degrade
/// ladder (primary → v3 on landmark trouble → Dijkstra on storage
/// trouble → the stale tier), under the deadline-derived cost budget.
///
/// Also returns the cost-unit ticks the attempt consumed — exact for
/// completed runs and cost-budget aborts (which burned their whole
/// allowance before the meter fired), a one-unit floor for failures
/// whose partial spend is unknowable — so the worker can meter the
/// virtual clock for aborted work too, not just completed work.
fn execute(
    shared: &Shared,
    snapshot: &Snapshot,
    job: &Job,
    now: u64,
) -> (Result<Exec, ServeError>, u64) {
    if let Some(hit) = shared.cache.lookup(job.from, job.to, snapshot.epoch) {
        shared.emit(ServeEvent::CacheHit {
            request: job.id,
            epoch: snapshot.epoch,
        });
        let consumed = ticks(hit.cost_units);
        return (
            Ok(Exec {
                path: Some(hit.path),
                outcome: RouteOutcome::CacheHit,
                epoch: snapshot.epoch,
                iterations: hit.iterations,
                cost_units: hit.cost_units,
            }),
            consumed,
        );
    }

    // The deadline-derived budget: the run may spend at most
    // `deadline_spend_fraction` of the remaining ticks as cost units,
    // intersected with the database's own standing budgets.
    let remaining = job.deadline.remaining(now);
    let allowance = (remaining as f64) * shared.deadline_spend_fraction;
    let budgets = snapshot
        .db
        .budgets()
        .min_with(Budgets::unlimited().with_max_cost_units(allowance.max(1.0)));
    let deadline_binding = budgets.max_cost_units == Some(allowance.max(1.0));

    // Storage breaker open: skip every database rung, serve stale or
    // refuse with the breaker's countdown.
    let (storage_admission, t) = shared.breakers.storage.admit(now);
    shared.emit_transition("storage", t);
    if let Admission::Deny { retry_after } = storage_admission {
        let result = stale_or_shed(shared, snapshot, job, retry_after);
        let consumed = result.as_ref().map_or(0, |exec| ticks(exec.cost_units));
        return (result, consumed);
    }
    // From here this request may hold the storage breaker's half-open
    // probe slot. The guard resolves it exactly once: a verdict below
    // defuses it, and every other exit path (deadline shed, an error
    // that says nothing about storage) releases the slot on drop, so an
    // aborted probe can never wedge the breaker half-open.
    let mut storage_probe = ProbeGuard::new(&shared.breakers.storage, storage_admission);

    // Rung 0: the configured algorithm, unless a breaker denies its
    // preprocessed artifact — an open hierarchy breaker starts a v5
    // service one rung down (v4 when the snapshot carries landmark
    // tables, v3 otherwise), an open landmark breaker starts v4 at v3.
    // Admission (not a bare state read) drives the machine, so an open
    // breaker whose window has elapsed half-opens here and this request
    // runs the guarded rung as the probe that can re-close it.
    let needs_hierarchy = shared.algorithm == Algorithm::AStar(AStarVersion::V5);
    let (hierarchy_admission, t) = if needs_hierarchy {
        shared.breakers.hierarchy.admit(now)
    } else {
        (Admission::Allow, None)
    };
    shared.emit_transition("hierarchy", t);
    let mut hierarchy_probe = ProbeGuard::new(&shared.breakers.hierarchy, hierarchy_admission);
    let hierarchy_denied = matches!(hierarchy_admission, Admission::Deny { .. });
    // Where a v5 request lands when its overlay is unusable.
    let below_v5: (&'static str, Algorithm) = if snapshot.db.landmarks().is_some() {
        ("astar-v4", Algorithm::AStar(AStarVersion::V4))
    } else {
        ("astar-v3", Algorithm::AStar(AStarVersion::V3))
    };
    let needs_landmarks = shared.algorithm == Algorithm::AStar(AStarVersion::V4)
        || (hierarchy_denied && below_v5.1 == Algorithm::AStar(AStarVersion::V4));
    let (landmark_admission, t) = if needs_landmarks {
        shared.breakers.landmarks.admit(now)
    } else {
        (Admission::Allow, None)
    };
    shared.emit_transition("landmarks", t);
    let mut landmark_probe = ProbeGuard::new(&shared.breakers.landmarks, landmark_admission);
    let landmarks_denied = matches!(landmark_admission, Admission::Deny { .. });
    let (mut rung, mut result) = if landmarks_denied {
        (
            "astar-v3",
            snapshot.db.run_with_budgets(
                Algorithm::AStar(AStarVersion::V3),
                job.from,
                job.to,
                budgets,
            ),
        )
    } else if hierarchy_denied {
        (
            below_v5.0,
            snapshot
                .db
                .run_with_budgets(below_v5.1, job.from, job.to, budgets),
        )
    } else {
        (
            "primary",
            snapshot
                .db
                .run_with_budgets(shared.algorithm, job.from, job.to, budgets),
        )
    };

    // Ticks consumed by failed rungs whose traces were discarded before
    // a later rung replaced them (exact spend is unknowable without
    // threading IoStats through errors, so each is a one-unit floor).
    let mut consumed: u64 = 0;

    // Hierarchy trouble (a missing or stale overlay): count it against
    // the hierarchy breaker, announce the degrade, and fall to the
    // strongest flat rung — still exact answers, just more expansions.
    let hierarchy_failure = match &result {
        Err(e @ AlgorithmError::HierarchyUnavailable(_)) => Some(e.to_string()),
        _ => None,
    };
    if let Some(reason) = hierarchy_failure {
        let t = hierarchy_probe.failure(now);
        shared.emit_transition("hierarchy", t);
        shared.inc("serve_hierarchy_degraded_total");
        shared.emit(ServeEvent::AlgorithmDegraded {
            request: job.id,
            from: rung.to_string(),
            to: below_v5.0.to_string(),
            reason,
            at_tick: now,
        });
        consumed += 1;
        rung = below_v5.0;
        result = snapshot
            .db
            .run_with_budgets(below_v5.1, job.from, job.to, budgets);
    } else if needs_hierarchy && !hierarchy_denied && result.is_ok() {
        let t = hierarchy_probe.success();
        shared.emit_transition("hierarchy", t);
    }

    // Landmark trouble: count it against the landmark breaker and fall
    // to v3 (exact, estimator degraded to Manhattan-family bounds).
    if let Err(AlgorithmError::LandmarksUnavailable(_)) = &result {
        let t = landmark_probe.failure(now);
        shared.emit_transition("landmarks", t);
        consumed += 1;
        rung = "astar-v3";
        result = snapshot.db.run_with_budgets(
            Algorithm::AStar(AStarVersion::V3),
            job.from,
            job.to,
            budgets,
        );
    } else if needs_landmarks && !landmarks_denied && result.is_ok() {
        let t = landmark_probe.success();
        shared.emit_transition("landmarks", t);
    }

    // Storage trouble: count it, then retry once on Dijkstra (transient
    // fault counters advance, and the plain algorithm reads fewer
    // blocks than an estimator-guided one under partial information).
    if let Err(AlgorithmError::Storage(_)) = &result {
        let t = storage_probe.failure(now);
        shared.emit_transition("storage", t);
        if matches!(
            shared.breakers.storage.state(),
            BreakerState::Closed | BreakerState::HalfOpen
        ) {
            consumed += 1;
            rung = "dijkstra";
            result = snapshot
                .db
                .run_with_budgets(Algorithm::Dijkstra, job.from, job.to, budgets);
        }
    }

    match result {
        Ok(trace) => {
            let t = storage_probe.success();
            shared.emit_transition("storage", t);
            let cost_units = trace.cost_units(snapshot.db.params());
            consumed += ticks(cost_units);
            if let Some(path) = &trace.path {
                shared.cache.insert(
                    job.from,
                    job.to,
                    CachedRoute {
                        path: path.clone(),
                        epoch: snapshot.epoch,
                        iterations: trace.iterations,
                        cost_units,
                    },
                );
            }
            let outcome = if rung == "primary" {
                RouteOutcome::Computed
            } else {
                RouteOutcome::Degraded { rung }
            };
            (
                Ok(Exec {
                    path: trace.path,
                    outcome,
                    epoch: snapshot.epoch,
                    iterations: trace.iterations,
                    cost_units,
                }),
                consumed,
            )
        }
        Err(e) => {
            // A cost-budget abort read blocks until it crossed its
            // allowance, so it is charged in full; any other failure's
            // partial spend is the floor.
            consumed += match &e {
                AlgorithmError::BudgetExceeded(BudgetKind::CostUnits) => {
                    budgets.max_cost_units.map_or(1, ticks).max(1)
                }
                _ => 1,
            };
            match e {
                AlgorithmError::BudgetExceeded(BudgetKind::CostUnits) if deadline_binding => {
                    // The deadline, not the database's own budget,
                    // stopped the run: this is a shed, not an algorithm
                    // failure — and no verdict on storage health, so a
                    // held probe slot is released by the guard.
                    (
                        Err(ServeError::Shed {
                            reason: ShedReason::DeadlineExpired,
                            retry_after: shared.default_deadline_ticks,
                            queue_depth: 0,
                        }),
                        consumed,
                    )
                }
                e @ AlgorithmError::Storage(_) => {
                    let t = storage_probe.failure(now);
                    shared.emit_transition("storage", t);
                    let result = match stale_or_shed(shared, snapshot, job, shared.retry_unit_ticks)
                    {
                        Ok(exec) => Ok(exec),
                        Err(ServeError::Shed { .. }) => Err(ServeError::from(e)),
                        Err(other) => Err(other),
                    };
                    if let Ok(exec) = &result {
                        consumed += ticks(exec.cost_units);
                    }
                    (result, consumed)
                }
                e => (Err(ServeError::from(e)), consumed),
            }
        }
    }
}

/// The ladder's last rung: a stale-tier answer tagged with its age, or a
/// typed breaker-open shed when even that is empty.
fn stale_or_shed(
    shared: &Shared,
    snapshot: &Snapshot,
    job: &Job,
    retry_after: u64,
) -> Result<Exec, ServeError> {
    if let Some((route, age)) =
        shared
            .cache
            .lookup_stale(job.from, job.to, snapshot.epoch, shared.stale_max_age)
    {
        return Ok(Exec {
            path: Some(route.path),
            outcome: RouteOutcome::Stale { age },
            epoch: route.epoch,
            iterations: route.iterations,
            cost_units: route.cost_units,
        });
    }
    Err(ServeError::Shed {
        reason: ShedReason::BreakerOpen,
        retry_after: retry_after.max(1),
        queue_depth: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_graph::{CostModel, Grid, QueryKind};
    use atis_obs::{MetricsRegistry, RingSink};

    fn grid_service(config: ServeConfig) -> (RouteService, Grid) {
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let db = Database::open(grid.graph()).unwrap();
        (RouteService::new(db, config), grid)
    }

    #[test]
    fn answers_match_a_direct_run() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(2));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let answer = service.route(s, d).unwrap();
        assert_eq!(answer.epoch, 0);
        assert!(!answer.cached);
        assert_eq!(answer.outcome, RouteOutcome::Computed);
        assert_eq!(answer.class, RequestClass::Interactive);

        let oracle = Database::open(grid.graph()).unwrap();
        let expected = oracle.run(service.algorithm(), s, d).unwrap();
        assert_eq!(answer.path, expected.path);
        assert_eq!(answer.iterations, expected.iterations);
    }

    #[test]
    fn second_identical_request_is_served_from_cache_bit_identically() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(1));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let fresh = service.route(s, d).unwrap();
        let cached = service.route(s, d).unwrap();
        assert!(!fresh.cached && cached.cached);
        assert_eq!(cached.outcome, RouteOutcome::CacheHit);
        assert_eq!(fresh.path, cached.path);
        assert_eq!(fresh.iterations, cached.iterations);
        assert_eq!(fresh.cost_units.to_bits(), cached.cost_units.to_bits());
        let stats = service.cache().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn updates_bump_the_epoch_and_change_answers() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(2));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let before = service.route(s, d).unwrap();
        let path = before.path.clone().unwrap();
        let (u, v) = path.hops().next().unwrap();
        let update = service.update_edge_cost(u, v, 500.0).unwrap();
        assert_eq!(update.epoch, 1);
        let after = service.route(s, d).unwrap();
        assert_eq!(after.epoch, 1);
        assert!(!after.cached, "the jammed entry must have been invalidated");
        assert_ne!(before.path, after.path);
    }

    #[test]
    fn full_queue_sheds_with_a_typed_reason() {
        // One worker, capacity 1: park the worker on a long request by
        // flooding; at least one submission must be shed.
        let (service, grid) = grid_service(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_cache_capacity(0),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let mut tickets = Vec::new();
        let mut shed = 0;
        for _ in 0..50 {
            match service.submit(s, d) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Shed {
                    reason,
                    retry_after,
                    queue_depth,
                }) => {
                    assert_eq!(reason, ShedReason::QueueFull);
                    assert_eq!(queue_depth, 1);
                    assert!(retry_after >= 1);
                    shed += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(
            shed > 0,
            "a capacity-1 queue must shed under a 50-request burst"
        );
        for t in tickets {
            assert!(t.wait().unwrap().path.is_some());
        }
    }

    #[test]
    fn interactive_requests_displace_queued_bulk_work() {
        let (service, grid) = grid_service(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(2)
                .with_cache_capacity(0),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        // Fill the queue with bulk work (plus whatever the worker takes).
        let bulk: Vec<Ticket> = (0..12)
            .filter_map(|_| service.submit_with(s, d, RequestClass::Bulk, None).ok())
            .collect();
        // Interactive submissions displace queued bulk jobs until the
        // queue holds no more bulk to displace.
        let mut displaced_observed = 0;
        let mut interactive = Vec::new();
        for _ in 0..12 {
            if let Ok(t) = service.submit(s, d) {
                interactive.push(t);
            }
        }
        for t in bulk {
            match t.wait() {
                Ok(answer) => assert!(answer.path.is_some()),
                Err(ServeError::Shed { reason, .. }) => {
                    assert!(
                        reason == ShedReason::Displaced || reason == ShedReason::DeadlineExpired,
                        "bulk sheds must be displacement/deadline, got {reason:?}"
                    );
                    displaced_observed += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(
            displaced_observed > 0,
            "interactive pressure must displace queued bulk work"
        );
        for t in interactive {
            assert!(t.wait().is_ok(), "admitted interactive work completes");
        }
    }

    #[test]
    fn expired_deadlines_shed_at_dequeue_without_running() {
        let (service, grid) = grid_service(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(64)
                .with_cache_capacity(0),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        // Burst enough work that the virtual clock (advanced by each
        // completed run's cost units) passes the tiny deadline of the
        // later requests while they queue.
        let tickets: Vec<Ticket> = (0..24)
            .filter_map(|_| {
                service
                    .submit_with(s, d, RequestClass::Interactive, Some(2))
                    .ok()
            })
            .collect();
        let mut expired = 0;
        for t in tickets {
            match t.wait() {
                Ok(answer) => assert!(answer.path.is_some()),
                Err(ServeError::Shed { reason, .. }) => {
                    assert_eq!(reason, ShedReason::DeadlineExpired);
                    expired += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(
            expired > 0,
            "2-tick deadlines must expire while queued behind real runs"
        );
    }

    #[test]
    fn drop_drains_admitted_requests() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(1));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let tickets: Vec<Ticket> = (0..8).map(|_| service.submit(s, d).unwrap()).collect();
        drop(service);
        for t in tickets {
            assert!(
                t.wait().unwrap().path.is_some(),
                "admitted requests must be answered"
            );
        }
    }

    #[test]
    fn unknown_endpoints_fail_per_request_not_per_service() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(2));
        let err = service.route(NodeId(9999), NodeId(0)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Algorithm(AlgorithmError::UnknownSource(_))
        ));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        assert!(
            service.route(s, d).is_ok(),
            "the pool must survive failed requests"
        );
    }

    #[test]
    fn storage_breaker_opens_and_serves_stale_then_recovers() {
        use atis_storage::FaultPlan;
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let (s, d) = grid.query_pair(QueryKind::Diagonal);

        // Replay the warm-up against an inert-fault oracle to learn
        // exactly how many physical reads it consumes, so the brownout
        // window can be placed deterministically *after* it.
        let oracle = Database::open(grid.graph())
            .unwrap()
            .with_fault_plan(FaultPlan::inert(3));
        let trace = oracle.run(ServeConfig::default().algorithm, s, d).unwrap();
        let path = trace.path.clone().unwrap();
        let (u, v) = path.hops().next().unwrap();
        let mut updated = oracle.clone();
        updated.update_edge_cost(u, v, path.cost + 100.0).unwrap();
        let warm_reads = oracle.faults().unwrap().lock().unwrap().reads();

        // The brownout: every read after the warm-up fails, for a
        // 40-operation window, then storage recovers.
        let window = (warm_reads + 1, warm_reads + 40);
        let db = Database::open(grid.graph())
            .unwrap()
            .with_fault_plan(FaultPlan::inert(3).with_read_failure_window(window.0, window.1, 1.0));
        let service = RouteService::new(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_breaker(BreakerConfig {
                    failure_threshold: 2,
                    open_ticks: 50,
                    probes: 1,
                }),
        );

        // Warm the cache, then retire the entry so the stale tier has it.
        let fresh = service.route(s, d).unwrap();
        assert_eq!(fresh.outcome, RouteOutcome::Computed);
        service.update_edge_cost(u, v, path.cost + 100.0).unwrap();

        // Drive the storm: typed failures trip the breaker, the open
        // breaker stale-serves, probes burn through the fault window one
        // read at a time, and the first probe past the window re-closes
        // the breaker.
        let mut stale_seen = 0;
        let mut opened = false;
        for _ in 0..400 {
            match service.route(s, d) {
                Ok(answer) => {
                    if let RouteOutcome::Stale { age } = answer.outcome {
                        assert!(age >= 1);
                        assert!(answer.epoch < service.epoch());
                        stale_seen += 1;
                    }
                }
                Err(ServeError::Shed { reason, .. }) => {
                    assert_eq!(reason, ShedReason::BreakerOpen);
                }
                Err(ServeError::Algorithm(AlgorithmError::Storage(_))) => {}
                Err(e) => panic!("unexpected {e}"),
            }
            if matches!(
                service.breaker_state("storage"),
                Some(BreakerState::Open { .. })
            ) {
                opened = true;
            }
            if opened && service.breaker_state("storage") == Some(BreakerState::Closed) {
                break;
            }
        }
        assert!(opened, "repeated storage faults must open the breaker");
        assert!(
            stale_seen > 0,
            "an open breaker with a retired route must stale-serve"
        );
        assert_eq!(
            service.breaker_state("storage"),
            Some(BreakerState::Closed),
            "the breaker must re-close once the brownout ends"
        );
    }

    #[test]
    fn metrics_and_spans_cover_the_request_life_cycle() {
        let registry = MetricsRegistry::shared();
        let ring = RingSink::shared(256);
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let db = Database::open(grid.graph()).unwrap();
        let service = RouteService::with_observability(
            db,
            ServeConfig::default().with_workers(1),
            Some(registry.clone()),
            Some(ring.clone() as SharedSink),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        service.route(s, d).unwrap();
        service.route(s, d).unwrap();
        let path = service.route(s, d).unwrap().path.unwrap();
        let (u, v) = path.hops().next().unwrap();
        service.update_edge_cost(u, v, 400.0).unwrap();

        assert_eq!(registry.counter("serve_requests_total"), 3);
        assert_eq!(registry.counter("serve_worker_0_requests_total"), 3);
        assert_eq!(registry.counter("serve_epoch_installs_total"), 1);
        assert_eq!(registry.counter("cache_hits_total"), 2);
        assert_eq!(registry.counter("cache_misses_total"), 1);
        assert!(registry.counter("cache_invalidations_total") >= 1);
        assert!(
            registry
                .histogram("serve_queue_wait_seconds")
                .unwrap()
                .count
                >= 3
        );
        assert!(registry.histogram("serve_service_seconds").unwrap().count >= 3);

        let events = ring.events();
        let json: Vec<String> = events.iter().map(|e| e.to_json()).collect();
        for kind in [
            "serve_submitted",
            "serve_started",
            "serve_cache_hit",
            "serve_completed",
            "serve_epoch_installed",
        ] {
            assert!(
                json.iter()
                    .any(|j| j.contains(&format!(r#""type":"{kind}""#))),
                "missing {kind} span in {json:#?}"
            );
        }
    }

    #[test]
    fn shed_events_and_counters_fire_on_queue_full() {
        let registry = MetricsRegistry::shared();
        let ring = RingSink::shared(256);
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let db = Database::open(grid.graph()).unwrap();
        let service = RouteService::with_observability(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_cache_capacity(0),
            Some(registry.clone()),
            Some(ring.clone() as SharedSink),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let mut tickets = Vec::new();
        let mut shed = 0;
        for _ in 0..40 {
            match service.submit(s, d) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Shed { .. }) => shed += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        for t in tickets {
            let _ = t.wait();
        }
        if shed > 0 {
            assert!(registry.counter("serve_shed_total") >= shed);
            let json: Vec<String> = ring.events().iter().map(|e| e.to_json()).collect();
            assert!(
                json.iter().any(|j| j.contains(r#""type":"serve_shed""#)),
                "shed spans must be emitted"
            );
        }
    }

    #[test]
    fn virtual_clock_advances_with_completed_work() {
        let (service, grid) = grid_service(
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0),
        );
        assert_eq!(service.now_ticks(), 0);
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let answer = service.route(s, d).unwrap();
        let after_one = service.now_ticks();
        assert!(
            after_one > answer.cost_units as u64,
            "clock {after_one} must cover the dequeue tick plus {} cost units",
            answer.cost_units
        );
        service.route(s, d).unwrap();
        assert!(service.now_ticks() > after_one);
    }

    #[test]
    fn a_tripped_landmark_breaker_recovers_through_query_probing() {
        use atis_preprocess::{LandmarkTables, PreprocessConfig};
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let tables = LandmarkTables::build(grid.graph(), PreprocessConfig::grid_default()).unwrap();
        let db = Database::open(grid.graph()).unwrap().with_landmarks(tables);
        let service = RouteService::new(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_algorithm(Algorithm::AStar(AStarVersion::V4))
                .with_breaker(BreakerConfig {
                    failure_threshold: 1,
                    open_ticks: 8,
                    probes: 1,
                }),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);

        // Trip the landmark breaker, exactly as a failed rebuild would.
        let tripped = service
            .shared
            .breakers
            .landmarks
            .on_failure(service.now_ticks());
        assert!(tripped.is_some(), "threshold 1 must trip on one failure");

        // While open, the ladder starts at v3.
        let degraded = service.route(s, d).unwrap();
        assert_eq!(
            degraded.outcome,
            RouteOutcome::Degraded { rung: "astar-v3" }
        );

        // Each served query advances the virtual clock; once the open
        // window elapses, admission half-opens the breaker, a request
        // probes v4, and its success re-closes the machine — the
        // breaker must not stay open forever after landmarks recover.
        let mut recovered = false;
        for _ in 0..64 {
            if service.route(s, d).unwrap().outcome == RouteOutcome::Computed {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "an elapsed open window must let v4 probe back");
        assert_eq!(
            service.breaker_state("landmarks"),
            Some(BreakerState::Closed)
        );
    }

    #[test]
    fn a_stale_hierarchy_degrades_v5_to_v4_with_a_typed_event() {
        use atis_hierarchy::{Hierarchy, HierarchyConfig};
        use atis_preprocess::{LandmarkTables, PreprocessConfig};
        let registry = MetricsRegistry::shared();
        let ring = RingSink::shared(256);
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        // Overlay built on the pristine grid, landmarks on the mutated
        // copy the service actually runs: v5 fails typed (stale), the
        // ladder lands on v4, and the answer is still exact.
        let overlay = Hierarchy::build(grid.graph(), HierarchyConfig::paper()).unwrap();
        let mut changed = grid.graph().clone();
        changed
            .set_edge_cost(grid.node_at(2, 2), grid.node_at(2, 3), 9.0)
            .unwrap();
        let tables = LandmarkTables::build(&changed, PreprocessConfig::grid_default()).unwrap();
        let db = Database::open(&changed)
            .unwrap()
            .with_hierarchy(overlay)
            .with_landmarks(tables);
        let service = RouteService::with_observability(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_algorithm(Algorithm::AStar(AStarVersion::V5)),
            Some(registry.clone()),
            Some(ring.clone() as SharedSink),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let answer = service.route(s, d).unwrap();
        assert_eq!(answer.outcome, RouteOutcome::Degraded { rung: "astar-v4" });
        let oracle = atis_algorithms::memory::dijkstra_pair(&changed, s, d).unwrap();
        assert!((answer.path.unwrap().cost - oracle.cost).abs() < 1e-3);
        assert_eq!(registry.counter("serve_hierarchy_degraded_total"), 1);
        assert_eq!(registry.counter("serve_degraded_total"), 1);
        let json: Vec<String> = ring.events().iter().map(|e| e.to_json()).collect();
        let degrade = json
            .iter()
            .find(|j| j.contains(r#""type":"serve_algorithm_degraded""#))
            .expect("the v5 -> v4 fall must be announced");
        assert!(degrade.contains(r#""from":"primary""#), "{degrade}");
        assert!(degrade.contains(r#""to":"astar-v4""#), "{degrade}");
        assert!(degrade.contains("stale"), "{degrade}");
    }

    #[test]
    fn a_stale_hierarchy_without_landmarks_degrades_v5_to_v3() {
        use atis_hierarchy::{Hierarchy, HierarchyConfig};
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let overlay = Hierarchy::build(grid.graph(), HierarchyConfig::paper()).unwrap();
        let mut changed = grid.graph().clone();
        changed
            .set_edge_cost(grid.node_at(2, 2), grid.node_at(2, 3), 9.0)
            .unwrap();
        let db = Database::open(&changed).unwrap().with_hierarchy(overlay);
        let service = RouteService::new(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_algorithm(Algorithm::AStar(AStarVersion::V5)),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let answer = service.route(s, d).unwrap();
        assert_eq!(answer.outcome, RouteOutcome::Degraded { rung: "astar-v3" });
        let oracle = atis_algorithms::memory::dijkstra_pair(&changed, s, d).unwrap();
        assert!((answer.path.unwrap().cost - oracle.cost).abs() < 1e-3);
    }

    #[test]
    fn a_tripped_hierarchy_breaker_recovers_through_query_probing() {
        use atis_hierarchy::{Hierarchy, HierarchyConfig};
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let overlay = Hierarchy::build(grid.graph(), HierarchyConfig::paper()).unwrap();
        let db = Database::open(grid.graph()).unwrap().with_hierarchy(overlay);
        let service = RouteService::new(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_algorithm(Algorithm::AStar(AStarVersion::V5))
                .with_breaker(BreakerConfig {
                    failure_threshold: 1,
                    open_ticks: 8,
                    probes: 1,
                }),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);

        // Trip the hierarchy breaker, exactly as a failed re-contraction
        // would.
        let tripped = service
            .shared
            .breakers
            .hierarchy
            .on_failure(service.now_ticks());
        assert!(tripped.is_some(), "threshold 1 must trip on one failure");

        // While open, the ladder starts below v5 (no landmark tables
        // here, so at v3).
        let degraded = service.route(s, d).unwrap();
        assert_eq!(
            degraded.outcome,
            RouteOutcome::Degraded { rung: "astar-v3" }
        );

        // Once the open window elapses, admission half-opens the
        // breaker, a request probes v5, and its success re-closes it.
        let mut recovered = false;
        for _ in 0..64 {
            if service.route(s, d).unwrap().outcome == RouteOutcome::Computed {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "an elapsed open window must let v5 probe back");
        assert_eq!(
            service.breaker_state("hierarchy"),
            Some(BreakerState::Closed)
        );
    }

    #[test]
    fn updates_maintain_the_hierarchy_and_count_refreshes() {
        use atis_hierarchy::{Hierarchy, HierarchyConfig};
        let registry = MetricsRegistry::shared();
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let overlay = Hierarchy::build(grid.graph(), HierarchyConfig::paper()).unwrap();
        let db = Database::open(grid.graph()).unwrap().with_hierarchy(overlay);
        let service = RouteService::with_observability(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_algorithm(Algorithm::AStar(AStarVersion::V5)),
            Some(registry.clone()),
            None,
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let (a, b) = (grid.node_at(2, 2), grid.node_at(2, 3));

        // Congestion: customize. The very next request runs v5 at full
        // fidelity against the re-priced overlay.
        let up = service.update_edge_cost(a, b, 9.0).unwrap();
        assert_eq!(up.hierarchy, HierarchyRefresh::Customized);
        assert_eq!(registry.counter("serve_hierarchy_customized_total"), 1);
        let answer = service.route(s, d).unwrap();
        assert_eq!(answer.outcome, RouteOutcome::Computed);
        let snap = service.snapshot();
        let oracle = atis_algorithms::memory::dijkstra_pair(snap.db.graph(), s, d).unwrap();
        assert!((answer.path.unwrap().cost - oracle.cost).abs() < 1e-9);

        // The jam clears: re-contract.
        let down = service.update_edge_cost(a, b, 1.0).unwrap();
        assert_eq!(down.hierarchy, HierarchyRefresh::Recontracted);
        assert_eq!(registry.counter("serve_hierarchy_recontracted_total"), 1);
        let answer = service.route(s, d).unwrap();
        assert_eq!(answer.outcome, RouteOutcome::Computed);
        assert_eq!(registry.counter("serve_hierarchy_degraded_total"), 0);
    }

    #[test]
    fn a_deadline_shed_probe_releases_the_storage_breaker_slot() {
        let (service, grid) = grid_service(
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_breaker(BreakerConfig {
                    failure_threshold: 1,
                    open_ticks: 64,
                    probes: 1,
                }),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);

        // Trip the storage breaker at tick 0: open until tick 64.
        let tripped = service.shared.breakers.storage.on_failure(0);
        assert!(tripped.is_some());

        // While open, requests shed with the breaker's *actual*
        // countdown (not the queue-depth retry formula), and each shed
        // still ticks the clock by its dequeue.
        match service.route(s, d) {
            Err(ServeError::Shed {
                reason,
                retry_after,
                ..
            }) => {
                assert_eq!(reason, ShedReason::BreakerOpen);
                assert!(
                    retry_after > 16,
                    "retry_after {retry_after} must be the breaker countdown, \
                     not the 16-tick retry unit"
                );
            }
            other => panic!("open breaker must shed, got {other:?}"),
        }
        while service.now_ticks() < 64 {
            let _ = service.route(s, d);
        }

        // The open window has elapsed: the next request is admitted as
        // the half-open probe, but its 3-tick deadline aborts the run
        // mid-expansion — a shed, with no verdict on storage health.
        let before = service.now_ticks();
        match service.route_with(s, d, RequestClass::Interactive, Some(3)) {
            Err(ServeError::Shed { reason, .. }) => {
                assert_eq!(
                    reason,
                    ShedReason::DeadlineExpired,
                    "the probe must be admitted (BreakerOpen would mean denied)"
                );
            }
            other => panic!("a 3-tick deadline must shed mid-run, got {other:?}"),
        }
        // The aborted run burned its whole cost allowance; the clock
        // must be charged for it (dequeue + ⌈allowance⌉), not just the
        // dequeue tick.
        assert!(
            service.now_ticks() >= before + 3,
            "aborted work must still meter the clock: {} -> {}",
            before,
            service.now_ticks()
        );

        // The aborted probe released its slot: the next request probes,
        // succeeds, and re-closes the breaker instead of being denied
        // by a permanently saturated half-open machine.
        let answer = service.route(s, d).unwrap();
        assert_eq!(answer.outcome, RouteOutcome::Computed);
        assert_eq!(service.breaker_state("storage"), Some(BreakerState::Closed));
    }
}
