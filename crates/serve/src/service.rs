//! The concurrent route service: bounded admission queue, fixed worker
//! pool, epoch snapshots, route cache.
//!
//! ## Request life cycle
//!
//! ```text
//! submit() ──admission──▶ bounded queue ──▶ worker i
//!    │ full? BUSY                             │ pin snapshot (epoch e)
//!    ▼                                        │ cache lookup (from,to,e)
//! Ticket::wait() ◀──────── answer ◀───────────┤ hit: serve cached
//!                                             └ miss: run algorithm,
//!                                               insert into cache
//! ```
//!
//! Admission control is reject-not-queue: when the submission queue holds
//! `queue_capacity` requests, [`RouteService::submit`] fails immediately
//! with [`ServeError::Busy`] instead of queueing unboundedly — the client
//! is told to back off *before* the server drowns, and latency for
//! admitted requests stays bounded by `queue_capacity / throughput`.
//!
//! Updates bypass the queue: [`RouteService::update_edge_cost`] installs
//! a new epoch copy-on-write (running queries keep their snapshots) and
//! sweeps the cache under the invalidation rule. Readers never block on
//! writers beyond the clone-and-swap window.

use crate::cache::{CachedRoute, RouteCache};
use crate::epoch::{EpochDb, EpochUpdate, Snapshot};
use crate::error::ServeError;
use crate::sync::{self, Arc, Condvar, Mutex, MutexGuard};
use atis_algorithms::{AStarVersion, Algorithm, AlgorithmError, Database};
use atis_graph::{NodeId, Path};
use atis_obs::{ServeEvent, SharedRegistry, SharedSink, TraceEvent};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

type JoinHandle = sync::thread::JoinHandle<()>;

/// Tuning knobs for a [`RouteService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing planner runs (≥ 1).
    pub workers: usize,
    /// Bounded submission-queue capacity; a full queue rejects with
    /// [`ServeError::Busy`] (≥ 1).
    pub queue_capacity: usize,
    /// Route-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Algorithm every `ROUTE` request runs.
    pub algorithm: Algorithm,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 1024,
            algorithm: Algorithm::AStar(AStarVersion::V3),
        }
    }
}

impl ServeConfig {
    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the submission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Overrides the route-cache capacity (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }
}

/// One answered route request.
#[derive(Debug, Clone)]
pub struct RouteAnswer {
    /// The route, or `None` when the destination is unreachable.
    pub path: Option<Path>,
    /// Epoch the answer is valid at: every edge cost the answer reflects
    /// comes from exactly this snapshot.
    pub epoch: u64,
    /// Whether the answer came from the route cache.
    pub cached: bool,
    /// Iterations of the (original) run.
    pub iterations: u64,
    /// Simulated I/O cost of the (original) run, Table 4A units.
    pub cost_units: f64,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Worker time (cache lookup + algorithm run).
    pub service_time: Duration,
    /// Pool index of the worker that served the request.
    pub worker: usize,
}

/// The pending-answer slot a submitted request blocks on.
#[derive(Debug, Default)]
struct TicketInner {
    slot: Mutex<Option<Result<RouteAnswer, ServeError>>>,
    ready: Condvar,
}

impl TicketInner {
    /// Designated acquirer for the answer slot (rank 4, the innermost
    /// lock in the declared order — see `sync.rs`).
    fn lock_slot(&self) -> MutexGuard<'_, Option<Result<RouteAnswer, ServeError>>> {
        sync::lock(&self.slot)
    }
}

/// A claim on a submitted request's future answer.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    inner: Arc<TicketInner>,
}

impl Ticket {
    /// The request id (monotonic per service, matches trace events).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the worker pool answers this request.
    pub fn wait(self) -> Result<RouteAnswer, ServeError> {
        let mut slot = self.inner.lock_slot();
        loop {
            if let Some(answer) = slot.take() {
                return answer;
            }
            slot = sync::wait(&self.inner.ready, slot);
        }
    }
}

struct Job {
    id: u64,
    from: NodeId,
    to: NodeId,
    submitted: Instant,
    ticket: Arc<TicketInner>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    epochs: EpochDb,
    cache: RouteCache,
    queue: Mutex<QueueState>,
    available: Condvar,
    queue_capacity: usize,
    algorithm: Algorithm,
    next_request: AtomicU64,
    metrics: Option<SharedRegistry>,
    sink: Option<SharedSink>,
}

impl Shared {
    /// Designated acquirer for the admission queue (rank 1, the
    /// outermost lock in the declared order — see `sync.rs`).
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        sync::lock(&self.queue)
    }

    fn emit(&self, event: ServeEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&TraceEvent::Serve(event));
        }
    }

    fn observe(&self, name: &str, value: f64) {
        if let Some(m) = &self.metrics {
            m.observe(name, value);
        }
    }

    fn inc(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.inc(name);
        }
    }
}

/// A pooled, cached, epoch-snapshotted route-serving engine.
///
/// Dropping the service closes admission, lets the workers drain every
/// already-admitted request (so no [`Ticket::wait`] deadlocks), and joins
/// the pool.
pub struct RouteService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle>,
}

impl std::fmt::Debug for RouteService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteService")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.shared.queue_capacity)
            .field("cache_capacity", &self.shared.cache.capacity())
            .field("algorithm", &self.shared.algorithm)
            .finish()
    }
}

impl RouteService {
    /// Starts a service over `db` with `config`. The database becomes
    /// epoch 0; `config.workers` threads start immediately.
    pub fn new(db: Database, config: ServeConfig) -> Self {
        Self::build(db, config, None, None)
    }

    /// Starts a service with observability attached: `metrics` receives
    /// the serving counters/histograms (and the cache counters), `sink`
    /// receives one [`ServeEvent`] span per request stage.
    pub fn with_observability(
        db: Database,
        config: ServeConfig,
        metrics: Option<SharedRegistry>,
        sink: Option<SharedSink>,
    ) -> Self {
        Self::build(db, config, metrics, sink)
    }

    fn build(
        db: Database,
        config: ServeConfig,
        metrics: Option<SharedRegistry>,
        sink: Option<SharedSink>,
    ) -> Self {
        let workers = config.workers.max(1);
        let mut cache = RouteCache::new(config.cache_capacity);
        if let Some(m) = &metrics {
            cache = cache.with_metrics(m.clone());
        }
        let shared = Arc::new(Shared {
            epochs: EpochDb::new(db),
            cache,
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            queue_capacity: config.queue_capacity.max(1),
            algorithm: config.algorithm,
            next_request: AtomicU64::new(0),
            metrics,
            sink,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                sync::thread::Builder::new()
                    .name(format!("atis-serve-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    // Startup-only: no request is admitted before the pool
                    // exists, so a spawn failure aborts construction here,
                    // never a client request.
                    // analyze::allow(panic-hygiene): startup-time spawn failure is fatal by design
                    .expect("spawn worker thread")
            })
            .collect();
        RouteService {
            shared,
            workers: handles,
        }
    }

    /// The worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The algorithm every request runs.
    pub fn algorithm(&self) -> Algorithm {
        self.shared.algorithm
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epochs.epoch()
    }

    /// The current `(epoch, database)` snapshot — for read-only side
    /// queries (`EVAL`) that must see one consistent epoch.
    pub fn snapshot(&self) -> Snapshot {
        self.shared.epochs.snapshot()
    }

    /// The route cache (counters, capacity).
    pub fn cache(&self) -> &RouteCache {
        &self.shared.cache
    }

    /// Submits a route request through admission control, returning a
    /// [`Ticket`] to wait on.
    ///
    /// # Errors
    /// [`ServeError::Busy`] when the bounded queue is full;
    /// [`ServeError::ShuttingDown`] after the service started closing.
    pub fn submit(&self, from: NodeId, to: NodeId) -> Result<Ticket, ServeError> {
        let id = self.shared.next_request.fetch_add(1, Ordering::Relaxed);
        let mut queue = self.shared.lock_queue();
        if queue.closed {
            return Err(ServeError::ShuttingDown);
        }
        if queue.jobs.len() >= self.shared.queue_capacity {
            let depth = queue.jobs.len();
            drop(queue);
            self.shared.inc("serve_rejected_total");
            self.shared.emit(ServeEvent::Rejected {
                request: id,
                queue_depth: depth as u64,
            });
            return Err(ServeError::Busy { queue_depth: depth });
        }
        let ticket = Ticket {
            id,
            inner: Arc::new(TicketInner::default()),
        };
        queue.jobs.push_back(Job {
            id,
            from,
            to,
            submitted: Instant::now(),
            ticket: ticket.inner.clone(),
        });
        let depth = queue.jobs.len();
        drop(queue);
        self.shared.available.notify_one();
        self.shared.observe("serve_queue_depth", depth as f64);
        self.shared.emit(ServeEvent::Submitted {
            request: id,
            queue_depth: depth as u64,
        });
        Ok(ticket)
    }

    /// Submits a request and blocks for the answer.
    ///
    /// # Errors
    /// [`ServeError::Busy`] / [`ServeError::ShuttingDown`] at admission,
    /// or the run's own [`ServeError::Algorithm`] failure.
    pub fn route(&self, from: NodeId, to: NodeId) -> Result<RouteAnswer, ServeError> {
        self.submit(from, to)?.wait()
    }

    /// Applies a traffic update: installs a new epoch copy-on-write and
    /// sweeps the route cache (see `cache.rs` for the invalidation rule).
    /// Queries already running keep their snapshots; queries admitted
    /// after this call see the new costs.
    ///
    /// # Errors
    /// Fails for unknown endpoints or invalid costs (no epoch change).
    pub fn update_edge_cost(
        &self,
        u: NodeId,
        v: NodeId,
        cost: f64,
    ) -> Result<EpochUpdate, AlgorithmError> {
        let update = self.shared.epochs.update_edge_cost(u, v, cost)?;
        let (invalidated, promoted) =
            self.shared
                .cache
                .apply_update(u, v, update.new_cost, update.epoch);
        self.shared.inc("serve_epoch_installs_total");
        self.shared.emit(ServeEvent::EpochInstalled {
            epoch: update.epoch,
            updated_edges: update.updated as u64,
            invalidated,
            promoted,
        });
        Ok(update)
    }
}

impl Drop for RouteService {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.lock_queue();
            queue.closed = true;
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.closed {
                    return;
                }
                queue = sync::wait(&shared.available, queue);
            }
        };
        let queue_wait = job.submitted.elapsed();
        shared.observe("serve_queue_wait_seconds", queue_wait.as_secs_f64());
        let snapshot = shared.epochs.snapshot();
        shared.emit(ServeEvent::Started {
            request: job.id,
            worker: worker as u64,
            epoch: snapshot.epoch,
        });

        let started = Instant::now();
        let outcome = execute(shared, &snapshot, &job);
        let service_time = started.elapsed();
        shared.observe("serve_service_seconds", service_time.as_secs_f64());
        shared.inc("serve_requests_total");
        shared.inc(&format!("serve_worker_{worker}_requests_total"));

        let answer = outcome.map(|(path, cached, iterations, cost_units)| {
            shared.emit(ServeEvent::Completed {
                request: job.id,
                worker: worker as u64,
                epoch: snapshot.epoch,
                cached,
                found: path.is_some(),
            });
            RouteAnswer {
                path,
                epoch: snapshot.epoch,
                cached,
                iterations,
                cost_units,
                queue_wait,
                service_time,
                worker,
            }
        });
        if answer.is_err() {
            shared.inc("serve_failed_total");
        }

        let mut slot = job.ticket.lock_slot();
        *slot = Some(answer);
        drop(slot);
        job.ticket.ready.notify_all();
    }
}

/// Answers one job against its pinned snapshot: cache first, then a full
/// algorithm run whose found path is inserted back.
#[allow(clippy::type_complexity)]
fn execute(
    shared: &Shared,
    snapshot: &Snapshot,
    job: &Job,
) -> Result<(Option<Path>, bool, u64, f64), ServeError> {
    if let Some(hit) = shared.cache.lookup(job.from, job.to, snapshot.epoch) {
        shared.emit(ServeEvent::CacheHit {
            request: job.id,
            epoch: snapshot.epoch,
        });
        return Ok((Some(hit.path), true, hit.iterations, hit.cost_units));
    }
    let trace = snapshot
        .db
        .run(shared.algorithm, job.from, job.to)
        .map_err(ServeError::from)?;
    let cost_units = trace.cost_units(snapshot.db.params());
    if let Some(path) = &trace.path {
        shared.cache.insert(
            job.from,
            job.to,
            CachedRoute {
                path: path.clone(),
                epoch: snapshot.epoch,
                iterations: trace.iterations,
                cost_units,
            },
        );
    }
    Ok((trace.path, false, trace.iterations, cost_units))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_graph::{CostModel, Grid, QueryKind};
    use atis_obs::{MetricsRegistry, RingSink};

    fn grid_service(config: ServeConfig) -> (RouteService, Grid) {
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let db = Database::open(grid.graph()).unwrap();
        (RouteService::new(db, config), grid)
    }

    #[test]
    fn answers_match_a_direct_run() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(2));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let answer = service.route(s, d).unwrap();
        assert_eq!(answer.epoch, 0);
        assert!(!answer.cached);

        let oracle = Database::open(grid.graph()).unwrap();
        let expected = oracle.run(service.algorithm(), s, d).unwrap();
        assert_eq!(answer.path, expected.path);
        assert_eq!(answer.iterations, expected.iterations);
    }

    #[test]
    fn second_identical_request_is_served_from_cache_bit_identically() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(1));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let fresh = service.route(s, d).unwrap();
        let cached = service.route(s, d).unwrap();
        assert!(!fresh.cached && cached.cached);
        assert_eq!(fresh.path, cached.path);
        assert_eq!(fresh.iterations, cached.iterations);
        assert_eq!(fresh.cost_units.to_bits(), cached.cost_units.to_bits());
        let stats = service.cache().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn updates_bump_the_epoch_and_change_answers() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(2));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let before = service.route(s, d).unwrap();
        let path = before.path.clone().unwrap();
        let (u, v) = path.hops().next().unwrap();
        let update = service.update_edge_cost(u, v, 500.0).unwrap();
        assert_eq!(update.epoch, 1);
        let after = service.route(s, d).unwrap();
        assert_eq!(after.epoch, 1);
        assert!(!after.cached, "the jammed entry must have been invalidated");
        assert_ne!(before.path, after.path);
    }

    #[test]
    fn full_queue_rejects_with_busy() {
        // One worker, capacity 1: park the worker on a long request by
        // flooding; at least one submission must be rejected.
        let (service, grid) = grid_service(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_cache_capacity(0),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let mut tickets = Vec::new();
        let mut busy = 0;
        for _ in 0..50 {
            match service.submit(s, d) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Busy { queue_depth }) => {
                    assert_eq!(queue_depth, 1);
                    busy += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(
            busy > 0,
            "a capacity-1 queue must reject under a 50-request burst"
        );
        for t in tickets {
            assert!(t.wait().unwrap().path.is_some());
        }
    }

    #[test]
    fn drop_drains_admitted_requests() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(1));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let tickets: Vec<Ticket> = (0..8).map(|_| service.submit(s, d).unwrap()).collect();
        drop(service);
        for t in tickets {
            assert!(
                t.wait().unwrap().path.is_some(),
                "admitted requests must be answered"
            );
        }
    }

    #[test]
    fn unknown_endpoints_fail_per_request_not_per_service() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(2));
        let err = service.route(NodeId(9999), NodeId(0)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Algorithm(AlgorithmError::UnknownSource(_))
        ));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        assert!(
            service.route(s, d).is_ok(),
            "the pool must survive failed requests"
        );
    }

    #[test]
    fn metrics_and_spans_cover_the_request_life_cycle() {
        let registry = MetricsRegistry::shared();
        let ring = RingSink::shared(256);
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let db = Database::open(grid.graph()).unwrap();
        let service = RouteService::with_observability(
            db,
            ServeConfig::default().with_workers(1),
            Some(registry.clone()),
            Some(ring.clone() as SharedSink),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        service.route(s, d).unwrap();
        service.route(s, d).unwrap();
        let path = service.route(s, d).unwrap().path.unwrap();
        let (u, v) = path.hops().next().unwrap();
        service.update_edge_cost(u, v, 400.0).unwrap();

        assert_eq!(registry.counter("serve_requests_total"), 3);
        assert_eq!(registry.counter("serve_worker_0_requests_total"), 3);
        assert_eq!(registry.counter("serve_epoch_installs_total"), 1);
        assert_eq!(registry.counter("cache_hits_total"), 2);
        assert_eq!(registry.counter("cache_misses_total"), 1);
        assert!(registry.counter("cache_invalidations_total") >= 1);
        assert!(
            registry
                .histogram("serve_queue_wait_seconds")
                .unwrap()
                .count
                >= 3
        );
        assert!(registry.histogram("serve_service_seconds").unwrap().count >= 3);

        let events = ring.events();
        let json: Vec<String> = events.iter().map(|e| e.to_json()).collect();
        for kind in [
            "serve_submitted",
            "serve_started",
            "serve_cache_hit",
            "serve_completed",
            "serve_epoch_installed",
        ] {
            assert!(
                json.iter()
                    .any(|j| j.contains(&format!(r#""type":"{kind}""#))),
                "missing {kind} span in {json:#?}"
            );
        }
    }
}
