//! The concurrent route service: two-class admission control with
//! load-shedding, deadline propagation over a virtual clock, a fixed
//! worker pool, epoch snapshots, circuit breakers with stale-serve
//! degradation, and the route cache.
//!
//! ## Request life cycle
//!
//! ```text
//! submit() ──admission──▶ class queues ──▶ worker i
//!    │ shed? SHED            (interactive     │ deadline check (virtual ticks)
//!    ▼       (typed reason)   before bulk)    │ pin snapshot (epoch e)
//! Ticket::wait() ◀── answer ◀────────────────┤ cache lookup (from,to,e)
//!                                            │ hit: serve cached
//!                                            └ miss: degrade ladder
//!                                               primary → v4/v3 → Dijkstra
//!                                               → stale tier (STALE k)
//! ```
//!
//! ## Overload policy
//!
//! Admission is **shed-not-queue**: the submission queue is bounded, and
//! when it is full the service sheds the *least valuable* work first —
//! requests whose deadline already expired (either class), then the
//! oldest-deadline bulk request (displaced to admit interactive work) —
//! before finally refusing the newcomer with a typed
//! [`ServeError::Shed`] carrying a `retry_after` hint. `BUSY` never
//! appears; every refusal says why and when to come back.
//!
//! **Deadlines** are measured on a deterministic virtual clock
//! ([`RouteService::now_ticks`]): one tick per dequeue plus one tick per
//! Table 4A cost unit of completed work, so virtual time advances with
//! admitted load, never with wall time (consistent with the analyze
//! determinism rules). An admitted request whose deadline passes while
//! queued is shed at dequeue without running; one that is still running
//! when its deadline-derived cost budget (80% of the remaining ticks by
//! default) runs out is aborted mid-expansion by the planner's budget
//! meter — it stops consuming block reads instead of completing
//! uselessly.
//!
//! **Circuit breakers** guard the storage engine, the landmark rebuild
//! path, and the hierarchy maintenance path (see `breaker.rs`). An open
//! storage breaker skips the database rungs entirely and serves from
//! the stale cache tier; an open hierarchy breaker skips A\* v5 and
//! starts the ladder at v4 (or v3 without landmark tables); an open
//! landmark breaker skips A\* v4 and starts the ladder at v3.
//!
//! Updates bypass the queue: [`RouteService::update_edge_cost`] installs
//! a new epoch copy-on-write (running queries keep their snapshots) and
//! sweeps the cache under the invalidation rule, retiring invalidated
//! entries into the stale tier.
//!
//! ## Sharded epochs and batched expansion
//!
//! With [`ServeConfig::with_shards`] the epoch state is versioned per
//! region-group shard (see `shard.rs`): an update bumps only the shards
//! its edge touches, queries pin one consistent epoch *vector*, and the
//! cache validates entries against the shard versions they were stamped
//! with — so an update in one shard no longer invalidates routes that
//! never cross it. With [`ServeConfig::with_batch_max`] a worker drains
//! up to `batch_max` queued requests in one dequeue (never waiting for
//! more — batching adds zero queueing latency), serves identical
//! `(from, to)` keys from a single run, and — when the primary
//! algorithm is Dijkstra — folds same-source requests into one shared
//! frontier sweep (`dijkstra_many`) charged a single pass of block
//! reads. Fairness bounds: a batch is drain-only (bound 1: no request
//! ever waits for a batch to fill), and a shared run's cost budget is
//! the *maximum* member allowance (bound 2: no member is aborted
//! earlier than its solo run would have been).

use crate::breaker::{
    Admission, BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker, ProbeGuard,
};
use crate::cache::{CachedRoute, RouteCache};
use crate::epoch::{EpochUpdate, HierarchyRefresh, LandmarkRefresh, Snapshot};
use crate::error::{ServeError, ShedReason};
use crate::shard::{ShardMap, ShardSnapshot, ShardedEpochDb, ShardedUpdate};
use crate::sync::{self, Arc, Condvar, Mutex, MutexGuard};
use atis_algorithms::{AStarVersion, Algorithm, AlgorithmError, BudgetKind, Budgets, Database};
use atis_graph::{NodeId, Path};
use atis_obs::{ServeEvent, SharedRegistry, SharedSink, TraceEvent};
use atis_storage::StorageError;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

type JoinHandle = sync::thread::JoinHandle<()>;

/// Admission class of a request. Interactive work is served first; bulk
/// work is displaced first under pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// A traveller waiting on an answer (the `ROUTE` wire command).
    Interactive,
    /// Deferrable background work (incident-driven refresh, prefetch).
    Bulk,
}

impl RequestClass {
    /// Stable lowercase label (trace events, docs).
    pub fn label(&self) -> &'static str {
        match self {
            RequestClass::Interactive => "interactive",
            RequestClass::Bulk => "bulk",
        }
    }
}

/// An absolute expiry on the service's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline {
    /// Virtual tick at which the request is no longer worth answering.
    pub expires_at: u64,
}

impl Deadline {
    /// Ticks left at virtual time `now` (0 = expired).
    pub fn remaining(&self, now: u64) -> u64 {
        self.expires_at.saturating_sub(now)
    }

    /// Whether the deadline has passed at virtual time `now`.
    pub fn expired(&self, now: u64) -> bool {
        now >= self.expires_at
    }
}

/// How an answer was produced — every response is classified, so a
/// client (and the chaos harness) can always tell full-fidelity service
/// from degraded service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteOutcome {
    /// A fresh run of the configured algorithm at the current epoch.
    Computed,
    /// Served from the route cache, bit-identical to a fresh run.
    CacheHit,
    /// A fallback rung of the degrade ladder answered (still exact, and
    /// still at the current epoch — just a cheaper/estimator-free
    /// algorithm).
    Degraded {
        /// Ladder rung that produced the answer (`"astar-v3"`,
        /// `"dijkstra"`).
        rung: &'static str,
    },
    /// Served from the stale cache tier: a route valid `age` epochs ago
    /// (the `STALE k` wire tag).
    Stale {
        /// Age of the answer in epochs.
        age: u64,
    },
}

impl RouteOutcome {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            RouteOutcome::Computed => "computed",
            RouteOutcome::CacheHit => "cache-hit",
            RouteOutcome::Degraded { .. } => "degraded",
            RouteOutcome::Stale { .. } => "stale",
        }
    }

    /// Whether the answer is anything other than full-fidelity service
    /// at the current epoch.
    pub fn is_degraded(&self) -> bool {
        matches!(
            self,
            RouteOutcome::Degraded { .. } | RouteOutcome::Stale { .. }
        )
    }
}

/// Tuning knobs for a [`RouteService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing planner runs (≥ 1).
    pub workers: usize,
    /// Bounded submission-queue capacity (both classes combined); a full
    /// queue sheds (see [`ServeError::Shed`]) (≥ 1).
    pub queue_capacity: usize,
    /// Route-cache capacity in entries (0 disables caching, including
    /// the stale tier).
    pub cache_capacity: usize,
    /// Algorithm every `ROUTE` request runs.
    pub algorithm: Algorithm,
    /// Default per-request deadline, in virtual-time ticks.
    pub default_deadline_ticks: u64,
    /// Fraction of the remaining deadline a run may spend as cost units
    /// before being aborted mid-expansion (the "shed at 80%" rule).
    pub deadline_spend_fraction: f64,
    /// `retry_after = queue_depth × retry_unit_ticks` on queue-full
    /// sheds.
    pub retry_unit_ticks: u64,
    /// Circuit-breaker tuning (shared by the storage and landmark
    /// breakers).
    pub breaker: BreakerConfig,
    /// Oldest answer (in epochs) the stale-serve rung may return.
    pub stale_max_age: u64,
    /// Epoch shards (region groups over the partition map). `1` keeps
    /// the single global epoch; more shards confine an update's cache
    /// invalidation to the shards its edge touches.
    pub shards: usize,
    /// Most requests a worker folds into one dequeue (≥ 1; `1` disables
    /// batching). A batch is drain-only — a worker never waits for one
    /// to fill.
    pub batch_max: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 1024,
            algorithm: Algorithm::AStar(AStarVersion::V3),
            default_deadline_ticks: 100_000,
            deadline_spend_fraction: 0.8,
            retry_unit_ticks: 16,
            breaker: BreakerConfig::default(),
            stale_max_age: 8,
            shards: 1,
            batch_max: 1,
        }
    }
}

impl ServeConfig {
    /// Overrides the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the submission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Overrides the route-cache capacity (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Overrides the default per-request deadline (virtual ticks).
    pub fn with_default_deadline_ticks(mut self, ticks: u64) -> Self {
        self.default_deadline_ticks = ticks;
        self
    }

    /// Overrides the deadline spend fraction (clamped to `(0, 1]`).
    pub fn with_deadline_spend_fraction(mut self, fraction: f64) -> Self {
        self.deadline_spend_fraction = fraction.clamp(0.05, 1.0);
        self
    }

    /// Overrides the circuit-breaker tuning.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Overrides the maximum stale-serve age (epochs).
    pub fn with_stale_max_age(mut self, age: u64) -> Self {
        self.stale_max_age = age;
        self
    }

    /// Overrides the epoch shard count (`1` = single global epoch).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides the per-dequeue batch bound (`1` disables batching).
    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max.max(1);
        self
    }
}

/// One answered route request.
#[derive(Debug, Clone)]
pub struct RouteAnswer {
    /// The route, or `None` when the destination is unreachable.
    pub path: Option<Path>,
    /// Epoch the answer is valid at: every edge cost the answer reflects
    /// comes from exactly this snapshot. For a [`RouteOutcome::Stale`]
    /// answer this is the *older* epoch the route was computed at.
    pub epoch: u64,
    /// How the answer was produced (fresh run, cache hit, degraded rung,
    /// stale tier).
    pub outcome: RouteOutcome,
    /// The deadline the request ran under (virtual ticks).
    pub deadline: Deadline,
    /// Admission class the request was served as.
    pub class: RequestClass,
    /// Whether the answer came from the route cache (kept alongside
    /// [`RouteAnswer::outcome`] for call-site convenience).
    pub cached: bool,
    /// Iterations of the (original) run.
    pub iterations: u64,
    /// Simulated I/O cost of the (original) run, Table 4A units.
    pub cost_units: f64,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Worker time (cache lookup + algorithm run).
    pub service_time: Duration,
    /// Pool index of the worker that served the request.
    pub worker: usize,
}

/// The pending-answer slot a submitted request blocks on.
#[derive(Debug, Default)]
struct TicketInner {
    slot: Mutex<Option<Result<RouteAnswer, ServeError>>>,
    ready: Condvar,
}

impl TicketInner {
    /// Designated acquirer for the answer slot (rank 4 in the declared
    /// order — see `sync.rs`).
    fn lock_slot(&self) -> MutexGuard<'_, Option<Result<RouteAnswer, ServeError>>> {
        sync::lock(&self.slot)
    }

    /// Fills the slot and wakes the waiter.
    fn resolve(&self, answer: Result<RouteAnswer, ServeError>) {
        let mut slot = self.lock_slot();
        *slot = Some(answer);
        drop(slot);
        self.ready.notify_all();
    }
}

/// A claim on a submitted request's future answer.
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    inner: Arc<TicketInner>,
}

impl Ticket {
    /// The request id (monotonic per service, matches trace events).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the worker pool answers this request.
    pub fn wait(self) -> Result<RouteAnswer, ServeError> {
        let mut slot = self.inner.lock_slot();
        loop {
            if let Some(answer) = slot.take() {
                return answer;
            }
            slot = sync::wait(&self.inner.ready, slot);
        }
    }
}

struct Job {
    id: u64,
    from: NodeId,
    to: NodeId,
    class: RequestClass,
    deadline: Deadline,
    submitted: Instant,
    ticket: Arc<TicketInner>,
}

#[derive(Default)]
struct QueueState {
    interactive: VecDeque<Job>,
    bulk: VecDeque<Job>,
    closed: bool,
}

impl QueueState {
    fn len(&self) -> usize {
        self.interactive.len() + self.bulk.len()
    }

    fn pop(&mut self) -> Option<Job> {
        self.interactive
            .pop_front()
            .or_else(|| self.bulk.pop_front())
    }

    /// Removes every queued job whose deadline has passed at `now`.
    fn drain_expired(&mut self, now: u64) -> Vec<Job> {
        let mut expired = Vec::new();
        for queue in [&mut self.interactive, &mut self.bulk] {
            let mut keep = VecDeque::with_capacity(queue.len());
            while let Some(job) = queue.pop_front() {
                if job.deadline.expired(now) {
                    expired.push(job);
                } else {
                    keep.push_back(job);
                }
            }
            *queue = keep;
        }
        expired
    }

    /// Removes the bulk job with the earliest deadline (the one that
    /// would be shed soonest anyway), if any.
    fn displace_bulk(&mut self) -> Option<Job> {
        let victim = self
            .bulk
            .iter()
            .enumerate()
            .min_by_key(|(i, job)| (job.deadline, *i))
            .map(|(i, _)| i);
        victim.and_then(|i| self.bulk.remove(i))
    }
}

struct Breakers {
    storage: CircuitBreaker,
    landmarks: CircuitBreaker,
    hierarchy: CircuitBreaker,
}

struct Shared {
    epoch_db: ShardedEpochDb,
    cache: RouteCache,
    queue: Mutex<QueueState>,
    available: Condvar,
    queue_capacity: usize,
    algorithm: Algorithm,
    batch_max: usize,
    default_deadline_ticks: u64,
    deadline_spend_fraction: f64,
    retry_unit_ticks: u64,
    stale_max_age: u64,
    breakers: Breakers,
    /// The virtual clock: +1 per dequeue, +⌈cost units⌉ per run —
    /// completed *or* failed (a cost-budget abort is charged its full
    /// allowance, other failures a one-unit floor). A deterministic
    /// measure of admitted load, never wall time.
    clock: AtomicU64,
    next_request: AtomicU64,
    metrics: Option<SharedRegistry>,
    sink: Option<SharedSink>,
}

impl Shared {
    /// Designated acquirer for the admission queue (rank 1, the
    /// outermost lock in the declared order — see `sync.rs`).
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        sync::lock(&self.queue)
    }

    /// Whether epochs are sharded (more than one region group): selects
    /// the stamped cache family over the legacy single-epoch one.
    fn sharded(&self) -> bool {
        !self.epoch_db.map().is_single()
    }

    fn now(&self) -> u64 {
        self.clock.load(Ordering::Relaxed)
    }

    fn advance(&self, ticks: u64) -> u64 {
        self.clock.fetch_add(ticks, Ordering::Relaxed) + ticks
    }

    fn emit(&self, event: ServeEvent) {
        if let Some(sink) = &self.sink {
            sink.record(&TraceEvent::Serve(event));
        }
    }

    fn observe(&self, name: &str, value: f64) {
        if let Some(m) = &self.metrics {
            m.observe(name, value);
        }
    }

    fn inc(&self, name: &str) {
        if let Some(m) = &self.metrics {
            m.inc(name);
        }
    }

    fn emit_transition(&self, resource: &'static str, transition: Option<BreakerTransition>) {
        let Some(t) = transition else { return };
        if matches!(t.to, BreakerState::Open { .. }) {
            self.inc("serve_breaker_open_total");
        }
        if matches!(t.to, BreakerState::Closed) {
            self.inc("serve_breaker_close_total");
        }
        self.emit(ServeEvent::BreakerTransition {
            resource: resource.to_string(),
            from: t.from.label().to_string(),
            to: t.to.label().to_string(),
            at_tick: self.now(),
        });
    }

    /// Sheds `job` with a typed reason: resolves its ticket, counts it,
    /// and emits the trace span. Never called with a lock held.
    fn shed_job(&self, job: &Job, reason: ShedReason, queue_depth: usize) {
        let retry_after = match reason {
            ShedReason::DeadlineExpired => self.default_deadline_ticks,
            _ => (queue_depth as u64).max(1) * self.retry_unit_ticks,
        };
        self.resolve_shed(job, reason, retry_after, queue_depth);
    }

    /// Sheds `job` with a back-off hint that is already known — a
    /// breaker's actual countdown, a deadline renewal — instead of the
    /// queue-depth formula. Never called with a lock held.
    fn resolve_shed(&self, job: &Job, reason: ShedReason, retry_after: u64, queue_depth: usize) {
        self.inc("serve_shed_total");
        if reason == ShedReason::DeadlineExpired {
            self.inc("serve_deadline_expired_total");
        }
        self.emit(ServeEvent::Shed {
            request: job.id,
            reason: reason.label().to_string(),
            retry_after,
            queue_depth: queue_depth as u64,
        });
        job.ticket.resolve(Err(ServeError::Shed {
            reason,
            retry_after,
            queue_depth,
        }));
    }
}

/// A pooled, cached, epoch-snapshotted, overload-resilient route-serving
/// engine.
///
/// Dropping the service closes admission, lets the workers drain every
/// already-admitted request (so no [`Ticket::wait`] deadlocks), and joins
/// the pool.
pub struct RouteService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle>,
}

impl std::fmt::Debug for RouteService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouteService")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.shared.queue_capacity)
            .field("cache_capacity", &self.shared.cache.capacity())
            .field("algorithm", &self.shared.algorithm)
            .finish()
    }
}

impl RouteService {
    /// Starts a service over `db` with `config`. The database becomes
    /// epoch 0; `config.workers` threads start immediately.
    pub fn new(db: Database, config: ServeConfig) -> Self {
        Self::build(db, config, None, None)
    }

    /// Starts a service with observability attached: `metrics` receives
    /// the serving counters/histograms (and the cache counters), `sink`
    /// receives one [`ServeEvent`] span per request stage.
    pub fn with_observability(
        db: Database,
        config: ServeConfig,
        metrics: Option<SharedRegistry>,
        sink: Option<SharedSink>,
    ) -> Self {
        Self::build(db, config, metrics, sink)
    }

    fn build(
        db: Database,
        config: ServeConfig,
        metrics: Option<SharedRegistry>,
        sink: Option<SharedSink>,
    ) -> Self {
        let workers = config.workers.max(1);
        let mut cache = RouteCache::new(config.cache_capacity);
        if let Some(m) = &metrics {
            cache = cache.with_metrics(m.clone());
        }
        let map = if config.shards <= 1 {
            ShardMap::single(db.graph().node_count())
        } else {
            ShardMap::build(db.graph(), config.shards)
        };
        if let Some(m) = &metrics {
            m.set("serve_shards", map.shard_count() as u64);
            m.set("serve_batch_max", config.batch_max.max(1) as u64);
        }
        let shared = Arc::new(Shared {
            epoch_db: ShardedEpochDb::new(db, map),
            cache,
            queue: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            queue_capacity: config.queue_capacity.max(1),
            algorithm: config.algorithm,
            batch_max: config.batch_max.max(1),
            default_deadline_ticks: config.default_deadline_ticks.max(1),
            deadline_spend_fraction: config.deadline_spend_fraction.clamp(0.05, 1.0),
            retry_unit_ticks: config.retry_unit_ticks.max(1),
            stale_max_age: config.stale_max_age,
            breakers: Breakers {
                storage: CircuitBreaker::new(config.breaker),
                landmarks: CircuitBreaker::new(config.breaker),
                hierarchy: CircuitBreaker::new(config.breaker),
            },
            clock: AtomicU64::new(0),
            next_request: AtomicU64::new(0),
            metrics,
            sink,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                sync::thread::Builder::new()
                    .name(format!("atis-serve-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    // Startup-only: no request is admitted before the pool
                    // exists, so a spawn failure aborts construction here,
                    // never a client request.
                    // analyze::allow(panic-hygiene): startup-time spawn failure is fatal by design
                    .expect("spawn worker thread")
            })
            .collect();
        RouteService {
            shared,
            workers: handles,
        }
    }

    /// The worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The algorithm every request runs.
    pub fn algorithm(&self) -> Algorithm {
        self.shared.algorithm
    }

    /// The current epoch — the global install counter (every update
    /// advances it, whichever shards it touches).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch_db.install()
    }

    /// The number of epoch shards (`1` = single global epoch).
    pub fn shards(&self) -> usize {
        self.shared.epoch_db.map().shard_count()
    }

    /// The per-dequeue batch bound (`1` = batching disabled).
    pub fn batch_max(&self) -> usize {
        self.shared.batch_max
    }

    /// The current virtual time, in ticks. Advances with admitted work
    /// (one tick per dequeue plus one per Table 4A cost unit completed),
    /// never with wall time.
    pub fn now_ticks(&self) -> u64 {
        self.shared.now()
    }

    /// The current `(epoch, database)` snapshot — for read-only side
    /// queries (`EVAL`) that must see one consistent epoch. The epoch
    /// reported is the global install counter.
    pub fn snapshot(&self) -> Snapshot {
        let snap = self.shared.epoch_db.snapshot();
        Snapshot {
            epoch: snap.install(),
            db: snap.db,
        }
    }

    /// The current sharded snapshot: the database plus the whole epoch
    /// vector, pinned together under one lock acquisition.
    pub fn shard_snapshot(&self) -> ShardSnapshot {
        self.shared.epoch_db.snapshot()
    }

    /// The route cache (counters, capacity).
    pub fn cache(&self) -> &RouteCache {
        &self.shared.cache
    }

    /// The state of a named circuit breaker (`"storage"`,
    /// `"landmarks"`, `"hierarchy"`); `None` for unknown names.
    pub fn breaker_state(&self, resource: &str) -> Option<BreakerState> {
        match resource {
            "storage" => Some(self.shared.breakers.storage.state()),
            "landmarks" => Some(self.shared.breakers.landmarks.state()),
            "hierarchy" => Some(self.shared.breakers.hierarchy.state()),
            _ => None,
        }
    }

    /// Submits an interactive request with the default deadline.
    ///
    /// # Errors
    /// [`ServeError::Shed`] when admission sheds the request;
    /// [`ServeError::ShuttingDown`] after the service started closing.
    pub fn submit(&self, from: NodeId, to: NodeId) -> Result<Ticket, ServeError> {
        self.submit_with(from, to, RequestClass::Interactive, None)
    }

    /// Submits a request with an explicit class and (optionally) an
    /// explicit deadline in virtual ticks from now.
    ///
    /// Under pressure the admission controller sheds in value order:
    /// already-expired queued work first (either class), then the
    /// oldest-deadline bulk request if the newcomer is interactive, and
    /// only then the newcomer itself.
    ///
    /// # Errors
    /// [`ServeError::Shed`] when the request itself is shed;
    /// [`ServeError::ShuttingDown`] after the service started closing.
    pub fn submit_with(
        &self,
        from: NodeId,
        to: NodeId,
        class: RequestClass,
        deadline_ticks: Option<u64>,
    ) -> Result<Ticket, ServeError> {
        let id = self.shared.next_request.fetch_add(1, Ordering::Relaxed);
        let now = self.shared.now();
        let deadline = Deadline {
            expires_at: now
                + deadline_ticks
                    .unwrap_or(self.shared.default_deadline_ticks)
                    .max(1),
        };
        let mut victims: Vec<(Job, ShedReason)> = Vec::new();
        let mut queue = self.shared.lock_queue();
        if queue.closed {
            return Err(ServeError::ShuttingDown);
        }
        if queue.len() >= self.shared.queue_capacity {
            for job in queue.drain_expired(now) {
                victims.push((job, ShedReason::DeadlineExpired));
            }
        }
        if queue.len() >= self.shared.queue_capacity && class == RequestClass::Interactive {
            if let Some(job) = queue.displace_bulk() {
                victims.push((job, ShedReason::Displaced));
            }
        }
        if queue.len() >= self.shared.queue_capacity {
            let depth = queue.len();
            drop(queue);
            for (job, reason) in victims {
                self.shared.shed_job(&job, reason, depth);
            }
            let retry_after = (depth as u64).max(1) * self.shared.retry_unit_ticks;
            self.shared.inc("serve_shed_total");
            self.shared.emit(ServeEvent::Shed {
                request: id,
                reason: ShedReason::QueueFull.label().to_string(),
                retry_after,
                queue_depth: depth as u64,
            });
            return Err(ServeError::Shed {
                reason: ShedReason::QueueFull,
                retry_after,
                queue_depth: depth,
            });
        }
        let ticket = Ticket {
            id,
            inner: Arc::new(TicketInner::default()),
        };
        let job = Job {
            id,
            from,
            to,
            class,
            deadline,
            submitted: Instant::now(),
            ticket: ticket.inner.clone(),
        };
        match class {
            RequestClass::Interactive => queue.interactive.push_back(job),
            RequestClass::Bulk => queue.bulk.push_back(job),
        }
        let depth = queue.len();
        drop(queue);
        for (job, reason) in victims {
            self.shared.shed_job(&job, reason, depth);
        }
        self.shared.available.notify_one();
        self.shared.observe("serve_queue_depth", depth as f64);
        self.shared.emit(ServeEvent::Submitted {
            request: id,
            queue_depth: depth as u64,
        });
        Ok(ticket)
    }

    /// Submits an interactive request and blocks for the answer.
    ///
    /// # Errors
    /// [`ServeError::Shed`] / [`ServeError::ShuttingDown`] at admission,
    /// a deadline shed while queued or mid-run, or the run's own
    /// [`ServeError::Algorithm`] failure.
    pub fn route(&self, from: NodeId, to: NodeId) -> Result<RouteAnswer, ServeError> {
        self.submit(from, to)?.wait()
    }

    /// Submits with an explicit class/deadline and blocks for the
    /// answer.
    ///
    /// # Errors
    /// As [`RouteService::route`].
    pub fn route_with(
        &self,
        from: NodeId,
        to: NodeId,
        class: RequestClass,
        deadline_ticks: Option<u64>,
    ) -> Result<RouteAnswer, ServeError> {
        self.submit_with(from, to, class, deadline_ticks)?.wait()
    }

    /// Applies a traffic update: installs a new epoch copy-on-write and
    /// sweeps the route cache (see `cache.rs` for the invalidation rule;
    /// invalidated entries retire into the stale tier). Queries already
    /// running keep their snapshots; queries admitted after this call
    /// see the new costs. A failed landmark rebuild counts against the
    /// landmark circuit breaker.
    ///
    /// # Errors
    /// Fails for unknown endpoints or invalid costs (no epoch change).
    pub fn update_edge_cost(
        &self,
        u: NodeId,
        v: NodeId,
        cost: f64,
    ) -> Result<EpochUpdate, AlgorithmError> {
        let ShardedUpdate {
            update,
            shards,
            epochs,
        } = self.shared.epoch_db.update_edge_cost(u, v, cost)?;
        match update.hierarchy {
            HierarchyRefresh::RebuildFailed => {
                self.shared.inc("serve_hierarchy_rebuild_failed_total");
                let t = self.shared.breakers.hierarchy.on_failure(self.shared.now());
                self.shared.emit_transition("hierarchy", t);
            }
            HierarchyRefresh::Customized => {
                self.shared.inc("serve_hierarchy_customized_total");
                let t = self.shared.breakers.hierarchy.on_success();
                self.shared.emit_transition("hierarchy", t);
            }
            HierarchyRefresh::Recontracted => {
                self.shared.inc("serve_hierarchy_recontracted_total");
                let t = self.shared.breakers.hierarchy.on_success();
                self.shared.emit_transition("hierarchy", t);
            }
            HierarchyRefresh::None => {}
        }
        match update.landmarks {
            LandmarkRefresh::RebuildFailed => {
                let t = self.shared.breakers.landmarks.on_failure(self.shared.now());
                self.shared.emit_transition("landmarks", t);
            }
            LandmarkRefresh::Rebuilt | LandmarkRefresh::Patched => {
                let t = self.shared.breakers.landmarks.on_success();
                self.shared.emit_transition("landmarks", t);
            }
            _ => {}
        }
        let (invalidated, promoted) = if self.shared.sharded() {
            self.shared.cache.apply_shard_update(
                u,
                v,
                update.old_cost,
                update.new_cost,
                &shards,
                &epochs,
            )
        } else {
            self.shared
                .cache
                .apply_update(u, v, update.new_cost, update.epoch)
        };
        self.shared.inc("serve_epoch_installs_total");
        self.shared.emit(ServeEvent::EpochInstalled {
            epoch: update.epoch,
            updated_edges: update.updated as u64,
            invalidated,
            promoted,
        });
        if self.shared.sharded() {
            self.shared.inc("serve_shard_installs_total");
            self.shared.emit(ServeEvent::ShardEpochInstalled {
                install: epochs.install(),
                shards_touched: shards.len() as u64,
                shards_total: self.shared.epoch_db.map().shard_count() as u64,
                invalidated,
                promoted,
            });
        }
        Ok(update)
    }
}

impl Drop for RouteService {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.lock_queue();
            queue.closed = true;
        }
        self.shared.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        // Drain-only batching: take one job (waiting if necessary), then
        // fold in whatever is *already* queued up to `batch_max`. A
        // worker never waits for a batch to fill, so batching can only
        // remove queueing latency, never add it (fairness bound 1).
        let mut batch = {
            let mut queue = shared.lock_queue();
            loop {
                if let Some(job) = queue.pop() {
                    let mut batch = vec![job];
                    while batch.len() < shared.batch_max {
                        match queue.pop() {
                            Some(job) => batch.push(job),
                            None => break,
                        }
                    }
                    break batch;
                }
                if queue.closed {
                    return;
                }
                queue = sync::wait(&shared.available, queue);
            }
        };
        // One dequeue tick per admitted request, batched or not.
        let now = shared.advance(batch.len() as u64);

        // Deadlines that passed while the requests were queued: shed
        // them without spending a single block read.
        let mut live: Vec<(Job, Duration)> = Vec::with_capacity(batch.len());
        for job in batch.drain(..) {
            if job.deadline.expired(now) {
                shared.shed_job(&job, ShedReason::DeadlineExpired, 0);
            } else {
                let queue_wait = job.submitted.elapsed();
                shared.observe("serve_queue_wait_seconds", queue_wait.as_secs_f64());
                live.push((job, queue_wait));
            }
        }
        if live.is_empty() {
            continue;
        }

        // One pinned snapshot per batch: every member sees the same
        // database and the same (whole) epoch vector.
        let snapshot = shared.epoch_db.snapshot();
        for (job, _) in &live {
            shared.emit(ServeEvent::Started {
                request: job.id,
                worker: worker as u64,
                epoch: snapshot.install(),
            });
        }

        if live.len() == 1 {
            // The solo path — byte-for-byte the pre-batching life cycle.
            let Some((job, queue_wait)) = live.pop() else {
                continue;
            };
            let started = Instant::now();
            let (outcome, consumed) = execute(shared, &snapshot, &job, job.deadline, now);
            let service_time = started.elapsed();
            // The run ticks the virtual clock by what it consumed whether
            // it completed or died: a cost-budget abort burned its whole
            // allowance before the meter fired, and any other failed run
            // is charged a one-unit floor — so breaker open-windows and
            // queued deadlines keep progressing under fault storms
            // instead of freezing while every run fails.
            shared.advance(consumed);
            finish(shared, worker, job, queue_wait, service_time, outcome);
            continue;
        }

        // The batched path: identical (from, to) keys collapse into one
        // run (singleflight), and — when the primary algorithm is
        // Dijkstra — same-source groups share one multi-target frontier
        // sweep charged a single pass of block reads.
        let size = live.len() as u64;
        let mut groups: Vec<Group> = Vec::new();
        for (job, wait) in live {
            match groups
                .iter_mut()
                .find(|g| g.from == job.from && g.to == job.to)
            {
                Some(g) => g.members.push((job, wait)),
                None => groups.push(Group {
                    from: job.from,
                    to: job.to,
                    members: vec![(job, wait)],
                }),
            }
        }
        shared.observe("serve_batch_size", size as f64);
        shared.emit(ServeEvent::BatchExecuted {
            worker: worker as u64,
            size,
            groups: groups.len() as u64,
            epoch: snapshot.install(),
        });

        if shared.algorithm == Algorithm::Dijkstra {
            // Cluster the groups by source; each multi-group cluster
            // becomes one shared sweep.
            let mut clusters: Vec<Vec<Group>> = Vec::new();
            for group in groups {
                match clusters
                    .iter_mut()
                    .find(|c| c.first().is_some_and(|g| g.from == group.from))
                {
                    Some(c) => c.push(group),
                    None => clusters.push(vec![group]),
                }
            }
            for mut cluster in clusters {
                if cluster.len() == 1 {
                    if let Some(group) = cluster.pop() {
                        run_group(shared, worker, &snapshot, group, now);
                    }
                } else {
                    run_cluster(shared, worker, &snapshot, cluster, now);
                }
            }
        } else {
            for group in groups {
                run_group(shared, worker, &snapshot, group, now);
            }
        }
    }
}

/// One singleflight batch group: requests for the same `(from, to)` key
/// served by a single run.
struct Group {
    from: NodeId,
    to: NodeId,
    members: Vec<(Job, Duration)>,
}

impl Group {
    /// The latest member deadline — a shared run's budget covers every
    /// member's own allowance (fairness bound 2).
    fn deadline(&self) -> Deadline {
        self.members
            .iter()
            .map(|(job, _)| job.deadline)
            .max()
            .unwrap_or(Deadline { expires_at: 0 })
    }
}

/// Classifies one request's result, counts it, emits its life-cycle
/// events, and resolves its ticket. The caller has already advanced the
/// virtual clock for the work consumed.
fn finish(
    shared: &Shared,
    worker: usize,
    job: Job,
    queue_wait: Duration,
    service_time: Duration,
    outcome: Result<Exec, ServeError>,
) {
    shared.observe("serve_service_seconds", service_time.as_secs_f64());
    shared.inc("serve_requests_total");
    shared.inc(&format!("serve_worker_{worker}_requests_total"));
    let answer = outcome.map(|exec| {
        if let RouteOutcome::Stale { age } = exec.outcome {
            shared.inc("serve_stale_served_total");
            shared.emit(ServeEvent::StaleServed {
                request: job.id,
                epoch: exec.epoch,
                age,
            });
        }
        if let RouteOutcome::Degraded { .. } = exec.outcome {
            shared.inc("serve_degraded_total");
        }
        shared.emit(ServeEvent::Completed {
            request: job.id,
            worker: worker as u64,
            epoch: exec.epoch,
            cached: exec.outcome == RouteOutcome::CacheHit,
            found: exec.path.is_some(),
        });
        RouteAnswer {
            path: exec.path,
            epoch: exec.epoch,
            outcome: exec.outcome,
            deadline: job.deadline,
            class: job.class,
            cached: exec.outcome == RouteOutcome::CacheHit,
            iterations: exec.iterations,
            cost_units: exec.cost_units,
            queue_wait,
            service_time,
            worker,
        }
    });
    match answer {
        Err(ServeError::Shed {
            reason,
            retry_after,
            queue_depth,
        }) => {
            // A mid-run shed already carries its true back-off hint
            // (the breaker's remaining countdown, a deadline
            // renewal) and its consumed cost was metered above:
            // resolve it as-is instead of recomputing the hint from
            // queue depth.
            shared.resolve_shed(&job, reason, retry_after, queue_depth);
        }
        other => {
            if other.is_err() {
                shared.inc("serve_failed_total");
            }
            job.ticket.resolve(other);
        }
    }
}

/// Resolves every member of a singleflight group with (a clone of) the
/// group's one result.
fn resolve_group(
    shared: &Shared,
    worker: usize,
    group: Group,
    result: Result<Exec, ServeError>,
    service_time: Duration,
) {
    for (job, wait) in group.members {
        finish(shared, worker, job, wait, service_time, result.clone());
    }
}

/// Runs one batch group through the full solo ladder (cache, breakers,
/// degrade rungs, stale tier) exactly once, under the group deadline,
/// and fans the result out to every member.
fn run_group(shared: &Shared, worker: usize, snapshot: &ShardSnapshot, group: Group, now: u64) {
    let deadline = group.deadline();
    let started = Instant::now();
    let (result, consumed) = match group.members.first() {
        Some((lead, _)) => execute(shared, snapshot, lead, deadline, now),
        None => return,
    };
    shared.advance(consumed);
    let service_time = started.elapsed();
    resolve_group(shared, worker, group, result, service_time);
}

/// Runs a same-source cluster of ≥ 2 Dijkstra groups as **one** shared
/// frontier sweep: per-group cache lookups first, then a single
/// `dijkstra_many` run whose charged I/O pass serves every remaining
/// frontier, under the maximum member allowance.
fn run_cluster(
    shared: &Shared,
    worker: usize,
    snapshot: &ShardSnapshot,
    cluster: Vec<Group>,
    now: u64,
) {
    let started = Instant::now();
    let Some(source) = cluster.first().map(|g| g.from) else {
        return;
    };
    let install = snapshot.install();

    // Cache first: a hit detaches its group from the sweep entirely.
    let mut misses: Vec<Group> = Vec::new();
    for group in cluster {
        if let Some(hit) = cache_lookup(shared, snapshot, group.from, group.to) {
            if let Some((lead, _)) = group.members.first() {
                shared.emit(ServeEvent::CacheHit {
                    request: lead.id,
                    epoch: install,
                });
            }
            shared.advance(ticks(hit.cost_units));
            let exec = Exec {
                path: Some(hit.path),
                outcome: RouteOutcome::CacheHit,
                epoch: install,
                iterations: hit.iterations,
                cost_units: hit.cost_units,
            };
            resolve_group(shared, worker, group, Ok(exec), started.elapsed());
        } else {
            misses.push(group);
        }
    }
    if misses.is_empty() {
        return;
    }

    // Unknown endpoints fail per request, exactly as solo runs do — one
    // bad destination must not poison the shared sweep.
    if !snapshot.db.graph().contains(source) {
        let service_time = started.elapsed();
        for group in misses {
            shared.advance(1);
            resolve_group(
                shared,
                worker,
                group,
                Err(ServeError::from(AlgorithmError::UnknownSource(source))),
                service_time,
            );
        }
        return;
    }
    let mut valid: Vec<Group> = Vec::new();
    for group in misses {
        if snapshot.db.graph().contains(group.to) {
            valid.push(group);
        } else {
            shared.advance(1);
            let err = Err(ServeError::from(AlgorithmError::UnknownDestination(
                group.to,
            )));
            resolve_group(shared, worker, group, err, started.elapsed());
        }
    }
    if valid.is_empty() {
        return;
    }

    // The shared budget is the *maximum* member allowance: if the sweep
    // aborts on it, every member's own (smaller or equal) solo budget
    // would have aborted too, so shedding the whole cluster is sound.
    let deadline = valid
        .iter()
        .map(Group::deadline)
        .max()
        .unwrap_or(Deadline { expires_at: 0 });
    let remaining = deadline.remaining(now);
    let allowance = (remaining as f64) * shared.deadline_spend_fraction;
    let budgets = snapshot
        .db
        .budgets()
        .min_with(Budgets::unlimited().with_max_cost_units(allowance.max(1.0)));
    let deadline_binding = budgets.max_cost_units == Some(allowance.max(1.0));

    let (storage_admission, t) = shared.breakers.storage.admit(now);
    shared.emit_transition("storage", t);
    if let Admission::Deny { retry_after } = storage_admission {
        for group in valid {
            let result = stale_or_shed(shared, snapshot, group.from, group.to, retry_after);
            if let Ok(exec) = &result {
                shared.advance(ticks(exec.cost_units));
            }
            resolve_group(shared, worker, group, result, started.elapsed());
        }
        return;
    }
    let mut storage_probe = ProbeGuard::new(&shared.breakers.storage, storage_admission);

    let targets: Vec<NodeId> = valid.iter().map(|g| g.to).collect();
    let mut consumed: u64 = 0;
    let mut result =
        snapshot
            .db
            .run_many_with_budgets(Algorithm::Dijkstra, source, &targets, budgets);
    if let Err(AlgorithmError::Storage(_)) = &result {
        let t = storage_probe.failure(now);
        shared.emit_transition("storage", t);
        if matches!(
            shared.breakers.storage.state(),
            BreakerState::Closed | BreakerState::HalfOpen
        ) {
            consumed += 1;
            result =
                snapshot
                    .db
                    .run_many_with_budgets(Algorithm::Dijkstra, source, &targets, budgets);
        }
    }
    match result {
        Ok(traces) => {
            let t = storage_probe.success();
            shared.emit_transition("storage", t);
            shared.inc("serve_batched_runs_total");
            // Every trace carries the same shared I/O: the sweep is
            // charged exactly once, which is the entire point.
            let cost_units = traces
                .first()
                .map_or(0.0, |trace| trace.cost_units(snapshot.db.params()));
            consumed += ticks(cost_units);
            shared.advance(consumed);
            let service_time = started.elapsed();
            for (group, trace) in valid.into_iter().zip(traces) {
                if let Some(path) = &trace.path {
                    cache_insert(
                        shared,
                        snapshot,
                        group.from,
                        group.to,
                        path.clone(),
                        trace.iterations,
                        cost_units,
                    );
                }
                let exec = Exec {
                    path: trace.path,
                    outcome: RouteOutcome::Computed,
                    epoch: install,
                    iterations: trace.iterations,
                    cost_units,
                };
                resolve_group(shared, worker, group, Ok(exec), service_time);
            }
        }
        Err(e) => {
            consumed += match &e {
                AlgorithmError::BudgetExceeded(BudgetKind::CostUnits) => {
                    budgets.max_cost_units.map_or(1, ticks).max(1)
                }
                _ => 1,
            };
            shared.advance(consumed);
            let service_time = started.elapsed();
            match e {
                AlgorithmError::BudgetExceeded(BudgetKind::CostUnits) if deadline_binding => {
                    for group in valid {
                        let shed = Err(ServeError::Shed {
                            reason: ShedReason::DeadlineExpired,
                            retry_after: shared.default_deadline_ticks,
                            queue_depth: 0,
                        });
                        resolve_group(shared, worker, group, shed, service_time);
                    }
                }
                e @ AlgorithmError::Storage(_) => {
                    let t = storage_probe.failure(now);
                    shared.emit_transition("storage", t);
                    if let AlgorithmError::Storage(fault) = &e {
                        shared.inc(storage_fault_metric(fault));
                    }
                    for group in valid {
                        let result = match stale_or_shed(
                            shared,
                            snapshot,
                            group.from,
                            group.to,
                            shared.retry_unit_ticks,
                        ) {
                            Ok(exec) => {
                                shared.advance(ticks(exec.cost_units));
                                Ok(exec)
                            }
                            Err(ServeError::Shed { .. }) => Err(ServeError::from(e.clone())),
                            Err(other) => Err(other),
                        };
                        resolve_group(shared, worker, group, result, service_time);
                    }
                }
                e => {
                    for group in valid {
                        resolve_group(
                            shared,
                            worker,
                            group,
                            Err(ServeError::from(e.clone())),
                            service_time,
                        );
                    }
                }
            }
        }
    }
}

/// What one executed request produced. Cloneable so a singleflight
/// group can fan one result out to every member.
#[derive(Clone)]
struct Exec {
    path: Option<Path>,
    outcome: RouteOutcome,
    epoch: u64,
    iterations: u64,
    cost_units: f64,
}

/// Cost units rounded up to whole virtual-clock ticks.
fn ticks(cost_units: f64) -> u64 {
    cost_units.max(0.0).ceil() as u64
}

/// Answers one job against its pinned snapshot: cache, then the degrade
/// ladder (primary → v3 on landmark trouble → Dijkstra on storage
/// trouble → the stale tier), under the deadline-derived cost budget.
///
/// Also returns the cost-unit ticks the attempt consumed — exact for
/// completed runs and cost-budget aborts (which burned their whole
/// allowance before the meter fired), a one-unit floor for failures
/// whose partial spend is unknowable — so the worker can meter the
/// virtual clock for aborted work too, not just completed work.
fn execute(
    shared: &Shared,
    snapshot: &ShardSnapshot,
    job: &Job,
    deadline: Deadline,
    now: u64,
) -> (Result<Exec, ServeError>, u64) {
    let install = snapshot.install();
    if let Some(hit) = cache_lookup(shared, snapshot, job.from, job.to) {
        shared.emit(ServeEvent::CacheHit {
            request: job.id,
            epoch: install,
        });
        let consumed = ticks(hit.cost_units);
        return (
            Ok(Exec {
                path: Some(hit.path),
                outcome: RouteOutcome::CacheHit,
                epoch: install,
                iterations: hit.iterations,
                cost_units: hit.cost_units,
            }),
            consumed,
        );
    }

    // The deadline-derived budget: the run may spend at most
    // `deadline_spend_fraction` of the remaining ticks as cost units,
    // intersected with the database's own standing budgets. `deadline`
    // is the job's own for solo runs, the group maximum for batches.
    let remaining = deadline.remaining(now);
    let allowance = (remaining as f64) * shared.deadline_spend_fraction;
    let budgets = snapshot
        .db
        .budgets()
        .min_with(Budgets::unlimited().with_max_cost_units(allowance.max(1.0)));
    let deadline_binding = budgets.max_cost_units == Some(allowance.max(1.0));

    // Storage breaker open: skip every database rung, serve stale or
    // refuse with the breaker's countdown.
    let (storage_admission, t) = shared.breakers.storage.admit(now);
    shared.emit_transition("storage", t);
    if let Admission::Deny { retry_after } = storage_admission {
        let result = stale_or_shed(shared, snapshot, job.from, job.to, retry_after);
        let consumed = result.as_ref().map_or(0, |exec| ticks(exec.cost_units));
        return (result, consumed);
    }
    // From here this request may hold the storage breaker's half-open
    // probe slot. The guard resolves it exactly once: a verdict below
    // defuses it, and every other exit path (deadline shed, an error
    // that says nothing about storage) releases the slot on drop, so an
    // aborted probe can never wedge the breaker half-open.
    let mut storage_probe = ProbeGuard::new(&shared.breakers.storage, storage_admission);

    // Rung 0: the configured algorithm, unless a breaker denies its
    // preprocessed artifact — an open hierarchy breaker starts a v5
    // service one rung down (v4 when the snapshot carries landmark
    // tables, v3 otherwise), an open landmark breaker starts v4 at v3.
    // Admission (not a bare state read) drives the machine, so an open
    // breaker whose window has elapsed half-opens here and this request
    // runs the guarded rung as the probe that can re-close it.
    let needs_hierarchy = shared.algorithm == Algorithm::AStar(AStarVersion::V5);
    let (hierarchy_admission, t) = if needs_hierarchy {
        shared.breakers.hierarchy.admit(now)
    } else {
        (Admission::Allow, None)
    };
    shared.emit_transition("hierarchy", t);
    let mut hierarchy_probe = ProbeGuard::new(&shared.breakers.hierarchy, hierarchy_admission);
    let hierarchy_denied = matches!(hierarchy_admission, Admission::Deny { .. });
    // Where a v5 request lands when its overlay is unusable.
    let below_v5: (&'static str, Algorithm) = if snapshot.db.landmarks().is_some() {
        ("astar-v4", Algorithm::AStar(AStarVersion::V4))
    } else {
        ("astar-v3", Algorithm::AStar(AStarVersion::V3))
    };
    let needs_landmarks = shared.algorithm == Algorithm::AStar(AStarVersion::V4)
        || (hierarchy_denied && below_v5.1 == Algorithm::AStar(AStarVersion::V4));
    let (landmark_admission, t) = if needs_landmarks {
        shared.breakers.landmarks.admit(now)
    } else {
        (Admission::Allow, None)
    };
    shared.emit_transition("landmarks", t);
    let mut landmark_probe = ProbeGuard::new(&shared.breakers.landmarks, landmark_admission);
    let landmarks_denied = matches!(landmark_admission, Admission::Deny { .. });
    let (mut rung, mut result) = if landmarks_denied {
        (
            "astar-v3",
            snapshot.db.run_with_budgets(
                Algorithm::AStar(AStarVersion::V3),
                job.from,
                job.to,
                budgets,
            ),
        )
    } else if hierarchy_denied {
        (
            below_v5.0,
            snapshot
                .db
                .run_with_budgets(below_v5.1, job.from, job.to, budgets),
        )
    } else {
        (
            "primary",
            snapshot
                .db
                .run_with_budgets(shared.algorithm, job.from, job.to, budgets),
        )
    };

    // Ticks consumed by failed rungs whose traces were discarded before
    // a later rung replaced them (exact spend is unknowable without
    // threading IoStats through errors, so each is a one-unit floor).
    let mut consumed: u64 = 0;

    // Hierarchy trouble (a missing or stale overlay): count it against
    // the hierarchy breaker, announce the degrade, and fall to the
    // strongest flat rung — still exact answers, just more expansions.
    let hierarchy_failure = match &result {
        Err(e @ AlgorithmError::HierarchyUnavailable(_)) => Some(e.to_string()),
        _ => None,
    };
    if let Some(reason) = hierarchy_failure {
        let t = hierarchy_probe.failure(now);
        shared.emit_transition("hierarchy", t);
        shared.inc("serve_hierarchy_degraded_total");
        shared.emit(ServeEvent::AlgorithmDegraded {
            request: job.id,
            from: rung.to_string(),
            to: below_v5.0.to_string(),
            reason,
            at_tick: now,
        });
        consumed += 1;
        rung = below_v5.0;
        result = snapshot
            .db
            .run_with_budgets(below_v5.1, job.from, job.to, budgets);
    } else if needs_hierarchy && !hierarchy_denied && result.is_ok() {
        let t = hierarchy_probe.success();
        shared.emit_transition("hierarchy", t);
    }

    // Landmark trouble: count it against the landmark breaker and fall
    // to v3 (exact, estimator degraded to Manhattan-family bounds).
    if let Err(AlgorithmError::LandmarksUnavailable(_)) = &result {
        let t = landmark_probe.failure(now);
        shared.emit_transition("landmarks", t);
        consumed += 1;
        rung = "astar-v3";
        result = snapshot.db.run_with_budgets(
            Algorithm::AStar(AStarVersion::V3),
            job.from,
            job.to,
            budgets,
        );
    } else if needs_landmarks && !landmarks_denied && result.is_ok() {
        let t = landmark_probe.success();
        shared.emit_transition("landmarks", t);
    }

    // Storage trouble: count it, then retry once on Dijkstra (transient
    // fault counters advance, and the plain algorithm reads fewer
    // blocks than an estimator-guided one under partial information).
    if let Err(AlgorithmError::Storage(_)) = &result {
        let t = storage_probe.failure(now);
        shared.emit_transition("storage", t);
        if matches!(
            shared.breakers.storage.state(),
            BreakerState::Closed | BreakerState::HalfOpen
        ) {
            consumed += 1;
            rung = "dijkstra";
            result = snapshot
                .db
                .run_with_budgets(Algorithm::Dijkstra, job.from, job.to, budgets);
        }
    }

    match result {
        Ok(trace) => {
            let t = storage_probe.success();
            shared.emit_transition("storage", t);
            let cost_units = trace.cost_units(snapshot.db.params());
            consumed += ticks(cost_units);
            if let Some(path) = &trace.path {
                cache_insert(
                    shared,
                    snapshot,
                    job.from,
                    job.to,
                    path.clone(),
                    trace.iterations,
                    cost_units,
                );
            }
            let outcome = if rung == "primary" {
                RouteOutcome::Computed
            } else {
                RouteOutcome::Degraded { rung }
            };
            (
                Ok(Exec {
                    path: trace.path,
                    outcome,
                    epoch: install,
                    iterations: trace.iterations,
                    cost_units,
                }),
                consumed,
            )
        }
        Err(e) => {
            // A cost-budget abort read blocks until it crossed its
            // allowance, so it is charged in full; any other failure's
            // partial spend is the floor.
            consumed += match &e {
                AlgorithmError::BudgetExceeded(BudgetKind::CostUnits) => {
                    budgets.max_cost_units.map_or(1, ticks).max(1)
                }
                _ => 1,
            };
            match e {
                AlgorithmError::BudgetExceeded(BudgetKind::CostUnits) if deadline_binding => {
                    // The deadline, not the database's own budget,
                    // stopped the run: this is a shed, not an algorithm
                    // failure — and no verdict on storage health, so a
                    // held probe slot is released by the guard.
                    (
                        Err(ServeError::Shed {
                            reason: ShedReason::DeadlineExpired,
                            retry_after: shared.default_deadline_ticks,
                            queue_depth: 0,
                        }),
                        consumed,
                    )
                }
                e @ AlgorithmError::Storage(_) => {
                    let t = storage_probe.failure(now);
                    shared.emit_transition("storage", t);
                    if let AlgorithmError::Storage(fault) = &e {
                        shared.inc(storage_fault_metric(fault));
                    }
                    let result = match stale_or_shed(
                        shared,
                        snapshot,
                        job.from,
                        job.to,
                        shared.retry_unit_ticks,
                    ) {
                        Ok(exec) => Ok(exec),
                        Err(ServeError::Shed { .. }) => Err(ServeError::from(e)),
                        Err(other) => Err(other),
                    };
                    if let Ok(exec) = &result {
                        consumed += ticks(exec.cost_units);
                    }
                    (result, consumed)
                }
                e @ (AlgorithmError::Graph(_)
                | AlgorithmError::UnknownSource(_)
                | AlgorithmError::UnknownDestination(_)) => {
                    // Deterministic failures — a corrupt graph or
                    // endpoints absent from it. No degrade rung can
                    // answer these, so they are counted and surfaced
                    // immediately rather than retried or served stale.
                    shared.inc("serve_deterministic_error_total");
                    (Err(ServeError::from(e)), consumed)
                }
                e => (Err(ServeError::from(e)), consumed),
            }
        }
    }
}

/// Metric name classifying a storage fault observed on the serving
/// path. Every `StorageError` variant is named so that when the storage
/// crate grows a failure mode, the degrade ladder is forced to decide
/// how serving should count it; the `_` arm exists only because the
/// enum is `#[non_exhaustive]`.
fn storage_fault_metric(fault: &StorageError) -> &'static str {
    match fault {
        StorageError::IoFailed { .. } => "serve_storage_fault_io_total",
        StorageError::CorruptBlock { .. } => "serve_storage_fault_corrupt_total",
        StorageError::KeyNotFound(_) => "serve_storage_fault_key_total",
        StorageError::SlotOutOfRange { .. } => "serve_storage_fault_slot_total",
        StorageError::InvalidValue(_) => "serve_storage_fault_value_total",
        StorageError::CapacityExceeded { .. } => "serve_storage_fault_capacity_total",
        _ => "serve_storage_fault_other_total",
    }
}

/// Looks a key up in the cache family the service runs: the legacy
/// single-epoch check in global mode, the stamped epoch-vector check in
/// sharded mode.
fn cache_lookup(
    shared: &Shared,
    snapshot: &ShardSnapshot,
    from: NodeId,
    to: NodeId,
) -> Option<CachedRoute> {
    if shared.sharded() {
        shared.cache.lookup_vec(from, to, &snapshot.epochs)
    } else {
        shared.cache.lookup(from, to, snapshot.install())
    }
}

/// Inserts a computed route into the running cache family. In sharded
/// mode the entry is stamped with the version (from the pinned vector)
/// of every shard the path crosses.
fn cache_insert(
    shared: &Shared,
    snapshot: &ShardSnapshot,
    from: NodeId,
    to: NodeId,
    path: Path,
    iterations: u64,
    cost_units: f64,
) {
    if shared.sharded() {
        let stamps: Vec<(u32, u64)> = shared
            .epoch_db
            .map()
            .path_shards(&path.nodes)
            .into_iter()
            .map(|shard| (shard, snapshot.epochs.version(shard)))
            .collect();
        let route = CachedRoute {
            path,
            epoch: snapshot.install(),
            iterations,
            cost_units,
        };
        shared.cache.insert_stamped(from, to, route, stamps);
    } else {
        shared.cache.insert(
            from,
            to,
            CachedRoute {
                path,
                epoch: snapshot.install(),
                iterations,
                cost_units,
            },
        );
    }
}

/// The ladder's last rung: a stale-tier answer tagged with its age, or a
/// typed breaker-open shed when even that is empty.
fn stale_or_shed(
    shared: &Shared,
    snapshot: &ShardSnapshot,
    from: NodeId,
    to: NodeId,
    retry_after: u64,
) -> Result<Exec, ServeError> {
    if let Some((route, age)) =
        shared
            .cache
            .lookup_stale(from, to, snapshot.install(), shared.stale_max_age)
    {
        return Ok(Exec {
            path: Some(route.path),
            outcome: RouteOutcome::Stale { age },
            epoch: route.epoch,
            iterations: route.iterations,
            cost_units: route.cost_units,
        });
    }
    Err(ServeError::Shed {
        reason: ShedReason::BreakerOpen,
        retry_after: retry_after.max(1),
        queue_depth: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_graph::{CostModel, Grid, QueryKind};
    use atis_obs::{MetricsRegistry, RingSink};

    fn grid_service(config: ServeConfig) -> (RouteService, Grid) {
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let db = Database::open(grid.graph()).unwrap();
        (RouteService::new(db, config), grid)
    }

    #[test]
    fn answers_match_a_direct_run() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(2));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let answer = service.route(s, d).unwrap();
        assert_eq!(answer.epoch, 0);
        assert!(!answer.cached);
        assert_eq!(answer.outcome, RouteOutcome::Computed);
        assert_eq!(answer.class, RequestClass::Interactive);

        let oracle = Database::open(grid.graph()).unwrap();
        let expected = oracle.run(service.algorithm(), s, d).unwrap();
        assert_eq!(answer.path, expected.path);
        assert_eq!(answer.iterations, expected.iterations);
    }

    #[test]
    fn second_identical_request_is_served_from_cache_bit_identically() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(1));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let fresh = service.route(s, d).unwrap();
        let cached = service.route(s, d).unwrap();
        assert!(!fresh.cached && cached.cached);
        assert_eq!(cached.outcome, RouteOutcome::CacheHit);
        assert_eq!(fresh.path, cached.path);
        assert_eq!(fresh.iterations, cached.iterations);
        assert_eq!(fresh.cost_units.to_bits(), cached.cost_units.to_bits());
        let stats = service.cache().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn updates_bump_the_epoch_and_change_answers() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(2));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let before = service.route(s, d).unwrap();
        let path = before.path.clone().unwrap();
        let (u, v) = path.hops().next().unwrap();
        let update = service.update_edge_cost(u, v, 500.0).unwrap();
        assert_eq!(update.epoch, 1);
        let after = service.route(s, d).unwrap();
        assert_eq!(after.epoch, 1);
        assert!(!after.cached, "the jammed entry must have been invalidated");
        assert_ne!(before.path, after.path);
    }

    #[test]
    fn full_queue_sheds_with_a_typed_reason() {
        // One worker, capacity 1: park the worker on a long request by
        // flooding; at least one submission must be shed.
        let (service, grid) = grid_service(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_cache_capacity(0),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let mut tickets = Vec::new();
        let mut shed = 0;
        for _ in 0..50 {
            match service.submit(s, d) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Shed {
                    reason,
                    retry_after,
                    queue_depth,
                }) => {
                    assert_eq!(reason, ShedReason::QueueFull);
                    assert_eq!(queue_depth, 1);
                    assert!(retry_after >= 1);
                    shed += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(
            shed > 0,
            "a capacity-1 queue must shed under a 50-request burst"
        );
        for t in tickets {
            assert!(t.wait().unwrap().path.is_some());
        }
    }

    #[test]
    fn interactive_requests_displace_queued_bulk_work() {
        let (service, grid) = grid_service(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(2)
                .with_cache_capacity(0),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        // Fill the queue with bulk work (plus whatever the worker takes).
        let bulk: Vec<Ticket> = (0..12)
            .filter_map(|_| service.submit_with(s, d, RequestClass::Bulk, None).ok())
            .collect();
        // Interactive submissions displace queued bulk jobs until the
        // queue holds no more bulk to displace.
        let mut displaced_observed = 0;
        let mut interactive = Vec::new();
        for _ in 0..12 {
            if let Ok(t) = service.submit(s, d) {
                interactive.push(t);
            }
        }
        for t in bulk {
            match t.wait() {
                Ok(answer) => assert!(answer.path.is_some()),
                Err(ServeError::Shed { reason, .. }) => {
                    assert!(
                        reason == ShedReason::Displaced || reason == ShedReason::DeadlineExpired,
                        "bulk sheds must be displacement/deadline, got {reason:?}"
                    );
                    displaced_observed += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(
            displaced_observed > 0,
            "interactive pressure must displace queued bulk work"
        );
        for t in interactive {
            assert!(t.wait().is_ok(), "admitted interactive work completes");
        }
    }

    #[test]
    fn expired_deadlines_shed_at_dequeue_without_running() {
        let (service, grid) = grid_service(
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(64)
                .with_cache_capacity(0),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        // Burst enough work that the virtual clock (advanced by each
        // completed run's cost units) passes the tiny deadline of the
        // later requests while they queue.
        let tickets: Vec<Ticket> = (0..24)
            .filter_map(|_| {
                service
                    .submit_with(s, d, RequestClass::Interactive, Some(2))
                    .ok()
            })
            .collect();
        let mut expired = 0;
        for t in tickets {
            match t.wait() {
                Ok(answer) => assert!(answer.path.is_some()),
                Err(ServeError::Shed { reason, .. }) => {
                    assert_eq!(reason, ShedReason::DeadlineExpired);
                    expired += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(
            expired > 0,
            "2-tick deadlines must expire while queued behind real runs"
        );
    }

    #[test]
    fn drop_drains_admitted_requests() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(1));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let tickets: Vec<Ticket> = (0..8).map(|_| service.submit(s, d).unwrap()).collect();
        drop(service);
        for t in tickets {
            assert!(
                t.wait().unwrap().path.is_some(),
                "admitted requests must be answered"
            );
        }
    }

    #[test]
    fn unknown_endpoints_fail_per_request_not_per_service() {
        let (service, grid) = grid_service(ServeConfig::default().with_workers(2));
        let err = service.route(NodeId(9999), NodeId(0)).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Algorithm(AlgorithmError::UnknownSource(_))
        ));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        assert!(
            service.route(s, d).is_ok(),
            "the pool must survive failed requests"
        );
    }

    #[test]
    fn storage_breaker_opens_and_serves_stale_then_recovers() {
        use atis_storage::FaultPlan;
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let (s, d) = grid.query_pair(QueryKind::Diagonal);

        // Replay the warm-up against an inert-fault oracle to learn
        // exactly how many physical reads it consumes, so the brownout
        // window can be placed deterministically *after* it.
        let oracle = Database::open(grid.graph())
            .unwrap()
            .with_fault_plan(FaultPlan::inert(3));
        let trace = oracle.run(ServeConfig::default().algorithm, s, d).unwrap();
        let path = trace.path.clone().unwrap();
        let (u, v) = path.hops().next().unwrap();
        let mut updated = oracle.clone();
        updated.update_edge_cost(u, v, path.cost + 100.0).unwrap();
        let warm_reads = oracle.faults().unwrap().lock().unwrap().reads();

        // The brownout: every read after the warm-up fails, for a
        // 40-operation window, then storage recovers.
        let window = (warm_reads + 1, warm_reads + 40);
        let db = Database::open(grid.graph())
            .unwrap()
            .with_fault_plan(FaultPlan::inert(3).with_read_failure_window(window.0, window.1, 1.0));
        let service = RouteService::new(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_breaker(BreakerConfig {
                    failure_threshold: 2,
                    open_ticks: 50,
                    probes: 1,
                }),
        );

        // Warm the cache, then retire the entry so the stale tier has it.
        let fresh = service.route(s, d).unwrap();
        assert_eq!(fresh.outcome, RouteOutcome::Computed);
        service.update_edge_cost(u, v, path.cost + 100.0).unwrap();

        // Drive the storm: typed failures trip the breaker, the open
        // breaker stale-serves, probes burn through the fault window one
        // read at a time, and the first probe past the window re-closes
        // the breaker.
        let mut stale_seen = 0;
        let mut opened = false;
        for _ in 0..400 {
            match service.route(s, d) {
                Ok(answer) => {
                    if let RouteOutcome::Stale { age } = answer.outcome {
                        assert!(age >= 1);
                        assert!(answer.epoch < service.epoch());
                        stale_seen += 1;
                    }
                }
                Err(ServeError::Shed { reason, .. }) => {
                    assert_eq!(reason, ShedReason::BreakerOpen);
                }
                Err(ServeError::Algorithm(AlgorithmError::Storage(_))) => {}
                Err(e) => panic!("unexpected {e}"),
            }
            if matches!(
                service.breaker_state("storage"),
                Some(BreakerState::Open { .. })
            ) {
                opened = true;
            }
            if opened && service.breaker_state("storage") == Some(BreakerState::Closed) {
                break;
            }
        }
        assert!(opened, "repeated storage faults must open the breaker");
        assert!(
            stale_seen > 0,
            "an open breaker with a retired route must stale-serve"
        );
        assert_eq!(
            service.breaker_state("storage"),
            Some(BreakerState::Closed),
            "the breaker must re-close once the brownout ends"
        );
    }

    #[test]
    fn metrics_and_spans_cover_the_request_life_cycle() {
        let registry = MetricsRegistry::shared();
        let ring = RingSink::shared(256);
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let db = Database::open(grid.graph()).unwrap();
        let service = RouteService::with_observability(
            db,
            ServeConfig::default().with_workers(1),
            Some(registry.clone()),
            Some(ring.clone() as SharedSink),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        service.route(s, d).unwrap();
        service.route(s, d).unwrap();
        let path = service.route(s, d).unwrap().path.unwrap();
        let (u, v) = path.hops().next().unwrap();
        service.update_edge_cost(u, v, 400.0).unwrap();

        assert_eq!(registry.counter("serve_requests_total"), 3);
        assert_eq!(registry.counter("serve_worker_0_requests_total"), 3);
        assert_eq!(registry.counter("serve_epoch_installs_total"), 1);
        assert_eq!(registry.counter("cache_hits_total"), 2);
        assert_eq!(registry.counter("cache_misses_total"), 1);
        assert!(registry.counter("cache_invalidations_total") >= 1);
        assert!(
            registry
                .histogram("serve_queue_wait_seconds")
                .unwrap()
                .count
                >= 3
        );
        assert!(registry.histogram("serve_service_seconds").unwrap().count >= 3);

        let events = ring.events();
        let json: Vec<String> = events.iter().map(|e| e.to_json()).collect();
        for kind in [
            "serve_submitted",
            "serve_started",
            "serve_cache_hit",
            "serve_completed",
            "serve_epoch_installed",
        ] {
            assert!(
                json.iter()
                    .any(|j| j.contains(&format!(r#""type":"{kind}""#))),
                "missing {kind} span in {json:#?}"
            );
        }
    }

    #[test]
    fn shed_events_and_counters_fire_on_queue_full() {
        let registry = MetricsRegistry::shared();
        let ring = RingSink::shared(256);
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let db = Database::open(grid.graph()).unwrap();
        let service = RouteService::with_observability(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_cache_capacity(0),
            Some(registry.clone()),
            Some(ring.clone() as SharedSink),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let mut tickets = Vec::new();
        let mut shed = 0;
        for _ in 0..40 {
            match service.submit(s, d) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Shed { .. }) => shed += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        for t in tickets {
            let _ = t.wait();
        }
        if shed > 0 {
            assert!(registry.counter("serve_shed_total") >= shed);
            let json: Vec<String> = ring.events().iter().map(|e| e.to_json()).collect();
            assert!(
                json.iter().any(|j| j.contains(r#""type":"serve_shed""#)),
                "shed spans must be emitted"
            );
        }
    }

    #[test]
    fn virtual_clock_advances_with_completed_work() {
        let (service, grid) = grid_service(
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0),
        );
        assert_eq!(service.now_ticks(), 0);
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let answer = service.route(s, d).unwrap();
        let after_one = service.now_ticks();
        assert!(
            after_one > answer.cost_units as u64,
            "clock {after_one} must cover the dequeue tick plus {} cost units",
            answer.cost_units
        );
        service.route(s, d).unwrap();
        assert!(service.now_ticks() > after_one);
    }

    #[test]
    fn a_tripped_landmark_breaker_recovers_through_query_probing() {
        use atis_preprocess::{LandmarkTables, PreprocessConfig};
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let tables = LandmarkTables::build(grid.graph(), PreprocessConfig::grid_default()).unwrap();
        let db = Database::open(grid.graph()).unwrap().with_landmarks(tables);
        let service = RouteService::new(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_algorithm(Algorithm::AStar(AStarVersion::V4))
                .with_breaker(BreakerConfig {
                    failure_threshold: 1,
                    open_ticks: 8,
                    probes: 1,
                }),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);

        // Trip the landmark breaker, exactly as a failed rebuild would.
        let tripped = service
            .shared
            .breakers
            .landmarks
            .on_failure(service.now_ticks());
        assert!(tripped.is_some(), "threshold 1 must trip on one failure");

        // While open, the ladder starts at v3.
        let degraded = service.route(s, d).unwrap();
        assert_eq!(
            degraded.outcome,
            RouteOutcome::Degraded { rung: "astar-v3" }
        );

        // Each served query advances the virtual clock; once the open
        // window elapses, admission half-opens the breaker, a request
        // probes v4, and its success re-closes the machine — the
        // breaker must not stay open forever after landmarks recover.
        let mut recovered = false;
        for _ in 0..64 {
            if service.route(s, d).unwrap().outcome == RouteOutcome::Computed {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "an elapsed open window must let v4 probe back");
        assert_eq!(
            service.breaker_state("landmarks"),
            Some(BreakerState::Closed)
        );
    }

    #[test]
    fn a_stale_hierarchy_degrades_v5_to_v4_with_a_typed_event() {
        use atis_hierarchy::{Hierarchy, HierarchyConfig};
        use atis_preprocess::{LandmarkTables, PreprocessConfig};
        let registry = MetricsRegistry::shared();
        let ring = RingSink::shared(256);
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        // Overlay built on the pristine grid, landmarks on the mutated
        // copy the service actually runs: v5 fails typed (stale), the
        // ladder lands on v4, and the answer is still exact.
        let overlay = Hierarchy::build(grid.graph(), HierarchyConfig::paper()).unwrap();
        let mut changed = grid.graph().clone();
        changed
            .set_edge_cost(grid.node_at(2, 2), grid.node_at(2, 3), 9.0)
            .unwrap();
        let tables = LandmarkTables::build(&changed, PreprocessConfig::grid_default()).unwrap();
        let db = Database::open(&changed)
            .unwrap()
            .with_hierarchy(overlay)
            .with_landmarks(tables);
        let service = RouteService::with_observability(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_algorithm(Algorithm::AStar(AStarVersion::V5)),
            Some(registry.clone()),
            Some(ring.clone() as SharedSink),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let answer = service.route(s, d).unwrap();
        assert_eq!(answer.outcome, RouteOutcome::Degraded { rung: "astar-v4" });
        let oracle = atis_algorithms::memory::dijkstra_pair(&changed, s, d).unwrap();
        assert!((answer.path.unwrap().cost - oracle.cost).abs() < 1e-3);
        assert_eq!(registry.counter("serve_hierarchy_degraded_total"), 1);
        assert_eq!(registry.counter("serve_degraded_total"), 1);
        let json: Vec<String> = ring.events().iter().map(|e| e.to_json()).collect();
        let degrade = json
            .iter()
            .find(|j| j.contains(r#""type":"serve_algorithm_degraded""#))
            .expect("the v5 -> v4 fall must be announced");
        assert!(degrade.contains(r#""from":"primary""#), "{degrade}");
        assert!(degrade.contains(r#""to":"astar-v4""#), "{degrade}");
        assert!(degrade.contains("stale"), "{degrade}");
    }

    #[test]
    fn a_stale_hierarchy_without_landmarks_degrades_v5_to_v3() {
        use atis_hierarchy::{Hierarchy, HierarchyConfig};
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let overlay = Hierarchy::build(grid.graph(), HierarchyConfig::paper()).unwrap();
        let mut changed = grid.graph().clone();
        changed
            .set_edge_cost(grid.node_at(2, 2), grid.node_at(2, 3), 9.0)
            .unwrap();
        let db = Database::open(&changed).unwrap().with_hierarchy(overlay);
        let service = RouteService::new(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_algorithm(Algorithm::AStar(AStarVersion::V5)),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let answer = service.route(s, d).unwrap();
        assert_eq!(answer.outcome, RouteOutcome::Degraded { rung: "astar-v3" });
        let oracle = atis_algorithms::memory::dijkstra_pair(&changed, s, d).unwrap();
        assert!((answer.path.unwrap().cost - oracle.cost).abs() < 1e-3);
    }

    #[test]
    fn a_tripped_hierarchy_breaker_recovers_through_query_probing() {
        use atis_hierarchy::{Hierarchy, HierarchyConfig};
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let overlay = Hierarchy::build(grid.graph(), HierarchyConfig::paper()).unwrap();
        let db = Database::open(grid.graph())
            .unwrap()
            .with_hierarchy(overlay);
        let service = RouteService::new(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_algorithm(Algorithm::AStar(AStarVersion::V5))
                .with_breaker(BreakerConfig {
                    failure_threshold: 1,
                    open_ticks: 8,
                    probes: 1,
                }),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);

        // Trip the hierarchy breaker, exactly as a failed re-contraction
        // would.
        let tripped = service
            .shared
            .breakers
            .hierarchy
            .on_failure(service.now_ticks());
        assert!(tripped.is_some(), "threshold 1 must trip on one failure");

        // While open, the ladder starts below v5 (no landmark tables
        // here, so at v3).
        let degraded = service.route(s, d).unwrap();
        assert_eq!(
            degraded.outcome,
            RouteOutcome::Degraded { rung: "astar-v3" }
        );

        // Once the open window elapses, admission half-opens the
        // breaker, a request probes v5, and its success re-closes it.
        let mut recovered = false;
        for _ in 0..64 {
            if service.route(s, d).unwrap().outcome == RouteOutcome::Computed {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "an elapsed open window must let v5 probe back");
        assert_eq!(
            service.breaker_state("hierarchy"),
            Some(BreakerState::Closed)
        );
    }

    #[test]
    fn updates_maintain_the_hierarchy_and_count_refreshes() {
        use atis_hierarchy::{Hierarchy, HierarchyConfig};
        let registry = MetricsRegistry::shared();
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let overlay = Hierarchy::build(grid.graph(), HierarchyConfig::paper()).unwrap();
        let db = Database::open(grid.graph())
            .unwrap()
            .with_hierarchy(overlay);
        let service = RouteService::with_observability(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_algorithm(Algorithm::AStar(AStarVersion::V5)),
            Some(registry.clone()),
            None,
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let (a, b) = (grid.node_at(2, 2), grid.node_at(2, 3));

        // Congestion: customize. The very next request runs v5 at full
        // fidelity against the re-priced overlay.
        let up = service.update_edge_cost(a, b, 9.0).unwrap();
        assert_eq!(up.hierarchy, HierarchyRefresh::Customized);
        assert_eq!(registry.counter("serve_hierarchy_customized_total"), 1);
        let answer = service.route(s, d).unwrap();
        assert_eq!(answer.outcome, RouteOutcome::Computed);
        let snap = service.snapshot();
        let oracle = atis_algorithms::memory::dijkstra_pair(snap.db.graph(), s, d).unwrap();
        assert!((answer.path.unwrap().cost - oracle.cost).abs() < 1e-9);

        // The jam clears: re-contract.
        let down = service.update_edge_cost(a, b, 1.0).unwrap();
        assert_eq!(down.hierarchy, HierarchyRefresh::Recontracted);
        assert_eq!(registry.counter("serve_hierarchy_recontracted_total"), 1);
        let answer = service.route(s, d).unwrap();
        assert_eq!(answer.outcome, RouteOutcome::Computed);
        assert_eq!(registry.counter("serve_hierarchy_degraded_total"), 0);
    }

    #[test]
    fn a_deadline_shed_probe_releases_the_storage_breaker_slot() {
        let (service, grid) = grid_service(
            ServeConfig::default()
                .with_workers(1)
                .with_cache_capacity(0)
                .with_breaker(BreakerConfig {
                    failure_threshold: 1,
                    open_ticks: 64,
                    probes: 1,
                }),
        );
        let (s, d) = grid.query_pair(QueryKind::Diagonal);

        // Trip the storage breaker at tick 0: open until tick 64.
        let tripped = service.shared.breakers.storage.on_failure(0);
        assert!(tripped.is_some());

        // While open, requests shed with the breaker's *actual*
        // countdown (not the queue-depth retry formula), and each shed
        // still ticks the clock by its dequeue.
        match service.route(s, d) {
            Err(ServeError::Shed {
                reason,
                retry_after,
                ..
            }) => {
                assert_eq!(reason, ShedReason::BreakerOpen);
                assert!(
                    retry_after > 16,
                    "retry_after {retry_after} must be the breaker countdown, \
                     not the 16-tick retry unit"
                );
            }
            other => panic!("open breaker must shed, got {other:?}"),
        }
        while service.now_ticks() < 64 {
            let _ = service.route(s, d);
        }

        // The open window has elapsed: the next request is admitted as
        // the half-open probe, but its 3-tick deadline aborts the run
        // mid-expansion — a shed, with no verdict on storage health.
        let before = service.now_ticks();
        match service.route_with(s, d, RequestClass::Interactive, Some(3)) {
            Err(ServeError::Shed { reason, .. }) => {
                assert_eq!(
                    reason,
                    ShedReason::DeadlineExpired,
                    "the probe must be admitted (BreakerOpen would mean denied)"
                );
            }
            other => panic!("a 3-tick deadline must shed mid-run, got {other:?}"),
        }
        // The aborted run burned its whole cost allowance; the clock
        // must be charged for it (dequeue + ⌈allowance⌉), not just the
        // dequeue tick.
        assert!(
            service.now_ticks() >= before + 3,
            "aborted work must still meter the clock: {} -> {}",
            before,
            service.now_ticks()
        );

        // The aborted probe released its slot: the next request probes,
        // succeeds, and re-closes the breaker instead of being denied
        // by a permanently saturated half-open machine.
        let answer = service.route(s, d).unwrap();
        assert_eq!(answer.outcome, RouteOutcome::Computed);
        assert_eq!(service.breaker_state("storage"), Some(BreakerState::Closed));
    }

    /// A grid big enough for the partition map to yield several regions
    /// (and so several shards) — the 6×6 test grid collapses to one.
    fn sharded_service(config: ServeConfig) -> (RouteService, Grid) {
        let grid = Grid::new(32, CostModel::TWENTY_PERCENT, 7).unwrap();
        let db = Database::open(grid.graph()).unwrap();
        (RouteService::new(db, config), grid)
    }

    #[test]
    fn sharded_answers_match_the_global_mode_across_updates() {
        let grid = Grid::new(32, CostModel::TWENTY_PERCENT, 7).unwrap();
        let global = RouteService::new(
            Database::open(grid.graph()).unwrap(),
            ServeConfig::default().with_workers(1),
        );
        let sharded = RouteService::new(
            Database::open(grid.graph()).unwrap(),
            ServeConfig::default().with_workers(1).with_shards(8),
        );
        assert!(sharded.shards() > 1, "the 32-grid must split into shards");
        let pairs = [
            (grid.node_at(0, 0), grid.node_at(31, 31)),
            (grid.node_at(0, 31), grid.node_at(31, 0)),
            (grid.node_at(4, 4), grid.node_at(27, 29)),
        ];
        for (u, v, cost) in [
            (grid.node_at(10, 10), grid.node_at(10, 11), 9.0),
            (grid.node_at(30, 30), grid.node_at(30, 31), 11.0),
        ] {
            global.update_edge_cost(u, v, cost).unwrap();
            sharded.update_edge_cost(u, v, cost).unwrap();
            for &(s, d) in &pairs {
                let a = global.route(s, d).unwrap();
                let b = sharded.route(s, d).unwrap();
                assert_eq!(
                    a.path.as_ref().map(|p| &p.nodes),
                    b.path.as_ref().map(|p| &p.nodes),
                    "sharded answers must be bit-identical to global ones"
                );
                assert_eq!(a.path.map(|p| p.cost), b.path.map(|p| p.cost));
                assert_eq!(a.epoch, b.epoch, "both modes count installs globally");
            }
        }
    }

    #[test]
    fn a_far_shard_update_keeps_a_sharded_route_cached_where_global_drops_it() {
        // A cheap jam increase on a far-away edge: the legacy cache
        // cannot see the old cost, so `new_cost < path.cost` forces it
        // to drop the entry; the sharded cache sees the update never
        // touches the route's shards and keeps it hot.
        let (global, grid) = sharded_service(ServeConfig::default().with_workers(1));
        let (sharded, _) = sharded_service(ServeConfig::default().with_workers(1).with_shards(8));
        let (s, d) = (grid.node_at(0, 0), grid.node_at(0, 3));
        let (ju, jv) = (grid.node_at(31, 30), grid.node_at(31, 31));
        for service in [&global, &sharded] {
            assert_eq!(service.route(s, d).unwrap().outcome, RouteOutcome::Computed);
            service.update_edge_cost(ju, jv, 2.5).unwrap();
        }
        assert_eq!(
            sharded.route(s, d).unwrap().outcome,
            RouteOutcome::CacheHit,
            "an untouched-shard route must survive the update"
        );
        assert_ne!(
            global.route(s, d).unwrap().outcome,
            RouteOutcome::CacheHit,
            "the global epoch must have dropped the same route"
        );
    }

    /// Spin until the worker pool has emitted `Started` for `request` —
    /// the deterministic "the plug is running solo" barrier the batching
    /// tests queue up behind.
    fn wait_for_started(sink: &std::sync::Arc<RingSink>, request: u64) {
        for _ in 0..20_000 {
            let started = sink.events().iter().any(|e| {
                matches!(
                    e,
                    TraceEvent::Serve(ServeEvent::Started { request: r, .. }) if *r == request
                )
            });
            if started {
                return;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        panic!("worker never started request {request}");
    }

    #[test]
    fn a_batched_worker_folds_queued_requests_into_one_shared_sweep() {
        use atis_storage::FaultPlan;
        let registry = MetricsRegistry::shared();
        let sink = RingSink::shared(256);
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        // Slow, reliable reads: the plug request holds the lone worker
        // for milliseconds while the microsecond-scale submits below
        // pile up behind it.
        let db = Database::open(grid.graph()).unwrap().with_fault_plan(
            FaultPlan::inert(0x5EED).with_read_latency(Duration::from_micros(100)),
        );
        let oracle = Database::open(grid.graph()).unwrap();
        let service = RouteService::with_observability(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_batch_max(8)
                .with_cache_capacity(0)
                .with_algorithm(Algorithm::Dijkstra),
            Some(registry.clone()),
            Some(sink.clone()),
        );
        let plug = service
            .submit(grid.node_at(5, 5), grid.node_at(0, 0))
            .unwrap();
        wait_for_started(&sink, plug.id());
        let s = grid.node_at(0, 0);
        let targets = [
            grid.node_at(5, 5),
            grid.node_at(0, 5),
            grid.node_at(5, 0),
            grid.node_at(5, 5), // duplicate key: singleflight member
        ];
        let tickets: Vec<Ticket> = targets
            .iter()
            .map(|&d| service.submit(s, d).unwrap())
            .collect();
        plug.wait().unwrap();
        let answers: Vec<RouteAnswer> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        for (answer, &d) in answers.iter().zip(&targets) {
            let solo = oracle.run(Algorithm::Dijkstra, s, d).unwrap();
            assert_eq!(
                answer.path.as_ref().unwrap().nodes,
                solo.path.as_ref().unwrap().nodes,
                "batched answers must be bit-identical to solo runs"
            );
            assert_eq!(answer.iterations, solo.iterations);
            assert_eq!(answer.outcome, RouteOutcome::Computed);
        }
        // All four answers came from one charged sweep: every member
        // reports the same shared cost, and exactly one batch ran.
        assert!(answers
            .iter()
            .all(|a| a.cost_units == answers[0].cost_units));
        assert_eq!(registry.counter("serve_batched_runs_total"), 1);
        let batches: Vec<(u64, u64)> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Serve(ServeEvent::BatchExecuted { size, groups, .. }) => {
                    Some((*size, *groups))
                }
                _ => None,
            })
            .collect();
        assert_eq!(batches, vec![(4, 3)], "4 requests, 3 distinct keys");
    }

    #[test]
    fn batching_never_regresses_a_lone_interactive_request() {
        // Fairness bound 1 (drain-only): with an idle queue a batched
        // service serves a lone request exactly as an unbatched one —
        // same outcome, same clock charge, no waiting for a batch.
        let (batched, grid) =
            grid_service(ServeConfig::default().with_workers(1).with_batch_max(8));
        let (plain, _) = grid_service(ServeConfig::default().with_workers(1));
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let a = batched.route(s, d).unwrap();
        let b = plain.route(s, d).unwrap();
        assert_eq!(
            a.path.as_ref().map(|p| &p.nodes),
            b.path.as_ref().map(|p| &p.nodes)
        );
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.cost_units, b.cost_units);
        assert_eq!(batched.now_ticks(), plain.now_ticks());
    }

    #[test]
    fn batched_non_dijkstra_groups_run_singleflight_per_key() {
        // An estimator-guided primary cannot share frontiers, but
        // identical (from, to) keys still collapse into one run.
        use atis_storage::FaultPlan;
        let registry = MetricsRegistry::shared();
        let sink = RingSink::shared(256);
        let grid = Grid::new(6, CostModel::TWENTY_PERCENT, 7).unwrap();
        let db = Database::open(grid.graph()).unwrap().with_fault_plan(
            FaultPlan::inert(0x5EED).with_read_latency(Duration::from_micros(100)),
        );
        let service = RouteService::with_observability(
            db,
            ServeConfig::default()
                .with_workers(1)
                .with_batch_max(8)
                .with_cache_capacity(0),
            Some(registry.clone()),
            Some(sink.clone()),
        );
        let plug = service
            .submit(grid.node_at(5, 5), grid.node_at(0, 0))
            .unwrap();
        wait_for_started(&sink, plug.id());
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let tickets: Vec<Ticket> = (0..3).map(|_| service.submit(s, d).unwrap()).collect();
        plug.wait().unwrap();
        let answers: Vec<RouteAnswer> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert!(answers.iter().all(|a| a.outcome == RouteOutcome::Computed));
        assert!(answers
            .windows(2)
            .all(|w| w[0].path.as_ref().unwrap().nodes == w[1].path.as_ref().unwrap().nodes));
        // No shared sweep ran (not Dijkstra), every request was counted,
        // and the singleflight saved two runs' worth of cache misses.
        assert_eq!(registry.counter("serve_batched_runs_total"), 0);
        assert_eq!(registry.counter("serve_requests_total"), 4);
    }
}
