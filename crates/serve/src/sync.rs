//! The serve crate's synchronization choke point.
//!
//! Two jobs in one small module:
//!
//! 1. **The `cfg(loom)` shim.** Every sync primitive the serving layer
//!    uses is imported from here, so building with
//!    `RUSTFLAGS="--cfg loom"` swaps `std::sync` for `loom::sync` (the
//!    vendored bounded-interleaving stand-in — see `vendor/loom`) and
//!    the loom model tests in `tests/loom_models.rs` exercise the real
//!    serving code under perturbed schedules.
//! 2. **The designated acquisition helpers.** [`lock`] and [`wait`]
//!    are the only places in the crate allowed to call `Mutex::lock` /
//!    `Condvar::wait` directly — `atis-analyze`'s `lock-discipline`
//!    rule enforces this (this file is exempt). They encode the crate's
//!    poisoning policy: a panicking worker must not wedge the whole
//!    service, so a poisoned lock is recovered with `into_inner` — all
//!    state guarded here (queue, snapshot slot, cache table, answer
//!    slots) stays structurally valid mid-update.
//!
//! Call-site discipline: per-lock named helpers (`lock_queue`,
//! `lock_current`, `lock_entries`, `lock_slot`, `lock_breaker`) wrap [`lock`] so the
//! `lock-order` rule can check the declared acquisition order
//! (`atis-analyze rules` prints it) at every call site.

#[cfg(loom)]
pub(crate) use loom::sync::{Arc, Condvar, Mutex, MutexGuard};
#[cfg(loom)]
pub(crate) use loom::thread;

#[cfg(not(loom))]
pub(crate) use std::sync::{Arc, Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
pub(crate) use std::thread;

/// Acquires `m`, recovering from poisoning: the guarded structures are
/// never left logically torn by a panicking holder (each critical
/// section completes its update before releasing), so continuing with
/// the inner value is sound and keeps the service available.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Blocks on `cv`, with the same poisoning policy as [`lock`].
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
