//! # atis-serve — the concurrent query-serving layer
//!
//! The paper's IVHS setting is a *serving* problem: many in-vehicle
//! clients querying one central map database (Section 1.1). This crate
//! turns the workspace's single-query planner into a first-class
//! concurrent service:
//!
//! * **Worker pool + admission control** ([`RouteService`]) — a fixed
//!   pool of worker threads executes planner runs drawn from a bounded
//!   submission queue. A full queue rejects new requests with
//!   [`ServeError::Busy`] (the `BUSY` wire reply) instead of queueing
//!   unboundedly, so admitted-request latency stays bounded and overload
//!   is pushed back to clients, not absorbed as memory growth.
//! * **Epoch snapshots** ([`EpochDb`]) — `ROUTE` queries run in parallel
//!   against an immutable `Arc<Database>` snapshot while `UPDATE`
//!   traffic installs a new epoch copy-on-write. Every answer carries the
//!   epoch it was computed at; no answer can mix pre- and post-update
//!   edge costs.
//! * **Invalidation-aware route cache** ([`RouteCache`]) — LRU-bounded,
//!   keyed by `(from, to, epoch)`. An update drops exactly the entries
//!   it could have changed (path uses the updated edge, or the new cost
//!   undercuts the cached total) and promotes the rest to the new epoch
//!   without recomputation; cache hits are bit-identical to fresh runs.
//!
//! The whole subsystem is threaded through `atis-obs`: request-level
//! trace spans ([`atis_obs::ServeEvent`]), per-worker counters, queue
//! depth/wait and service-time histograms, and the cache counters
//! (`cache_hits_total`, `cache_misses_total`,
//! `cache_invalidations_total`) that the route server's `STATS` command
//! serves.
//!
//! See `SERVING.md` at the repository root for the architecture diagram,
//! the admission-control policy, the cache-invalidation rules, and the
//! wire-protocol additions; `examples/route_server.rs` is the thin TCP
//! front-end over this crate.
//!
//! ## Example
//!
//! ```
//! use atis_algorithms::Database;
//! use atis_graph::{CostModel, Grid, QueryKind};
//! use atis_serve::{RouteService, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = Grid::new(8, CostModel::TWENTY_PERCENT, 1)?;
//! let service = RouteService::new(Database::open(grid.graph())?, ServeConfig::default());
//! let (s, d) = grid.query_pair(QueryKind::Diagonal);
//!
//! let fresh = service.route(s, d)?;
//! let cached = service.route(s, d)?;
//! assert!(!fresh.cached && cached.cached);
//! assert_eq!(fresh.path, cached.path); // hits are bit-identical
//!
//! // Live traffic: a new epoch; the jammed entry is invalidated.
//! let hop = fresh.path.as_ref().unwrap().hops().next().unwrap();
//! let update = service.update_edge_cost(hop.0, hop.1, 99.0)?;
//! assert_eq!(update.epoch, 1);
//! assert_eq!(service.route(s, d)?.epoch, 1);
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod epoch;
pub mod error;
pub mod service;
pub(crate) mod sync;

pub use cache::{CacheStats, CachedRoute, RouteCache};
pub use epoch::{EpochDb, EpochUpdate, LandmarkRefresh, Snapshot};
pub use error::ServeError;
pub use service::{RouteAnswer, RouteService, ServeConfig, Ticket};
