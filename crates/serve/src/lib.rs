//! # atis-serve — the concurrent, overload-resilient query-serving layer
//!
//! The paper's IVHS setting is a *serving* problem: many in-vehicle
//! clients querying one central map database (Section 1.1). This crate
//! turns the workspace's single-query planner into a first-class
//! concurrent service that stays predictable under overload and
//! storage faults:
//!
//! * **Worker pool + two-class admission control** ([`RouteService`]) —
//!   a fixed pool of worker threads executes planner runs drawn from a
//!   bounded, two-class (interactive / bulk) submission queue. Under
//!   pressure the service sheds the least valuable work first —
//!   expired-deadline requests, then queued bulk work displaced for
//!   interactive traffic — and refuses the rest with a typed
//!   [`ServeError::Shed`] (the `SHED` wire reply) carrying a
//!   `retry_after` hint, so overload is pushed back to clients, not
//!   absorbed as memory growth.
//! * **Deadline propagation** ([`Deadline`]) — every admitted request
//!   carries an expiry on a deterministic virtual clock; the remaining
//!   ticks flow into the planner's cost-unit budget, so a request that
//!   would blow its deadline stops consuming block reads mid-expansion
//!   instead of completing uselessly.
//! * **Epoch snapshots** ([`EpochDb`]) — `ROUTE` queries run in parallel
//!   against an immutable `Arc<Database>` snapshot while `UPDATE`
//!   traffic installs a new epoch copy-on-write. Every answer carries the
//!   epoch it was computed at; no answer can mix pre- and post-update
//!   edge costs.
//! * **Circuit breakers + stale-serve degradation** ([`CircuitBreaker`])
//!   — per-resource breakers (storage, landmark rebuilds) open after a
//!   threshold of typed errors and route requests down a degrade ladder
//!   whose final rung serves the last good cached answer tagged
//!   [`RouteOutcome::Stale`] (the `STALE k` wire reply); half-open
//!   probing re-closes a breaker once the fault clears.
//! * **Invalidation-aware route cache** ([`RouteCache`]) — LRU-bounded,
//!   keyed by `(from, to, epoch)`. An update drops exactly the entries
//!   it could have changed (path uses the updated edge, or the new cost
//!   undercuts the cached total) and promotes the rest to the new epoch
//!   without recomputation; invalidated entries retire into the stale
//!   tier that backs the degrade ladder's last rung.
//! * **Deterministic chaos harness** ([`chaos`]) — seeded overload
//!   waves (arrival bursts, `UPDATE` storms, injected I/O brownouts)
//!   driven against a real service, asserting the resilience
//!   invariants: no torn answers, every request ends in a typed
//!   outcome, breakers re-close after faults clear.
//!
//! The whole subsystem is threaded through `atis-obs`: request-level
//! trace spans ([`atis_obs::ServeEvent`]), per-worker counters, queue
//! depth/wait and service-time histograms, shed/stale/breaker counters,
//! and the cache counters (`cache_hits_total`, `cache_misses_total`,
//! `cache_invalidations_total`) that the route server's `STATS` command
//! serves.
//!
//! See `SERVING.md` at the repository root for the architecture diagram,
//! the overload policy, the cache-invalidation rules, and the
//! wire-protocol additions; `examples/route_server.rs` is the thin TCP
//! front-end over this crate.
//!
//! ## Example
//!
//! ```
//! use atis_algorithms::Database;
//! use atis_graph::{CostModel, Grid, QueryKind};
//! use atis_serve::{RouteService, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = Grid::new(8, CostModel::TWENTY_PERCENT, 1)?;
//! let service = RouteService::new(Database::open(grid.graph())?, ServeConfig::default());
//! let (s, d) = grid.query_pair(QueryKind::Diagonal);
//!
//! let fresh = service.route(s, d)?;
//! let cached = service.route(s, d)?;
//! assert!(!fresh.cached && cached.cached);
//! assert_eq!(fresh.path, cached.path); // hits are bit-identical
//!
//! // Live traffic: a new epoch; the jammed entry is invalidated.
//! let hop = fresh.path.as_ref().unwrap().hops().next().unwrap();
//! let update = service.update_edge_cost(hop.0, hop.1, 99.0)?;
//! assert_eq!(update.epoch, 1);
//! assert_eq!(service.route(s, d)?.epoch, 1);
//! # Ok(()) }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod breaker;
pub mod cache;
#[cfg(not(loom))]
pub mod chaos;
pub mod epoch;
pub mod error;
pub mod service;
pub mod shard;
pub(crate) mod sync;

pub use breaker::{
    Admission, BreakerConfig, BreakerState, BreakerTransition, CircuitBreaker, ProbeGuard,
};
pub use cache::{CacheStats, CachedRoute, RouteCache};
#[cfg(not(loom))]
pub use chaos::{ChaosReport, ChaosScenario, OutcomeCounts};
pub use epoch::{EpochDb, EpochUpdate, HierarchyRefresh, LandmarkRefresh, Snapshot};
pub use error::{ServeError, ShedReason};
pub use service::{
    Deadline, RequestClass, RouteAnswer, RouteOutcome, RouteService, ServeConfig, Ticket,
};
pub use shard::{EpochVector, ShardMap, ShardSnapshot, ShardedEpochDb, ShardedUpdate};
