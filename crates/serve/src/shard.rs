//! Sharded epoch state: per-shard versions so an `UPDATE` does not
//! stop the world.
//!
//! The global [`crate::epoch::EpochDb`] stamps every install with one
//! epoch number, which makes *every* update look like it touched the
//! whole network: the route cache must sweep (and re-stamp) every
//! entry, and a cached route between two untouched suburbs misses just
//! because a street jammed on the other side of the city.
//!
//! Sharding splits the serving state along the storage engine's own
//! [`PartitionMap`] region groups ([`ShardMap`]): each shard carries its
//! own version counter, and an update bumps only the shards whose
//! blocks it touches — the endpoints' shards — plus one global
//! *install* counter that totally orders installs.
//!
//! ## The epoch-vector consistency rule
//!
//! A query pins one [`ShardSnapshot`]: the `Arc<Database>` plus the
//! whole [`EpochVector`] it was installed with, taken under one lock
//! acquisition. Because the database and the vector are replaced
//! together atomically, every cross-shard route runs against *one*
//! consistent vector — it can never observe shard 3 at version 5 and
//! shard 4 at version 4 from two different installs. Answers carry the
//! snapshot's install counter, which plays the role the scalar epoch
//! played before: a total order on what the answer reflects.
//!
//! Cached routes are then validated per shard: an entry stamped with
//! the versions of the shards its path crosses is still exact at a
//! later snapshot as long as those per-shard versions are unchanged —
//! updates elsewhere provably cannot have touched it (see `cache.rs`
//! for the full invalidation rule).
//!
//! The database itself stays whole-graph (one `Arc<Database>` per
//! install): sharding versions the *validity* of derived state, it does
//! not split the storage engine. Landmark tables and the contraction
//! hierarchy remain whole-graph epoch artifacts maintained exactly as
//! in the global scheme (`maintain_artifacts`).

use crate::epoch::{maintain_artifacts, EpochUpdate, HierarchyRefresh, LandmarkRefresh};
use crate::sync::{self, Arc, Mutex, MutexGuard};
use atis_algorithms::{AlgorithmError, Database};
use atis_graph::{Graph, NodeId, PartitionMap};

/// Region size the partitioner targets when building shard maps — the
/// workspace convention (storage blocks, hierarchy ordering, scaling
/// bench all partition at 256).
const REGION_TARGET: usize = 256;

/// Maps every node to a serving shard: a contiguous group of
/// [`PartitionMap`] regions.
///
/// Shards follow the storage layout on purpose: regions are
/// block-aligned (PR 7's class-aware BFS partitioning), so the shards
/// whose versions an update bumps are exactly the region groups whose
/// blocks it dirtied.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shard_of: Vec<u32>,
    shards: u32,
}

impl ShardMap {
    /// The trivial one-shard map (every node in shard 0) — the global
    /// epoch scheme expressed in shard form.
    pub fn single(nodes: usize) -> Self {
        ShardMap {
            shard_of: vec![0; nodes],
            shards: 1,
        }
    }

    /// Partitions `graph` into (at most) `shards` region groups: the
    /// storage partitioner grows block-aligned regions, which are then
    /// grouped contiguously. Deterministic for a given graph.
    pub fn build(graph: &Graph, shards: usize) -> Self {
        if shards <= 1 || graph.node_count() == 0 {
            return Self::single(graph.node_count());
        }
        let partition = PartitionMap::build(graph, REGION_TARGET);
        let regions = partition.region_count().max(1);
        let shards = shards.min(regions) as u32;
        let shard_of = (0..graph.node_count())
            .map(|id| {
                let region = partition.region_of(NodeId(id as u32)) as u64;
                (region * shards as u64 / regions as u64) as u32
            })
            .collect();
        ShardMap { shard_of, shards }
    }

    /// The shard owning `node` (unknown ids map to shard 0, matching
    /// the engine's treatment of out-of-range keys as errors upstream).
    pub fn shard_of(&self, node: NodeId) -> u32 {
        self.shard_of.get(node.0 as usize).copied().unwrap_or(0)
    }

    /// Number of shards (≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards as usize
    }

    /// Whether this is the trivial single-shard map.
    pub fn is_single(&self) -> bool {
        self.shards == 1
    }

    /// The sorted, deduplicated set of shards a node sequence (a path)
    /// crosses.
    pub fn path_shards(&self, nodes: &[NodeId]) -> Vec<u32> {
        let mut shards: Vec<u32> = nodes.iter().map(|&n| self.shard_of(n)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }
}

/// Per-shard versions plus the global install counter, frozen at one
/// install. Immutable once published (readers share it by `Arc`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochVector {
    install: u64,
    versions: Vec<u64>,
}

impl EpochVector {
    fn new(shards: usize) -> Self {
        EpochVector {
            install: 0,
            versions: vec![0; shards.max(1)],
        }
    }

    /// Direct constructor for in-crate tests of the stamped cache.
    #[cfg(test)]
    pub(crate) fn with_versions(install: u64, versions: Vec<u64>) -> Self {
        EpochVector { install, versions }
    }

    /// The global install counter: a total order on installs, and the
    /// number every answer reports as its epoch.
    pub fn install(&self) -> u64 {
        self.install
    }

    /// The version of one shard (unknown shards read 0).
    pub fn version(&self, shard: u32) -> u64 {
        self.versions.get(shard as usize).copied().unwrap_or(0)
    }

    /// All per-shard versions, indexed by shard id.
    pub fn versions(&self) -> &[u64] {
        &self.versions
    }

    /// Number of shards in the vector.
    pub fn shard_count(&self) -> usize {
        self.versions.len()
    }
}

/// An immutable view of the sharded serving state at one install: the
/// database plus the epoch vector it was installed with, taken together
/// under one lock acquisition (the consistency rule).
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// The database frozen at this install.
    pub db: Arc<Database>,
    /// The per-shard versions this database reflects.
    pub epochs: Arc<EpochVector>,
}

impl ShardSnapshot {
    /// The snapshot's global install counter (the answer epoch).
    pub fn install(&self) -> u64 {
        self.epochs.install()
    }
}

/// The result of installing one traffic update on sharded state.
#[derive(Debug, Clone)]
pub struct ShardedUpdate {
    /// The classic update record; `update.epoch` is the new global
    /// install counter.
    pub update: EpochUpdate,
    /// The shards whose versions this install bumped (sorted, deduped).
    pub shards: Vec<u32>,
    /// The epoch vector after the install.
    pub epochs: Arc<EpochVector>,
}

/// A database versioned by a per-shard epoch vector: lock-briefly
/// reads, copy-on-write updates that bump only the touched shards.
#[derive(Debug)]
pub struct ShardedEpochDb {
    map: Arc<ShardMap>,
    current: Mutex<ShardSnapshot>,
}

impl ShardedEpochDb {
    /// Wraps a freshly loaded database as install 0 with every shard at
    /// version 0.
    pub fn new(db: Database, map: ShardMap) -> Self {
        let shards = map.shard_count();
        ShardedEpochDb {
            map: Arc::new(map),
            current: Mutex::new(ShardSnapshot {
                db: Arc::new(db),
                epochs: Arc::new(EpochVector::new(shards)),
            }),
        }
    }

    /// Designated acquirer for the epoch slot (rank 2 in the declared
    /// lock order — see `sync.rs` and `atis-analyze rules`).
    fn lock_current(&self) -> MutexGuard<'_, ShardSnapshot> {
        sync::lock(&self.current)
    }

    /// The node-to-shard map this store versions by.
    pub fn map(&self) -> &Arc<ShardMap> {
        &self.map
    }

    /// The current `(database, epoch vector)` pair. Queries must use
    /// the returned snapshot for *all* their reads — re-fetching
    /// mid-query is exactly the torn-answer bug snapshots prevent, and
    /// mixing two snapshots' vectors breaks the consistency rule.
    pub fn snapshot(&self) -> ShardSnapshot {
        self.lock_current().clone()
    }

    /// The current global install counter.
    pub fn install(&self) -> u64 {
        self.lock_current().epochs.install()
    }

    /// Applies a traffic update copy-on-write: clones the current
    /// database, updates edge `(u, v)` on the clone, and installs it
    /// with the endpoint shards' versions (and the install counter)
    /// bumped. Running queries keep their old snapshots; untouched
    /// shards keep their versions, which is what lets the cache carry
    /// their routes across the install without a sweep.
    ///
    /// Landmark tables and the contraction hierarchy follow the same
    /// maintenance contract as [`crate::epoch::EpochDb`] — they are
    /// whole-graph artifacts, so their refresh is keyed to the install,
    /// not to a shard.
    ///
    /// # Errors
    /// Fails for unknown endpoints or invalid costs; the current
    /// install is left untouched.
    pub fn update_edge_cost(
        &self,
        u: NodeId,
        v: NodeId,
        cost: f64,
    ) -> Result<ShardedUpdate, AlgorithmError> {
        let mut current = self.lock_current();
        if !current.db.graph().contains(u) {
            return Err(AlgorithmError::UnknownSource(u));
        }
        if !current.db.graph().contains(v) {
            return Err(AlgorithmError::UnknownDestination(v));
        }
        let old_cost = current.db.graph().edge_cost(u, v).unwrap_or(f64::INFINITY);
        let mut next: Database = (*current.db).clone();
        let updated = next.update_edge_cost(u, v, cost)?;
        let mut landmarks = LandmarkRefresh::None;
        let mut hierarchy = HierarchyRefresh::None;
        if updated > 0 {
            (next, landmarks, hierarchy) = maintain_artifacts(next, old_cost, cost);
        }
        let shards = self.map.path_shards(&[u, v]);
        let mut epochs: EpochVector = (*current.epochs).clone();
        epochs.install += 1;
        for &s in &shards {
            if let Some(version) = epochs.versions.get_mut(s as usize) {
                *version += 1;
            }
        }
        let epochs: Arc<EpochVector> = Arc::new(epochs);
        *current = ShardSnapshot {
            db: Arc::new(next),
            epochs: epochs.clone(),
        };
        let install = epochs.install();
        drop(current);
        Ok(ShardedUpdate {
            update: EpochUpdate {
                epoch: install,
                updated,
                old_cost,
                new_cost: cost,
                landmarks,
                hierarchy,
            },
            shards,
            epochs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atis_algorithms::Algorithm;
    use atis_graph::{CostModel, Grid, QueryKind};

    // 32×32 = 1024 nodes: four-plus regions at the 256 target, so a
    // 4-shard map is genuinely multi-shard.
    fn grid_store(shards: usize) -> (ShardedEpochDb, Grid) {
        let grid = Grid::new(32, CostModel::TWENTY_PERCENT, 7).unwrap();
        let map = ShardMap::build(grid.graph(), shards);
        let db = Database::open(grid.graph()).unwrap();
        (ShardedEpochDb::new(db, map), grid)
    }

    #[test]
    fn shard_map_covers_every_node_and_respects_the_bound() {
        let grid = Grid::new(32, CostModel::TWENTY_PERCENT, 7).unwrap();
        let map = ShardMap::build(grid.graph(), 4);
        assert!(map.shard_count() >= 1 && map.shard_count() <= 4);
        let mut seen = vec![false; map.shard_count()];
        for id in 0..grid.graph().node_count() {
            let s = map.shard_of(NodeId(id as u32));
            assert!((s as usize) < map.shard_count());
            seen[s as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "every shard must own at least one node"
        );
    }

    #[test]
    fn single_map_is_the_global_scheme() {
        let map = ShardMap::single(16);
        assert!(map.is_single());
        assert_eq!(map.shard_of(NodeId(7)), 0);
        assert_eq!(map.path_shards(&[NodeId(1), NodeId(9)]), vec![0]);
    }

    #[test]
    fn updates_bump_only_the_touched_shards() {
        let (store, grid) = grid_store(4);
        let map = store.map().clone();
        let u = grid.node_at(0, 0);
        let v = grid.node_at(0, 1);
        let before = store.snapshot();
        let upd = store.update_edge_cost(u, v, 9.0).unwrap();
        assert_eq!(upd.update.epoch, 1);
        assert_eq!(upd.shards, map.path_shards(&[u, v]));
        let after = store.snapshot();
        assert_eq!(after.install(), 1);
        for s in 0..map.shard_count() as u32 {
            let expect = if upd.shards.contains(&s) {
                before.epochs.version(s) + 1
            } else {
                before.epochs.version(s)
            };
            assert_eq!(after.epochs.version(s), expect, "shard {s}");
        }
        // At least one shard must be untouched on a 4-shard grid for a
        // corner-local update.
        assert!(upd.shards.len() < map.shard_count());
    }

    #[test]
    fn snapshots_pin_database_and_vector_together() {
        let (store, grid) = grid_store(4);
        let (s, d) = grid.query_pair(QueryKind::Diagonal);
        let before = store.snapshot();
        let path = before
            .db
            .run(Algorithm::Dijkstra, s, d)
            .unwrap()
            .path
            .unwrap();
        let (u, v) = path.hops().next().unwrap();
        store.update_edge_cost(u, v, 500.0).unwrap();
        // The pinned snapshot still answers with pre-update costs and
        // its own vector — never a mix.
        assert_eq!(before.install(), 0);
        let replay = before.db.run(Algorithm::Dijkstra, s, d).unwrap();
        assert_eq!(replay.path.unwrap().nodes, path.nodes);
        let after = store.snapshot();
        assert_eq!(after.install(), 1);
        assert_ne!(
            after.db.graph().edge_cost(u, v),
            before.db.graph().edge_cost(u, v)
        );
    }

    #[test]
    fn failed_updates_do_not_advance_the_install() {
        let (store, _) = grid_store(4);
        assert!(store
            .update_edge_cost(NodeId(0), NodeId(1), f64::NAN)
            .is_err());
        assert!(store
            .update_edge_cost(NodeId(60000), NodeId(1), 1.0)
            .is_err());
        assert_eq!(store.install(), 0);
    }
}
