//! Typed serving-layer failures.

use atis_algorithms::AlgorithmError;
use std::fmt;

/// Why admission control (or the overload policy) refused to spend more
/// work on a request. Every reason is actionable for the client: back
/// off for `retry_after` virtual ticks and try again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShedReason {
    /// The bounded submission queue was full and nothing lower-priority
    /// could be displaced.
    QueueFull,
    /// The request's deadline expired — while queued, or mid-run when
    /// the deadline-derived cost budget ran out.
    DeadlineExpired,
    /// A queued bulk request was evicted to admit interactive work.
    Displaced,
    /// A circuit breaker is open for a resource the request needs, and
    /// no stale answer was available to degrade to.
    BreakerOpen,
}

impl ShedReason {
    /// Stable lowercase label (wire protocol, trace events).
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::DeadlineExpired => "deadline-expired",
            ShedReason::Displaced => "displaced",
            ShedReason::BreakerOpen => "breaker-open",
        }
    }
}

/// Why the serving layer could not answer a request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The overload policy shed this request: admission refused it, it
    /// was displaced from the queue, or its deadline expired. This is
    /// the `SHED` wire reply, not a failure of the request itself — the
    /// client should back off and retry.
    Shed {
        /// Why the request was shed.
        reason: ShedReason,
        /// Suggested back-off before retrying, in virtual-time ticks.
        retry_after: u64,
        /// Queue depth at the moment of shedding.
        queue_depth: usize,
    },
    /// The service is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The planner run itself failed (unknown endpoints, storage fault,
    /// exhausted budget).
    Algorithm(AlgorithmError),
}

impl ServeError {
    /// Whether this is a shed (overload push-back) rather than a hard
    /// failure.
    pub fn is_shed(&self) -> bool {
        matches!(self, ServeError::Shed { .. })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Shed {
                reason,
                retry_after,
                queue_depth,
            } => {
                write!(
                    f,
                    "shed ({}): retry after {retry_after} ticks ({queue_depth} waiting)",
                    reason.label()
                )
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Algorithm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Algorithm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlgorithmError> for ServeError {
    fn from(e: AlgorithmError) -> Self {
        ServeError::Algorithm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let shed = ServeError::Shed {
            reason: ShedReason::QueueFull,
            retry_after: 12,
            queue_depth: 8,
        };
        assert!(shed.to_string().contains("8 waiting"));
        assert!(shed.to_string().contains("queue-full"));
        assert!(shed.to_string().contains("12 ticks"));
        assert!(shed.is_shed());
        assert!(ServeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        assert!(!ServeError::ShuttingDown.is_shed());
        let e = ServeError::from(AlgorithmError::UnknownSource(atis_graph::NodeId(9)));
        assert!(e.to_string().contains("unknown source"));
    }

    #[test]
    fn shed_reason_labels_are_stable() {
        assert_eq!(ShedReason::QueueFull.label(), "queue-full");
        assert_eq!(ShedReason::DeadlineExpired.label(), "deadline-expired");
        assert_eq!(ShedReason::Displaced.label(), "displaced");
        assert_eq!(ShedReason::BreakerOpen.label(), "breaker-open");
    }
}
