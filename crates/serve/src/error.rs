//! Typed serving-layer failures.

use atis_algorithms::AlgorithmError;
use std::fmt;

/// Why the serving layer could not answer a request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Admission control rejected the request: the bounded submission
    /// queue was full. The client should back off and retry — this is the
    /// `BUSY` wire reply, not a failure of the request itself.
    Busy {
        /// Queue depth at the moment of rejection (== the capacity).
        queue_depth: usize,
    },
    /// The service is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The planner run itself failed (unknown endpoints, storage fault,
    /// exhausted budget).
    Algorithm(AlgorithmError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy { queue_depth } => {
                write!(f, "busy: submission queue full ({queue_depth} waiting)")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Algorithm(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Algorithm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlgorithmError> for ServeError {
    fn from(e: AlgorithmError) -> Self {
        ServeError::Algorithm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        assert!(ServeError::Busy { queue_depth: 8 }
            .to_string()
            .contains("8 waiting"));
        assert!(ServeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        let e = ServeError::from(AlgorithmError::UnknownSource(atis_graph::NodeId(9)));
        assert!(e.to_string().contains("unknown source"));
    }
}
