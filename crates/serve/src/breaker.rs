//! Per-resource circuit breakers for the serving layer.
//!
//! A breaker watches one failure-prone resource (the storage engine
//! under fault injection, the landmark rebuild path) and cuts traffic to
//! it once typed errors pile up, so a browning-out disk degrades service
//! *once* instead of making every request rediscover the outage at full
//! I/O cost. The classic three-state machine, driven entirely by the
//! service's deterministic virtual clock (no wall time, consistent with
//! the analyze determinism rules):
//!
//! ```text
//!        failure (count < threshold)
//!        ┌──────┐
//!        ▼      │
//!      CLOSED ──┴── count == threshold ──▶ OPEN (until = now + open_ticks)
//!        ▲                                   │
//!        │ probe succeeds                    │ now >= until
//!        │                                   ▼
//!        └────────────────────────────── HALF-OPEN ── probe fails ──▶ OPEN
//! ```
//!
//! * **Closed** — traffic flows; consecutive typed failures are counted,
//!   any success resets the count.
//! * **Open** — traffic is denied (the service skips the resource's
//!   degrade-ladder rungs and falls through to stale-serve) until the
//!   virtual clock reaches `until`.
//! * **Half-open** — up to `probes` requests are admitted as probes; one
//!   success re-closes the breaker, one failure re-opens it for another
//!   `open_ticks`.
//!
//! State transitions are reported back to the caller (never emitted from
//! inside the lock) so the service can mirror them into trace events and
//! metrics.

use crate::sync::{self, Mutex, MutexGuard};

/// Tuning for one [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive typed failures that trip a closed breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker denies traffic, in virtual-time ticks.
    pub open_ticks: u64,
    /// Concurrent probe requests a half-open breaker admits.
    pub probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_ticks: 256,
            probes: 1,
        }
    }
}

/// A breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows normally.
    Closed,
    /// Traffic is denied until the virtual clock reaches `until`.
    Open {
        /// Tick at which the breaker transitions to half-open.
        until: u64,
    },
    /// Bounded probing is in progress.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label (trace events, wire, docs).
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// A state transition, reported so the service can emit it as a trace
/// event outside the breaker lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

/// What [`CircuitBreaker::admit`] decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: proceed normally.
    Allow,
    /// Breaker half-open: proceed, and report the result — this request
    /// decides whether the breaker re-closes.
    Probe,
    /// Breaker open: do not touch the resource; retry in `retry_after`
    /// ticks.
    Deny {
        /// Ticks until the breaker will half-open.
        retry_after: u64,
    },
}

#[derive(Debug)]
struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    probes_in_flight: u32,
}

/// A three-state circuit breaker over a deterministic virtual clock.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                probes_in_flight: 0,
            }),
        }
    }

    /// Designated acquirer for the breaker state (rank 5, innermost in
    /// the declared lock order — see `sync.rs`).
    fn lock_breaker(&self) -> MutexGuard<'_, Inner> {
        sync::lock(&self.state)
    }

    /// The tuning in force.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// A snapshot of the current state (no time-based transition is
    /// applied; use [`CircuitBreaker::admit`] to drive the machine).
    pub fn state(&self) -> BreakerState {
        self.lock_breaker().state
    }

    /// Gates one request at virtual time `now`. An open breaker whose
    /// window has elapsed transitions to half-open here and admits the
    /// caller as the probe.
    pub fn admit(&self, now: u64) -> (Admission, Option<BreakerTransition>) {
        let mut inner = self.lock_breaker();
        match inner.state {
            BreakerState::Closed => (Admission::Allow, None),
            BreakerState::Open { until } if now >= until => {
                let from = inner.state;
                inner.state = BreakerState::HalfOpen;
                inner.probes_in_flight = 1;
                (
                    Admission::Probe,
                    Some(BreakerTransition {
                        from,
                        to: BreakerState::HalfOpen,
                    }),
                )
            }
            BreakerState::Open { until } => (
                Admission::Deny {
                    retry_after: until.saturating_sub(now).max(1),
                },
                None,
            ),
            BreakerState::HalfOpen => {
                if inner.probes_in_flight < self.config.probes {
                    inner.probes_in_flight += 1;
                    (Admission::Probe, None)
                } else {
                    (Admission::Deny { retry_after: 1 }, None)
                }
            }
        }
    }

    /// Records a success against the resource. Re-closes a half-open
    /// breaker; resets the failure count of a closed one.
    pub fn on_success(&self) -> Option<BreakerTransition> {
        let mut inner = self.lock_breaker();
        inner.consecutive_failures = 0;
        match inner.state {
            BreakerState::HalfOpen => {
                let from = inner.state;
                inner.state = BreakerState::Closed;
                inner.probes_in_flight = 0;
                Some(BreakerTransition {
                    from,
                    to: BreakerState::Closed,
                })
            }
            _ => None,
        }
    }

    /// Returns a half-open probe slot without judging the resource: the
    /// probe run was aborted for an unrelated reason (a deadline shed, a
    /// caller-side error), so its outcome says nothing about health. A
    /// no-op in any other state — a concurrent success/failure already
    /// resolved the machine, and the slot accounting went with it.
    pub fn release_probe(&self) {
        let mut inner = self.lock_breaker();
        if inner.state == BreakerState::HalfOpen {
            inner.probes_in_flight = inner.probes_in_flight.saturating_sub(1);
        }
    }

    /// Records a typed failure against the resource at virtual time
    /// `now`. Trips a closed breaker at the threshold; re-opens a
    /// half-open one immediately.
    pub fn on_failure(&self, now: u64) -> Option<BreakerTransition> {
        let mut inner = self.lock_breaker();
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    let from = inner.state;
                    inner.state = BreakerState::Open {
                        until: now + self.config.open_ticks,
                    };
                    inner.consecutive_failures = 0;
                    return Some(BreakerTransition {
                        from,
                        to: inner.state,
                    });
                }
                None
            }
            BreakerState::HalfOpen => {
                let from = inner.state;
                inner.state = BreakerState::Open {
                    until: now + self.config.open_ticks,
                };
                inner.probes_in_flight = 0;
                Some(BreakerTransition {
                    from,
                    to: inner.state,
                })
            }
            BreakerState::Open { .. } => None,
        }
    }
}

/// Resolves one admitted request against its breaker exactly once.
///
/// Wraps the [`Admission`] that [`CircuitBreaker::admit`] returned for a
/// request: [`ProbeGuard::success`] / [`ProbeGuard::failure`] report the
/// verdict, and dropping a guard that never reached a verdict (the run
/// was shed on its deadline, or failed for a reason unrelated to the
/// resource) releases the probe slot via
/// [`CircuitBreaker::release_probe`]. Without the release, an aborted
/// probe would leave `probes_in_flight` saturated and wedge the breaker
/// half-open, denying every future admit — the resource would stay
/// bypassed forever even after it recovered.
#[derive(Debug)]
pub struct ProbeGuard<'a> {
    breaker: &'a CircuitBreaker,
    pending: bool,
}

impl<'a> ProbeGuard<'a> {
    /// Guards `breaker` for the request that `admit` answered with
    /// `admission`. Only [`Admission::Probe`] holds a slot to release;
    /// the other admissions make the guard a plain success/failure
    /// forwarder.
    pub fn new(breaker: &'a CircuitBreaker, admission: Admission) -> Self {
        ProbeGuard {
            breaker,
            pending: matches!(admission, Admission::Probe),
        }
    }

    /// Reports the run as a success and defuses the guard.
    pub fn success(&mut self) -> Option<BreakerTransition> {
        self.pending = false;
        self.breaker.on_success()
    }

    /// Reports the run as a typed failure at virtual time `now` and
    /// defuses the guard.
    pub fn failure(&mut self, now: u64) -> Option<BreakerTransition> {
        self.pending = false;
        self.breaker.on_failure(now)
    }
}

impl Drop for ProbeGuard<'_> {
    fn drop(&mut self) {
        if self.pending {
            self.breaker.release_probe();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, open_ticks: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_ticks,
            probes: 1,
        })
    }

    #[test]
    fn trips_open_at_the_threshold_and_not_before() {
        let b = breaker(3, 100);
        assert_eq!(b.on_failure(10), None);
        assert_eq!(b.on_failure(11), None);
        let t = b.on_failure(12).expect("third failure trips");
        assert_eq!(t.from, BreakerState::Closed);
        assert_eq!(t.to, BreakerState::Open { until: 112 });
        assert_eq!(b.state(), BreakerState::Open { until: 112 });
    }

    #[test]
    fn success_resets_the_failure_count() {
        let b = breaker(3, 100);
        b.on_failure(1);
        b.on_failure(2);
        assert_eq!(b.on_success(), None);
        assert_eq!(b.on_failure(3), None);
        assert_eq!(b.on_failure(4), None);
        assert!(b.on_failure(5).is_some(), "count restarted after success");
    }

    #[test]
    fn open_denies_with_a_countdown_then_half_opens() {
        let b = breaker(1, 50);
        b.on_failure(10);
        let (admission, t) = b.admit(20);
        assert_eq!(admission, Admission::Deny { retry_after: 40 });
        assert!(t.is_none());
        let (admission, t) = b.admit(60);
        assert_eq!(admission, Admission::Probe);
        assert_eq!(t.expect("open -> half-open").to, BreakerState::HalfOpen);
        // Only one probe at a time.
        let (second, _) = b.admit(61);
        assert_eq!(second, Admission::Deny { retry_after: 1 });
    }

    #[test]
    fn probe_success_recloses_and_probe_failure_reopens() {
        let b = breaker(1, 50);
        b.on_failure(0);
        b.admit(50);
        let t = b.on_success().expect("half-open -> closed");
        assert_eq!(t.to, BreakerState::Closed);
        assert_eq!(b.admit(51).0, Admission::Allow);

        b.on_failure(60);
        b.admit(110);
        let t = b.on_failure(111).expect("half-open -> open");
        assert_eq!(t.to, BreakerState::Open { until: 161 });
    }

    #[test]
    fn failures_while_open_are_ignored() {
        let b = breaker(1, 50);
        b.on_failure(0);
        assert_eq!(b.on_failure(1), None);
        assert_eq!(b.state(), BreakerState::Open { until: 50 });
    }

    #[test]
    fn an_aborted_probe_releases_its_slot_instead_of_wedging_half_open() {
        let b = breaker(1, 50);
        b.on_failure(0);
        let (admission, _) = b.admit(50);
        assert_eq!(admission, Admission::Probe);
        // The probe run is aborted (deadline shed) with no verdict: the
        // guard's drop must hand the slot back so the next admit probes
        // again instead of being denied forever.
        drop(ProbeGuard::new(&b, admission));
        let (next, _) = b.admit(51);
        assert_eq!(next, Admission::Probe);
    }

    #[test]
    fn a_defused_guard_does_not_release_on_drop() {
        let b = breaker(1, 50);
        b.on_failure(0);
        let (admission, _) = b.admit(50);
        let mut guard = ProbeGuard::new(&b, admission);
        let t = guard.success().expect("half-open -> closed");
        assert_eq!(t.to, BreakerState::Closed);
        drop(guard);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(51).0, Admission::Allow);
    }

    #[test]
    fn release_probe_is_a_no_op_outside_half_open() {
        let b = breaker(1, 50);
        b.release_probe();
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure(0);
        b.release_probe();
        assert_eq!(b.state(), BreakerState::Open { until: 50 });
        // A probe whose failure already re-opened the breaker: the late
        // release must not disturb the open state.
        let (admission, _) = b.admit(50);
        let mut guard = ProbeGuard::new(&b, admission);
        guard.failure(50);
        drop(guard);
        assert_eq!(b.state(), BreakerState::Open { until: 100 });
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(BreakerState::Closed.label(), "closed");
        assert_eq!(BreakerState::Open { until: 9 }.label(), "open");
        assert_eq!(BreakerState::HalfOpen.label(), "half-open");
    }
}
