//! Loom model tests for the serving layer's three load-bearing races.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the `loom` CI job);
//! the whole serving crate then builds against `loom::sync` through the
//! `crate::sync` shim, so these tests exercise the *real* `EpochDb` /
//! `RouteCache` / `RouteService` code under perturbed schedules — not
//! test doubles. The vendored loom stand-in explores bounded randomized
//! interleavings (see `vendor/loom`); upstream loom would explore
//! exhaustively with the same test source.
#![cfg(loom)]

use atis_algorithms::Database;
use atis_graph::{CostModel, Grid, NodeId, Path, QueryKind};
use atis_serve::{
    Admission, BreakerConfig, BreakerState, CachedRoute, CircuitBreaker, EpochDb, ProbeGuard,
    RouteCache, RouteService, ServeConfig, ServeError, ShardMap, ShardedEpochDb,
};
use std::sync::Arc;

fn small_db() -> (Database, NodeId, NodeId) {
    let grid = Grid::new(4, CostModel::TWENTY_PERCENT, 7).expect("grid");
    let (s, d) = grid.query_pair(QueryKind::Diagonal);
    (Database::open(grid.graph()).expect("open"), s, d)
}

/// Race: `update_edge_cost` installing epoch 1 while readers snapshot.
///
/// Invariants checked under every interleaving:
/// * a snapshot is never torn — epoch 0 always carries the pre-update
///   cost, epoch 1 always carries the post-update cost;
/// * epochs observed by one reader never go backwards.
#[test]
fn epoch_install_vs_snapshot_race() {
    let (base, _, _) = small_db();
    // Any real edge works; take the first arc out of node 0.
    let u = NodeId(0);
    let v = base.graph().neighbors(u)[0].to;
    let old_cost = base.graph().edge_cost(u, v).expect("edge");
    let new_cost = old_cost + 50.0;

    loom::model(move || {
        let db = Arc::new(EpochDb::new(base.clone()));

        let writer = {
            let db = db.clone();
            loom::thread::spawn(move || {
                db.update_edge_cost(u, v, new_cost).expect("update");
            })
        };
        let reader = {
            let db = db.clone();
            loom::thread::spawn(move || {
                let mut last_epoch = 0;
                for _ in 0..4 {
                    let snap = db.snapshot();
                    let seen = snap.db.graph().edge_cost(u, v).expect("edge");
                    let expect = if snap.epoch == 0 { old_cost } else { new_cost };
                    assert_eq!(
                        seen.to_bits(),
                        expect.to_bits(),
                        "torn snapshot: epoch {} with cost {seen}",
                        snap.epoch
                    );
                    assert!(snap.epoch >= last_epoch, "epoch went backwards");
                    last_epoch = snap.epoch;
                }
            })
        };
        writer.join().expect("writer");
        reader.join().expect("reader");
        assert_eq!(db.epoch(), 1);
    });
}

/// Race: concurrent submitters against a 1-worker, capacity-1 queue.
///
/// Invariants: every admitted ticket resolves (no lost wakeup, no
/// deadlocked `Ticket::wait`), every rejection is a typed `Shed`, and
/// the admitted + rejected counts add up — no request vanishes.
#[test]
fn admission_queue_reject_path() {
    let (base, s, d) = small_db();

    loom::model(move || {
        let service = Arc::new(RouteService::new(
            base.clone(),
            ServeConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_cache_capacity(0),
        ));

        let submitters: Vec<_> = (0..3)
            .map(|_| {
                let service = service.clone();
                loom::thread::spawn(move || match service.submit(s, d) {
                    Ok(ticket) => {
                        let answer = ticket.wait().expect("admitted request must resolve");
                        assert!(answer.path.is_some(), "grid pair is reachable");
                        assert_eq!(answer.epoch, 0);
                        1u32
                    }
                    Err(e) => {
                        assert!(matches!(e, ServeError::Shed { .. }), "unexpected: {e}");
                        0u32
                    }
                })
            })
            .collect();

        let admitted: u32 = submitters
            .into_iter()
            .map(|h| h.join().expect("join"))
            .sum();
        // At least one request always fits an empty queue; the rest is
        // schedule-dependent, but nothing may be lost.
        assert!((1..=3).contains(&admitted));
    });
}

fn route(nodes: &[u32], cost: f64, epoch: u64) -> CachedRoute {
    CachedRoute {
        path: Path {
            nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
            cost,
        },
        epoch,
        iterations: 3,
        cost_units: 10.0,
    }
}

/// Race: an update sweep promoting/dropping entries while readers look
/// up at both the old and the new epoch.
///
/// Invariants: a hit at epoch `e` always carries `route.epoch == e`; the
/// entry whose path uses the updated edge is never served at the new
/// epoch; the off-path entry survives the sweep (promoted, same bits).
#[test]
fn cache_promote_or_drop_sweep() {
    loom::model(|| {
        let cache = Arc::new(RouteCache::new(8));
        cache.insert(NodeId(1), NodeId(3), route(&[1, 2, 3], 4.0, 0));
        cache.insert(NodeId(4), NodeId(5), route(&[4, 5], 2.0, 0));

        let sweeper = {
            let cache = cache.clone();
            loom::thread::spawn(move || {
                // Congestion on (1,2): drops the through route, promotes
                // the off-path one (99.0 cannot undercut 2.0).
                cache.apply_update(NodeId(1), NodeId(2), 99.0, 1)
            })
        };
        let reader = {
            let cache = cache.clone();
            loom::thread::spawn(move || {
                for _ in 0..4 {
                    if let Some(hit) = cache.lookup(NodeId(1), NodeId(3), 1) {
                        panic!("stale through-route served at epoch 1: {hit:?}");
                    }
                    if let Some(hit) = cache.lookup(NodeId(4), NodeId(5), 1) {
                        assert_eq!(hit.epoch, 1);
                        assert_eq!(hit.path.cost.to_bits(), 2.0f64.to_bits());
                    }
                }
            })
        };

        let (invalidated, promoted) = sweeper.join().expect("sweeper");
        reader.join().expect("reader");
        assert_eq!((invalidated, promoted), (1, 1));
        assert!(cache.lookup(NodeId(1), NodeId(3), 1).is_none());
        assert!(cache.lookup(NodeId(4), NodeId(5), 1).is_some());
    });
}

/// Race: concurrent typed failures and a success racing an epoch
/// install against one circuit breaker.
///
/// Invariants under every interleaving:
/// * at most one of the racing failures reports the `closed → open`
///   transition (the trip fires exactly once, never twice);
/// * the machine is never corrupted — after the race it can always be
///   driven deterministically through trip → probe → re-close;
/// * the epoch install is independent of breaker state (the update
///   lands regardless of how the race resolved).
#[test]
fn breaker_trip_probe_reclose_vs_epoch_install() {
    let (base, _, _) = small_db();
    let u = NodeId(0);
    let v = base.graph().neighbors(u)[0].to;

    loom::model(move || {
        let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            open_ticks: 10,
            probes: 1,
        }));
        let epochs = Arc::new(EpochDb::new(base.clone()));

        let failers: Vec<_> = (0..2)
            .map(|_| {
                let breaker = breaker.clone();
                loom::thread::spawn(move || breaker.on_failure(5).is_some())
            })
            .collect();
        let closer = {
            let breaker = breaker.clone();
            loom::thread::spawn(move || breaker.on_success())
        };
        let installer = {
            let epochs = epochs.clone();
            loom::thread::spawn(move || {
                epochs.update_edge_cost(u, v, 123.0).expect("update");
            })
        };

        let trips: usize = failers
            .into_iter()
            .map(|h| usize::from(h.join().expect("failer")))
            .sum();
        closer.join().expect("closer");
        installer.join().expect("installer");
        assert!(trips <= 1, "the trip transition fired {trips} times");
        assert_eq!(epochs.epoch(), 1, "the update must land regardless");

        // Deterministic tail: whatever the race left behind, the machine
        // must still trip, probe, and re-close cleanly.
        let mut tripped = matches!(breaker.state(), BreakerState::Open { .. });
        for now in 0..4 {
            if tripped {
                break;
            }
            tripped = breaker.on_failure(now).is_some();
        }
        assert!(tripped, "bounded failures must trip the breaker");
        let until = match breaker.state() {
            BreakerState::Open { until } => until,
            other => panic!("expected open, got {other:?}"),
        };
        let (admission, transition) = breaker.admit(until);
        assert_eq!(admission, Admission::Probe);
        assert_eq!(
            transition.expect("open -> half-open").to,
            BreakerState::HalfOpen
        );
        let reclose = breaker.on_success().expect("half-open -> closed");
        assert_eq!(reclose.to, BreakerState::Closed);
        assert_eq!(breaker.state(), BreakerState::Closed);
    });
}

/// Race: an aborted half-open probe (guard dropped without a verdict)
/// against an unrelated failure report landing on the same breaker.
///
/// Invariants under every interleaving:
/// * the machine never wedges — after the race a probe slot is always
///   available again (either the breaker re-opened, whose window then
///   elapses into a fresh probe, or the released slot is re-admitted);
/// * the aborted probe never *closes* the breaker — only a success
///   verdict may do that.
#[test]
fn aborted_probe_release_vs_concurrent_failure() {
    loom::model(|| {
        let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_ticks: 10,
            probes: 1,
        }));
        // Trip and half-open: tick 0 failure opens until 10; the admit
        // at 10 takes the probe slot.
        breaker.on_failure(0);
        let (admission, _) = breaker.admit(10);
        assert_eq!(admission, Admission::Probe);

        let aborter = {
            let breaker = breaker.clone();
            loom::thread::spawn(move || {
                // The probe run is shed on its deadline: no verdict.
                drop(ProbeGuard::new(&*breaker, Admission::Probe));
            })
        };
        let failer = {
            let breaker = breaker.clone();
            loom::thread::spawn(move || breaker.on_failure(11))
        };

        aborter.join().expect("aborter");
        failer.join().expect("failer");

        match breaker.state() {
            // The failure won while half-open: re-opened; the window
            // elapsing must yield a fresh probe.
            BreakerState::Open { until } => {
                assert_eq!(breaker.admit(until).0, Admission::Probe);
            }
            // The release won and the failure saw half-open too — or
            // raced to a no-op; either way the freed slot must be
            // re-admittable, never denied forever.
            BreakerState::HalfOpen => {
                assert_eq!(breaker.admit(12).0, Admission::Probe);
            }
            BreakerState::Closed => panic!("an aborted probe must never close the breaker"),
        }
    });
}

/// Race: a sharded install (`ShardedEpochDb::update_edge_cost`) against
/// a batched worker's snapshot-then-read sequence.
///
/// The batched path pins ONE `ShardSnapshot` per dequeued batch and
/// serves every member from it; the hazard is a torn install — the new
/// database observed with the old epoch vector (or vice versa), which
/// would let a stale-stamped cache hit survive a sweep it should not
/// have. Invariants under every interleaving:
///
/// * database and vector always agree: install 0 ⇔ pre-update cost and
///   untouched endpoint-shard versions; install 1 ⇔ post-update cost
///   and both endpoint shards bumped;
/// * a shard the update never touched stays at version 0 throughout;
/// * the install counter observed by one reader never goes backwards.
#[test]
fn shard_install_vs_batched_read_race() {
    // A grid big enough that the region partitioner yields at least two
    // shards (regions target 256 nodes): 24x24 = 576 nodes.
    let grid = Grid::new(24, CostModel::TWENTY_PERCENT, 7).expect("grid");
    let base = Database::open(grid.graph()).expect("open");
    let map = ShardMap::build(base.graph(), 4);
    assert!(
        map.shard_count() >= 2,
        "model needs a real multi-shard map, got {}",
        map.shard_count()
    );
    let u = NodeId(0);
    let v = base.graph().neighbors(u)[0].to;
    let shard_u = map.shard_of(u);
    let shard_v = map.shard_of(v);
    // A node guaranteed to live in a shard the update does not touch.
    let far = (0..base.graph().node_count() as u32)
        .map(NodeId)
        .find(|&n| map.shard_of(n) != shard_u && map.shard_of(n) != shard_v)
        .expect("multi-shard map has an untouched shard");
    let far_shard = map.shard_of(far);
    let old_cost = base.graph().edge_cost(u, v).expect("edge");
    let new_cost = old_cost + 50.0;

    loom::model(move || {
        let db = Arc::new(ShardedEpochDb::new(base.clone(), map.clone()));

        let writer = {
            let db = db.clone();
            loom::thread::spawn(move || {
                let installed = db.update_edge_cost(u, v, new_cost).expect("install");
                assert_eq!(installed.update.epoch, 1);
                assert!(installed.shards.contains(&shard_u));
            })
        };
        let reader = {
            let db = db.clone();
            loom::thread::spawn(move || {
                let mut last_install = 0;
                for _ in 0..3 {
                    // One snapshot per batch: db + vector under one
                    // lock acquisition (the consistency rule).
                    let snap = db.snapshot();
                    let seen = snap.db.graph().edge_cost(u, v).expect("edge");
                    let install = snap.install();
                    let (want_cost, want_version) = if install == 0 {
                        (old_cost, 0)
                    } else {
                        (new_cost, 1)
                    };
                    assert_eq!(
                        seen.to_bits(),
                        want_cost.to_bits(),
                        "torn install: install {install} with cost {seen}"
                    );
                    assert_eq!(
                        snap.epochs.version(shard_u),
                        want_version,
                        "vector behind the database at install {install}"
                    );
                    assert_eq!(
                        snap.epochs.version(shard_v),
                        want_version,
                        "endpoint shard missed its bump at install {install}"
                    );
                    assert_eq!(
                        snap.epochs.version(far_shard),
                        0,
                        "an untouched shard was bumped"
                    );
                    assert!(install >= last_install, "install counter went backwards");
                    last_install = install;
                }
            })
        };
        writer.join().expect("writer");
        reader.join().expect("reader");
        assert_eq!(db.install(), 1);
    });
}
