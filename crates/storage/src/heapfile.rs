//! Paged heap files of fixed-width tuples with block-level I/O charging.
//!
//! A [`HeapFile`] is the physical body of a relation: a vector of 4096-byte
//! blocks, each holding `BLOCK_SIZE / T::SIZE` tuple slots. Operations
//! charge the borrowed [`IoStats`]:
//!
//! * `scan`-style visits charge one **block read** per block entered;
//! * `read_slot` charges one block read;
//! * `update_slot` charges one **tuple update** (the in-place
//!   read-modify-write the paper prices at `t_update = t_read + t_write`);
//! * `append` stages tuples into the tail block and [`HeapFile::flush`]
//!   charges one **block write** per dirty block — so a bulk load of `|R|`
//!   tuples costs exactly `B_r` writes, matching cost step `C2` of
//!   Tables 2–3.
//!
//! With a [`SharedFaults`] attached (see [`crate::fault`]) every physical
//! block operation consults the fault plan and may fail with
//! [`StorageError::IoFailed`], and the file maintains a per-block checksum
//! of the intended content so torn writes surface as
//! [`StorageError::CorruptBlock`] on the next read. Without faults the
//! checksum machinery is entirely inert and the charged [`IoStats`] are
//! bit-identical to the fault-free build.
//!
//! # Segmentation
//!
//! A heap file created with [`HeapFile::create_segmented`] is split into
//! fixed-size **segments** of `segment_blocks` blocks each, every segment
//! carrying its own buffer-pool file id. Logically nothing changes — slot
//! addressing, scans and charging are identical to the single-file layout
//! — but the buffer pool now sees one *file* per segment, which is what
//! the region-aware eviction policy (see [`crate::buffer`]) keys on, and
//! the [`crate::segment::SegmentDirectory`] describes the resulting
//! on-disk layout. The default [`HeapFile::create`] is the degenerate
//! single-segment configuration and behaves bit-identically to the
//! pre-segmentation engine.

use crate::block::{Block, BLOCK_SIZE};
use crate::buffer::{next_file_id, SharedBuffer};
use crate::error::StorageError;
use crate::fault::{self, SharedFaults, WriteMode};
use crate::io::IoStats;
use crate::segment::{SegmentDirectory, SegmentInfo};
use crate::tuple::FixedTuple;
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// A paged heap file of fixed-width tuples.
#[derive(Debug, Clone)]
pub struct HeapFile<T: FixedTuple> {
    blocks: Vec<Block>,
    len: usize,
    dirty: BTreeSet<usize>,
    /// Optional buffer pool (an extension; `None` is the paper-faithful
    /// cold-cache configuration). See [`crate::buffer`].
    buffer: Option<SharedBuffer>,
    /// Blocks per segment (`usize::MAX` = unsegmented: one segment holds
    /// every block).
    segment_blocks: usize,
    /// One buffer-pool file id per segment (at least one entry).
    file_ids: Vec<u64>,
    /// Optional fault injection; `None` disables all checks. See
    /// [`crate::fault`].
    faults: Option<SharedFaults>,
    /// Per-block checksums of the durably written content, maintained only
    /// while a fault plan that can tear writes is attached (so plans that
    /// merely fail or stall reads pay no checksum overhead, and the
    /// fault-free path is untouched).
    sums: Vec<u32>,
    /// Whether the attached plan can corrupt bytes (`FaultPlan::can_tear`),
    /// i.e. whether `sums` is maintained and verified.
    checksums: bool,
    _tuple: PhantomData<T>,
}

impl<T: FixedTuple> HeapFile<T> {
    /// Tuples per block for this tuple type.
    pub const TUPLES_PER_BLOCK: usize = BLOCK_SIZE / T::SIZE;

    /// Creates an empty heap file. Charges the relation-creation cost `I`.
    pub fn create(io: &mut IoStats) -> Self {
        io.create_relation();
        HeapFile {
            blocks: Vec::new(),
            len: 0,
            dirty: BTreeSet::new(),
            buffer: None,
            segment_blocks: usize::MAX,
            file_ids: vec![next_file_id()],
            faults: None,
            sums: Vec::new(),
            checksums: false,
            _tuple: PhantomData,
        }
    }

    /// Creates an empty heap file split into segments of `segment_blocks`
    /// blocks, each with its own buffer-pool file id (see the
    /// [module docs](self)). Charges the relation-creation cost `I` once —
    /// the segment directory is metadata of one relation, not extra
    /// relations.
    ///
    /// # Errors
    /// Returns [`StorageError::InvalidValue`] when `segment_blocks` is
    /// zero.
    pub fn create_segmented(segment_blocks: usize, io: &mut IoStats) -> Result<Self, StorageError> {
        if segment_blocks == 0 {
            return Err(StorageError::InvalidValue(
                "heap segments must hold at least one block",
            ));
        }
        let mut f = Self::create(io);
        f.segment_blocks = segment_blocks;
        Ok(f)
    }

    /// Maps a global block number to its `(buffer file id, local block)`
    /// address. Unsegmented files map every block to segment 0 unchanged.
    #[inline]
    fn block_address(&self, block: usize) -> (u64, usize) {
        let seg = block / self.segment_blocks;
        (self.file_ids[seg], block % self.segment_blocks)
    }

    /// Number of segments backing the current block count (at least one).
    pub fn segment_count(&self) -> usize {
        self.blocks.len().div_ceil(self.segment_blocks).max(1)
    }

    /// Blocks per segment (`usize::MAX` for the unsegmented layout).
    pub fn segment_blocks(&self) -> usize {
        self.segment_blocks
    }

    /// Describes the on-disk layout: one [`SegmentInfo`] per segment.
    pub fn segment_directory(&self) -> SegmentDirectory {
        let per_block = Self::TUPLES_PER_BLOCK;
        let segments = (0..self.segment_count())
            .map(|i| {
                let first_block = (i * self.segment_blocks).min(self.blocks.len());
                let blocks = self
                    .blocks
                    .len()
                    .saturating_sub(first_block)
                    .min(self.segment_blocks);
                let first_slot = first_block * per_block;
                let tuples = self.len.saturating_sub(first_slot).min(blocks * per_block);
                SegmentInfo {
                    index: i,
                    file_id: self.file_ids[i],
                    first_block,
                    blocks,
                    tuples,
                }
            })
            .collect();
        SegmentDirectory {
            segment_blocks: self.segment_blocks,
            block_bytes: BLOCK_SIZE,
            segments,
        }
    }

    /// Attaches a shared buffer pool: subsequent block *reads* that hit
    /// the pool are not charged. Writes stay write-through. Every segment
    /// receives a fresh file id, so re-attaching never aliases stale
    /// residency.
    pub fn attach_buffer(&mut self, pool: &SharedBuffer) {
        self.buffer = Some(pool.clone());
        for id in &mut self.file_ids {
            *id = next_file_id();
        }
    }

    /// Attaches shared fault-injection state. From now on every physical
    /// block op consults the plan; when the plan can tear writes,
    /// checksums of the current content are also recorded so later
    /// corruption is detectable.
    pub fn attach_faults(&mut self, faults: &SharedFaults) {
        self.checksums = faults
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .plan()
            .can_tear();
        self.faults = Some(faults.clone());
        self.sums = if self.checksums {
            self.blocks
                .iter()
                .map(|b| fault::checksum(b.bytes(0, BLOCK_SIZE)))
                .collect()
        } else {
            Vec::new()
        };
    }

    /// Consults the fault plan for a physical read of `block`. Any
    /// planned device latency is slept *after* the lock is released, so
    /// concurrent readers overlap their stalls.
    #[inline]
    fn consult_read(&self, block: usize) -> Result<(), StorageError> {
        if let Some(f) = &self.faults {
            let stall = {
                // analyze::allow(panic-reachability): a poisoned fault-state lock means a panicked holder; aborting is the documented policy
                let mut state = f.lock().expect("fault state lock");
                state.on_read(block)?;
                state.take_stall()
            };
            fault::stall(stall);
        }
        Ok(())
    }

    /// Consults the fault plan for a physical write of `block`.
    #[inline]
    fn consult_write(&self, block: usize) -> Result<WriteMode, StorageError> {
        match &self.faults {
            // analyze::allow(panic-reachability): a poisoned fault-state lock means a panicked holder; aborting is the documented policy
            Some(f) => f.lock().expect("fault state lock").on_write(block),
            None => Ok(WriteMode::Clean),
        }
    }

    /// Verifies `block` against its recorded checksum. Dirty (staged, not
    /// yet flushed) blocks and files whose fault plan cannot tear are
    /// exempt.
    #[inline]
    fn verify(&self, block: usize) -> Result<(), StorageError> {
        if self.checksums
            && block < self.sums.len()
            && !self.dirty.contains(&block)
            && fault::checksum(self.blocks[block].bytes(0, BLOCK_SIZE)) != self.sums[block]
        {
            return Err(StorageError::CorruptBlock { block });
        }
        Ok(())
    }

    /// Records `block`'s current content as its durable checksum, then
    /// applies a torn write's byte flip (so the checksum reflects the
    /// *intended* content and the next [`verify`](Self::verify) fails).
    fn commit_block(&mut self, block: usize, mode: WriteMode) {
        if self.checksums {
            if self.sums.len() <= block {
                self.sums.resize(block + 1, 0);
            }
            self.sums[block] = fault::checksum(self.blocks[block].bytes(0, BLOCK_SIZE));
            if let WriteMode::Torn(offset) = mode {
                self.blocks[block].bytes_mut(offset, 1)[0] ^= 0x5a;
            }
        }
    }

    /// Charges a read of `block` unless the buffer pool absorbs it, then
    /// verifies the block content.
    ///
    /// # Errors
    /// Fails when the fault plan injects a read failure or the block is
    /// corrupt. Pool hits skip the fault consult (no physical read
    /// happens) but still verify — corruption lives in the stored bytes.
    #[inline]
    pub(crate) fn charge_read(&self, block: usize, io: &mut IoStats) -> Result<(), StorageError> {
        let physical = match &self.buffer {
            Some(pool) => {
                let (file, local) = self.block_address(block);
                // analyze::allow(panic-reachability): a poisoned buffer-pool lock means a panicked holder; aborting is the documented policy
                !pool.lock().expect("buffer pool lock").access(file, local)
            }
            None => true,
        };
        if physical {
            io.read_blocks(1);
            self.consult_read(block)?;
        }
        self.verify(block)
    }

    /// Charges a full-scan's worth of block reads (buffer-aware) without
    /// decoding any tuples — used by join strategies whose formulas price
    /// repeated passes over this file.
    ///
    /// # Errors
    /// Fails on an injected read failure or a corrupt block.
    pub(crate) fn charge_scan(&self, io: &mut IoStats) -> Result<(), StorageError> {
        for b in 0..self.blocks.len() {
            self.charge_read(b, io)?;
        }
        Ok(())
    }

    /// Marks `block` resident after a write (write-allocate) without
    /// touching the hit/miss statistics.
    #[inline]
    fn install_block(&self, block: usize) {
        if let Some(pool) = &self.buffer {
            let (file, local) = self.block_address(block);
            // analyze::allow(panic-reachability): a poisoned buffer-pool lock means a panicked holder; aborting is the documented policy
            pool.lock().expect("buffer pool lock").install(file, local);
        }
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the file holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks — the `B_x` of the cost model.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    #[inline]
    fn locate(slot: usize) -> (usize, usize) {
        (
            slot / Self::TUPLES_PER_BLOCK,
            (slot % Self::TUPLES_PER_BLOCK) * T::SIZE,
        )
    }

    /// Appends a tuple, staging the tail block as dirty. The block write is
    /// charged by [`HeapFile::flush`]; call it after a batch (a single
    /// QUEL `APPEND` is a one-tuple batch).
    pub fn append(&mut self, tuple: &T) -> usize {
        let slot = self.len;
        let (b, off) = Self::locate(slot);
        if b == self.blocks.len() {
            self.blocks.push(Block::new());
            // A new block may open a new segment; give it a file id.
            if b / self.segment_blocks >= self.file_ids.len() {
                self.file_ids.push(next_file_id());
            }
        }
        tuple.encode(self.blocks[b].bytes_mut(off, T::SIZE));
        self.dirty.insert(b);
        self.len += 1;
        slot
    }

    /// Writes out all dirty blocks, charging one block write each.
    ///
    /// # Errors
    /// Fails when the fault plan injects a write failure; the failed block
    /// (and any not yet reached) stays dirty, so a retried flush finishes
    /// the job.
    pub fn flush(&mut self, io: &mut IoStats) -> Result<(), StorageError> {
        while let Some(&b) = self.dirty.iter().next() {
            io.write_blocks(1);
            let mode = self.consult_write(b)?;
            self.dirty.remove(&b);
            self.install_block(b);
            self.commit_block(b, mode);
        }
        Ok(())
    }

    /// Reads one tuple, charging one block read.
    ///
    /// # Errors
    /// Fails if `slot` is out of range, on an injected read failure, or on
    /// a corrupt block.
    pub fn read_slot(&self, slot: usize, io: &mut IoStats) -> Result<T, StorageError> {
        if slot >= self.len {
            return Err(StorageError::SlotOutOfRange {
                slot,
                len: self.len,
            });
        }
        let (b, off) = Self::locate(slot);
        self.charge_read(b, io)?;
        Ok(T::decode(self.blocks[b].bytes(off, T::SIZE)))
    }

    /// Reads one tuple *without* charging I/O — for callers that already
    /// paid for the containing block (e.g. a scan that re-visits a slot it
    /// just passed) or for assertions in tests.
    ///
    /// # Errors
    /// Fails if `slot` is out of range or the block is corrupt.
    pub fn peek_slot(&self, slot: usize) -> Result<T, StorageError> {
        if slot >= self.len {
            return Err(StorageError::SlotOutOfRange {
                slot,
                len: self.len,
            });
        }
        let (b, off) = Self::locate(slot);
        self.verify(b)?;
        Ok(T::decode(self.blocks[b].bytes(off, T::SIZE)))
    }

    /// Updates one tuple in place, charging one tuple update.
    ///
    /// # Errors
    /// Fails if `slot` is out of range, on injected read/write failures
    /// (the paper prices an update as a read plus a write), or on a
    /// corrupt block. A failed write leaves the old content intact.
    pub fn update_slot(
        &mut self,
        slot: usize,
        io: &mut IoStats,
        f: impl FnOnce(&mut T),
    ) -> Result<(), StorageError> {
        if slot >= self.len {
            return Err(StorageError::SlotOutOfRange {
                slot,
                len: self.len,
            });
        }
        let (b, off) = Self::locate(slot);
        self.verify(b)?;
        io.update_tuples(1);
        self.consult_read(b)?;
        let mut t = T::decode(self.blocks[b].bytes(off, T::SIZE));
        f(&mut t);
        let mode = self.consult_write(b)?;
        self.install_block(b);
        t.encode(self.blocks[b].bytes_mut(off, T::SIZE));
        self.commit_block(b, mode);
        Ok(())
    }

    /// Full scan: visits every tuple in slot order, charging one block read
    /// per block. The visitor receives `(slot, tuple)`.
    ///
    /// # Errors
    /// Fails on an injected read failure or a corrupt block (before any
    /// tuple is visited).
    pub fn scan(
        &self,
        io: &mut IoStats,
        mut visit: impl FnMut(usize, T),
    ) -> Result<(), StorageError> {
        for b in 0..self.blocks.len() {
            self.charge_read(b, io)?;
        }
        for slot in 0..self.len {
            let (b, off) = Self::locate(slot);
            visit(slot, T::decode(self.blocks[b].bytes(off, T::SIZE)));
        }
        Ok(())
    }

    /// Scans a contiguous slot range `[start, end)`, charging reads only
    /// for the blocks the range touches. Used for clustered lookups
    /// (adjacency lists in the hash-clustered edge relation).
    ///
    /// # Errors
    /// Fails on an injected read failure or a corrupt block.
    pub fn scan_range(
        &self,
        start: usize,
        end: usize,
        io: &mut IoStats,
        mut visit: impl FnMut(usize, T),
    ) -> Result<(), StorageError> {
        let end = end.min(self.len);
        if start >= end {
            return Ok(());
        }
        let first_block = start / Self::TUPLES_PER_BLOCK;
        let last_block = (end - 1) / Self::TUPLES_PER_BLOCK;
        for b in first_block..=last_block {
            self.charge_read(b, io)?;
        }
        for slot in start..end {
            let (b, off) = Self::locate(slot);
            visit(slot, T::decode(self.blocks[b].bytes(off, T::SIZE)));
        }
        Ok(())
    }

    /// Set-oriented rewrite pass — the QUEL `REPLACE ... WHERE` used by the
    /// iterative algorithm's step 7. Visits every tuple and lets the
    /// visitor modify it (returning `true` if it did). Charging follows the
    /// paper's pricing of such a pass at `B_r * t_update`: each block the
    /// pass dirties costs one tuple update (its read + write), and each
    /// clean block costs one block read.
    ///
    /// # Errors
    /// Fails on injected read/write failures or corrupt blocks; blocks
    /// already visited keep their new content (the caller is expected to
    /// restart the query, not resume the pass).
    pub fn rewrite(
        &mut self,
        io: &mut IoStats,
        mut visit: impl FnMut(usize, &mut T) -> bool,
    ) -> Result<(), StorageError> {
        for b in 0..self.blocks.len() {
            self.verify(b)?;
            self.consult_read(b)?;
            let lo = b * Self::TUPLES_PER_BLOCK;
            let hi = ((b + 1) * Self::TUPLES_PER_BLOCK).min(self.len);
            let mut block_dirty = false;
            for slot in lo..hi {
                let off = (slot % Self::TUPLES_PER_BLOCK) * T::SIZE;
                let mut t = T::decode(self.blocks[b].bytes(off, T::SIZE));
                if visit(slot, &mut t) {
                    t.encode(self.blocks[b].bytes_mut(off, T::SIZE));
                    block_dirty = true;
                }
            }
            if block_dirty {
                io.update_tuples(1);
                let mode = self.consult_write(b)?;
                self.commit_block(b, mode);
            } else {
                io.read_blocks(1);
            }
        }
        Ok(())
    }

    // Rewrite is intentionally not buffer-aware: a set-oriented REPLACE
    // streams every block through the engine, and the paper prices it as
    // such; the pool only absorbs point reads and scans.

    /// Clears all tuples, charging the relation-deletion cost `D_t`.
    pub fn clear(&mut self, io: &mut IoStats) {
        io.delete_relation();
        if let Some(pool) = &self.buffer {
            let mut pool = pool.lock().expect("buffer pool lock");
            for file in &self.file_ids {
                pool.invalidate_file(*file);
            }
        }
        self.blocks.clear();
        self.dirty.clear();
        self.sums.clear();
        self.len = 0;
        self.file_ids.truncate(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::tuple::EdgeTuple;

    fn edge(b: u32, e: u32, c: f64) -> EdgeTuple {
        EdgeTuple {
            begin: b,
            end: e,
            cost: c,
            class: 0,
            occupancy: 0.0,
            end_x: 0.0,
            end_y: 0.0,
        }
    }

    #[test]
    fn create_charges_relation_creation() {
        let mut io = IoStats::new();
        let _f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        assert_eq!(io.relations_created, 1);
    }

    #[test]
    fn append_flush_charges_block_writes() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        // 300 edge tuples at 128/block -> 3 blocks.
        for i in 0..300 {
            f.append(&edge(i, i + 1, 1.0));
        }
        let before = io;
        f.flush(&mut io).unwrap();
        assert_eq!(io.since(&before).block_writes, 3);
        assert_eq!(f.block_count(), 3);
        assert_eq!(f.len(), 300);
    }

    #[test]
    fn flush_is_idempotent() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        f.append(&edge(0, 1, 1.0));
        f.flush(&mut io).unwrap();
        let before = io;
        f.flush(&mut io).unwrap();
        assert_eq!(io.since(&before).block_writes, 0);
    }

    #[test]
    fn read_slot_roundtrips_and_charges() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        f.append(&edge(7, 8, 2.5));
        f.flush(&mut io).unwrap();
        let before = io;
        let t = f.read_slot(0, &mut io).unwrap();
        assert_eq!(t, edge(7, 8, 2.5));
        assert_eq!(io.since(&before).block_reads, 1);
    }

    #[test]
    fn read_out_of_range_fails() {
        let mut io = IoStats::new();
        let f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        assert!(matches!(
            f.read_slot(0, &mut io),
            Err(StorageError::SlotOutOfRange { .. })
        ));
    }

    #[test]
    fn update_slot_charges_tuple_update() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        f.append(&edge(1, 2, 1.0));
        f.flush(&mut io).unwrap();
        let before = io;
        f.update_slot(0, &mut io, |t| t.cost = 9.0).unwrap();
        assert_eq!(io.since(&before).tuple_updates, 1);
        assert_eq!(f.peek_slot(0).unwrap().cost, 9.0);
    }

    #[test]
    fn scan_charges_one_read_per_block() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        for i in 0..200 {
            f.append(&edge(i, i, 0.0));
        }
        f.flush(&mut io).unwrap();
        let before = io;
        let mut seen = 0;
        f.scan(&mut io, |_, _| seen += 1).unwrap();
        assert_eq!(seen, 200);
        assert_eq!(io.since(&before).block_reads, 2); // 200/128 -> 2 blocks
    }

    #[test]
    fn scan_range_charges_touched_blocks_only() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        for i in 0..512 {
            f.append(&edge(i, i, 0.0));
        }
        f.flush(&mut io).unwrap();
        let before = io;
        let mut seen = vec![];
        f.scan_range(100, 104, &mut io, |s, _| seen.push(s))
            .unwrap();
        assert_eq!(seen, vec![100, 101, 102, 103]);
        assert_eq!(io.since(&before).block_reads, 1);
        // A range spanning a block boundary charges 2 reads.
        let before = io;
        f.scan_range(126, 130, &mut io, |_, _| {}).unwrap();
        assert_eq!(io.since(&before).block_reads, 2);
    }

    #[test]
    fn scan_range_is_clamped() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        f.append(&edge(0, 0, 0.0));
        f.flush(&mut io).unwrap();
        let mut seen = 0;
        f.scan_range(0, 100, &mut io, |_, _| seen += 1).unwrap();
        assert_eq!(seen, 1);
        // Empty range charges nothing.
        let before = io;
        f.scan_range(5, 5, &mut io, |_, _| unreachable!()).unwrap();
        assert_eq!(io.since(&before).block_reads, 0);
    }

    #[test]
    fn rewrite_charges_updates_for_dirty_blocks() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        for i in 0..256 {
            f.append(&edge(i, i, 1.0));
        }
        f.flush(&mut io).unwrap(); // 2 blocks
        let before = io;
        // Touch only tuples in the first block.
        f.rewrite(&mut io, |s, t| {
            if s < 10 {
                t.cost = 2.0;
                true
            } else {
                false
            }
        })
        .unwrap();
        let d = io.since(&before);
        // One dirty block (one t_update = its read+write), one clean block
        // (one read).
        assert_eq!(d.block_reads, 1);
        assert_eq!(d.tuple_updates, 1);
        assert_eq!(f.peek_slot(5).unwrap().cost, 2.0);
        assert_eq!(f.peek_slot(200).unwrap().cost, 1.0);
    }

    #[test]
    fn clear_charges_deletion() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        f.append(&edge(0, 1, 1.0));
        f.clear(&mut io);
        assert_eq!(io.relations_deleted, 1);
        assert!(f.is_empty());
        assert_eq!(f.block_count(), 0);
    }

    #[test]
    fn inert_faults_leave_io_stats_identical() {
        let run = |attach: bool| {
            let mut io = IoStats::new();
            let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
            if attach {
                f.attach_faults(&FaultPlan::inert(0).into_shared());
            }
            for i in 0..300 {
                f.append(&edge(i, i, 1.0));
            }
            f.flush(&mut io).unwrap();
            f.scan(&mut io, |_, _| {}).unwrap();
            f.update_slot(10, &mut io, |t| t.cost = 2.0).unwrap();
            f.read_slot(200, &mut io).unwrap();
            f.rewrite(&mut io, |s, t| {
                t.cost += s as f64;
                true
            })
            .unwrap();
            io
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn nth_read_failure_surfaces_as_io_failed() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        for i in 0..10 {
            f.append(&edge(i, i, 1.0));
        }
        f.attach_faults(&FaultPlan::inert(1).with_fail_nth_read(2).into_shared());
        f.flush(&mut io).unwrap();
        f.read_slot(0, &mut io).unwrap();
        assert!(matches!(
            f.read_slot(1, &mut io),
            Err(StorageError::IoFailed { op: "read", .. })
        ));
        // The planned failure is consumed; the next read succeeds.
        f.read_slot(1, &mut io).unwrap();
    }

    #[test]
    fn failed_flush_keeps_the_block_dirty_for_retry() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        f.attach_faults(&FaultPlan::inert(1).with_fail_nth_write(1).into_shared());
        f.append(&edge(3, 4, 1.0));
        assert!(matches!(
            f.flush(&mut io),
            Err(StorageError::IoFailed { op: "write", .. })
        ));
        // Retry succeeds and the content is durable and verifiable.
        f.flush(&mut io).unwrap();
        assert_eq!(f.read_slot(0, &mut io).unwrap(), edge(3, 4, 1.0));
    }

    #[test]
    fn torn_write_is_detected_on_next_read() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        f.attach_faults(&FaultPlan::inert(2).with_torn_write_rate(1.0).into_shared());
        f.append(&edge(0, 1, 1.0));
        f.flush(&mut io).unwrap();
        assert_eq!(
            f.read_slot(0, &mut io),
            Err(StorageError::CorruptBlock { block: 0 })
        );
        assert_eq!(f.peek_slot(0), Err(StorageError::CorruptBlock { block: 0 }));
    }

    #[test]
    fn corruption_clears_when_the_block_is_rewritten() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        let faults = FaultPlan::inert(2).with_torn_write_rate(1.0).into_shared();
        f.attach_faults(&faults);
        f.append(&edge(0, 1, 1.0));
        f.flush(&mut io).unwrap();
        assert!(f.read_slot(0, &mut io).is_err());
        drop(faults);
        // Stop tearing, rewrite the block: readable again.
        let clean = FaultPlan::inert(2).into_shared();
        f.attach_faults(&clean);
        f.update_slot(0, &mut io, |t| t.cost = 5.0).unwrap();
        assert_eq!(f.read_slot(0, &mut io).unwrap().cost, 5.0);
    }

    #[test]
    fn segmented_file_charges_identically_to_single_file() {
        // Segmentation is a physical-layout concern: the charged IoStats
        // of every operation must be bit-identical to the single-file
        // layout.
        let run = |segment_blocks: Option<usize>| {
            let mut io = IoStats::new();
            let mut f: HeapFile<EdgeTuple> = match segment_blocks {
                Some(sb) => HeapFile::create_segmented(sb, &mut io).unwrap(),
                None => HeapFile::create(&mut io),
            };
            for i in 0..600 {
                f.append(&edge(i, i, 1.0));
            }
            f.flush(&mut io).unwrap();
            f.scan(&mut io, |_, _| {}).unwrap();
            f.read_slot(513, &mut io).unwrap();
            f.update_slot(200, &mut io, |t| t.cost = 2.0).unwrap();
            f.scan_range(120, 140, &mut io, |_, _| {}).unwrap();
            io
        };
        let single = run(None);
        assert_eq!(single, run(Some(2)));
        assert_eq!(single, run(Some(3)));
    }

    #[test]
    fn segment_directory_accounts_for_every_block_and_tuple() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create_segmented(2, &mut io).unwrap();
        for i in 0..600 {
            // 600 tuples at 128/block -> 5 blocks -> 3 segments (2+2+1).
            f.append(&edge(i, i, 1.0));
        }
        f.flush(&mut io).unwrap();
        let dir = f.segment_directory();
        assert_eq!(dir.segments.len(), 3);
        assert_eq!(f.segment_count(), 3);
        assert_eq!(dir.total_blocks(), 5);
        assert_eq!(dir.total_tuples(), 600);
        assert_eq!(dir.segments[2].blocks, 1);
        assert_eq!(dir.segments[1].first_block, 2);
        // Distinct buffer file ids per segment.
        assert_ne!(dir.segments[0].file_id, dir.segments[1].file_id);
    }

    #[test]
    fn zero_block_segments_are_rejected() {
        let mut io = IoStats::new();
        assert!(matches!(
            HeapFile::<EdgeTuple>::create_segmented(0, &mut io),
            Err(StorageError::InvalidValue(_))
        ));
    }

    #[test]
    fn segments_occupy_disjoint_pool_files() {
        use crate::buffer::BufferPool;
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create_segmented(1, &mut io).unwrap();
        for i in 0..256 {
            f.append(&edge(i, i, 1.0)); // 2 blocks -> 2 segments
        }
        let pool = BufferPool::shared(8).unwrap();
        f.attach_buffer(&pool);
        f.flush(&mut io).unwrap();
        // Both blocks are local block 0 of their segment's file; if the
        // address mapping collapsed them the second access would hit.
        let before = io;
        f.read_slot(0, &mut io).unwrap();
        f.read_slot(128, &mut io).unwrap();
        let locked = pool.lock().unwrap();
        assert_eq!(locked.resident_blocks(), 2);
        drop(locked);
        // Re-reads are absorbed (residency survives across segments).
        f.read_slot(0, &mut io).unwrap();
        f.read_slot(128, &mut io).unwrap();
        assert_eq!(io.since(&before).block_reads, 0, "write-allocate");
    }

    #[test]
    fn attach_faults_checksums_existing_blocks() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        f.append(&edge(1, 2, 3.0));
        f.flush(&mut io).unwrap();
        // Attaching after a fault-free load must leave everything readable.
        f.attach_faults(&FaultPlan::inert(0).into_shared());
        assert_eq!(f.read_slot(0, &mut io).unwrap(), edge(1, 2, 3.0));
    }
}
