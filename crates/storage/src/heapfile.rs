//! Paged heap files of fixed-width tuples with block-level I/O charging.
//!
//! A [`HeapFile`] is the physical body of a relation: a vector of 4096-byte
//! blocks, each holding `BLOCK_SIZE / T::SIZE` tuple slots. Operations
//! charge the borrowed [`IoStats`]:
//!
//! * `scan`-style visits charge one **block read** per block entered;
//! * `read_slot` charges one block read;
//! * `update_slot` charges one **tuple update** (the in-place
//!   read-modify-write the paper prices at `t_update = t_read + t_write`);
//! * `append` stages tuples into the tail block and [`HeapFile::flush`]
//!   charges one **block write** per dirty block — so a bulk load of `|R|`
//!   tuples costs exactly `B_r` writes, matching cost step `C2` of
//!   Tables 2–3.

use crate::block::{Block, BLOCK_SIZE};
use crate::buffer::{next_file_id, SharedBuffer};
use crate::error::StorageError;
use crate::io::IoStats;
use crate::tuple::FixedTuple;
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// A paged heap file of fixed-width tuples.
#[derive(Debug, Clone)]
pub struct HeapFile<T: FixedTuple> {
    blocks: Vec<Block>,
    len: usize,
    dirty: BTreeSet<usize>,
    /// Optional buffer pool (an extension; `None` is the paper-faithful
    /// cold-cache configuration). See [`crate::buffer`].
    buffer: Option<(SharedBuffer, u64)>,
    _tuple: PhantomData<T>,
}

impl<T: FixedTuple> HeapFile<T> {
    /// Tuples per block for this tuple type.
    pub const TUPLES_PER_BLOCK: usize = BLOCK_SIZE / T::SIZE;

    /// Creates an empty heap file. Charges the relation-creation cost `I`.
    pub fn create(io: &mut IoStats) -> Self {
        io.create_relation();
        HeapFile {
            blocks: Vec::new(),
            len: 0,
            dirty: BTreeSet::new(),
            buffer: None,
            _tuple: PhantomData,
        }
    }

    /// Attaches a shared buffer pool: subsequent block *reads* that hit
    /// the pool are not charged. Writes stay write-through.
    pub fn attach_buffer(&mut self, pool: &SharedBuffer) {
        self.buffer = Some((pool.clone(), next_file_id()));
    }

    /// Charges a read of `block` unless the buffer pool absorbs it.
    #[inline]
    pub(crate) fn charge_read(&self, block: usize, io: &mut IoStats) {
        match &self.buffer {
            Some((pool, file)) => {
                if !pool.lock().expect("buffer pool lock").access(*file, block) {
                    io.read_blocks(1);
                }
            }
            None => io.read_blocks(1),
        }
    }

    /// Charges a full-scan's worth of block reads (buffer-aware) without
    /// decoding any tuples — used by join strategies whose formulas price
    /// repeated passes over this file.
    pub(crate) fn charge_scan(&self, io: &mut IoStats) {
        for b in 0..self.blocks.len() {
            self.charge_read(b, io);
        }
    }

    /// Marks `block` resident after a write (write-allocate) without
    /// touching the hit/miss statistics.
    #[inline]
    fn install_block(&self, block: usize) {
        if let Some((pool, file)) = &self.buffer {
            pool.lock().expect("buffer pool lock").install(*file, block);
        }
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the file holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks — the `B_x` of the cost model.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    #[inline]
    fn locate(slot: usize) -> (usize, usize) {
        (slot / Self::TUPLES_PER_BLOCK, (slot % Self::TUPLES_PER_BLOCK) * T::SIZE)
    }

    /// Appends a tuple, staging the tail block as dirty. The block write is
    /// charged by [`HeapFile::flush`]; call it after a batch (a single
    /// QUEL `APPEND` is a one-tuple batch).
    pub fn append(&mut self, tuple: &T) -> usize {
        let slot = self.len;
        let (b, off) = Self::locate(slot);
        if b == self.blocks.len() {
            self.blocks.push(Block::new());
        }
        tuple.encode(self.blocks[b].bytes_mut(off, T::SIZE));
        self.dirty.insert(b);
        self.len += 1;
        slot
    }

    /// Writes out all dirty blocks, charging one block write each.
    pub fn flush(&mut self, io: &mut IoStats) {
        io.write_blocks(self.dirty.len() as u64);
        for &b in &self.dirty {
            self.install_block(b);
        }
        self.dirty.clear();
    }

    /// Reads one tuple, charging one block read.
    ///
    /// # Errors
    /// Fails if `slot` is out of range.
    pub fn read_slot(&self, slot: usize, io: &mut IoStats) -> Result<T, StorageError> {
        if slot >= self.len {
            return Err(StorageError::SlotOutOfRange { slot, len: self.len });
        }
        let (b, off) = Self::locate(slot);
        self.charge_read(b, io);
        Ok(T::decode(self.blocks[b].bytes(off, T::SIZE)))
    }

    /// Reads one tuple *without* charging I/O — for callers that already
    /// paid for the containing block (e.g. a scan that re-visits a slot it
    /// just passed) or for assertions in tests.
    pub fn peek_slot(&self, slot: usize) -> Result<T, StorageError> {
        if slot >= self.len {
            return Err(StorageError::SlotOutOfRange { slot, len: self.len });
        }
        let (b, off) = Self::locate(slot);
        Ok(T::decode(self.blocks[b].bytes(off, T::SIZE)))
    }

    /// Updates one tuple in place, charging one tuple update.
    ///
    /// # Errors
    /// Fails if `slot` is out of range.
    pub fn update_slot(
        &mut self,
        slot: usize,
        io: &mut IoStats,
        f: impl FnOnce(&mut T),
    ) -> Result<(), StorageError> {
        if slot >= self.len {
            return Err(StorageError::SlotOutOfRange { slot, len: self.len });
        }
        io.update_tuples(1);
        let (b, off) = Self::locate(slot);
        self.install_block(b);
        let mut t = T::decode(self.blocks[b].bytes(off, T::SIZE));
        f(&mut t);
        t.encode(self.blocks[b].bytes_mut(off, T::SIZE));
        Ok(())
    }

    /// Full scan: visits every tuple in slot order, charging one block read
    /// per block. The visitor receives `(slot, tuple)`.
    pub fn scan(&self, io: &mut IoStats, mut visit: impl FnMut(usize, T)) {
        for b in 0..self.blocks.len() {
            self.charge_read(b, io);
        }
        for slot in 0..self.len {
            let (b, off) = Self::locate(slot);
            visit(slot, T::decode(self.blocks[b].bytes(off, T::SIZE)));
        }
    }

    /// Scans a contiguous slot range `[start, end)`, charging reads only
    /// for the blocks the range touches. Used for clustered lookups
    /// (adjacency lists in the hash-clustered edge relation).
    pub fn scan_range(
        &self,
        start: usize,
        end: usize,
        io: &mut IoStats,
        mut visit: impl FnMut(usize, T),
    ) {
        let end = end.min(self.len);
        if start >= end {
            return;
        }
        let first_block = start / Self::TUPLES_PER_BLOCK;
        let last_block = (end - 1) / Self::TUPLES_PER_BLOCK;
        for b in first_block..=last_block {
            self.charge_read(b, io);
        }
        for slot in start..end {
            let (b, off) = Self::locate(slot);
            visit(slot, T::decode(self.blocks[b].bytes(off, T::SIZE)));
        }
    }

    /// Set-oriented rewrite pass — the QUEL `REPLACE ... WHERE` used by the
    /// iterative algorithm's step 7. Visits every tuple and lets the
    /// visitor modify it (returning `true` if it did). Charging follows the
    /// paper's pricing of such a pass at `B_r * t_update`: each block the
    /// pass dirties costs one tuple update (its read + write), and each
    /// clean block costs one block read.
    pub fn rewrite(&mut self, io: &mut IoStats, mut visit: impl FnMut(usize, &mut T) -> bool) {
        let mut dirty_blocks = 0u64;
        let mut block_dirty = false;
        for slot in 0..self.len {
            let (b, off) = Self::locate(slot);
            if off == 0 {
                if block_dirty {
                    dirty_blocks += 1;
                }
                block_dirty = false;
            }
            let mut t = T::decode(self.blocks[b].bytes(off, T::SIZE));
            if visit(slot, &mut t) {
                t.encode(self.blocks[b].bytes_mut(off, T::SIZE));
                block_dirty = true;
            }
        }
        if block_dirty {
            dirty_blocks += 1;
        }
        let clean_blocks = self.blocks.len() as u64 - dirty_blocks;
        io.read_blocks(clean_blocks);
        io.update_tuples(dirty_blocks);
    }

    // Rewrite is intentionally not buffer-aware: a set-oriented REPLACE
    // streams every block through the engine, and the paper prices it as
    // such; the pool only absorbs point reads and scans.

    /// Clears all tuples, charging the relation-deletion cost `D_t`.
    pub fn clear(&mut self, io: &mut IoStats) {
        io.delete_relation();
        if let Some((pool, file)) = &self.buffer {
            pool.lock().expect("buffer pool lock").invalidate_file(*file);
        }
        self.blocks.clear();
        self.dirty.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::EdgeTuple;

    fn edge(b: u16, e: u16, c: f64) -> EdgeTuple {
        EdgeTuple { begin: b, end: e, cost: c, class: 0, occupancy: 0.0, end_x: 0.0, end_y: 0.0 }
    }

    #[test]
    fn create_charges_relation_creation() {
        let mut io = IoStats::new();
        let _f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        assert_eq!(io.relations_created, 1);
    }

    #[test]
    fn append_flush_charges_block_writes() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        // 300 edge tuples at 128/block -> 3 blocks.
        for i in 0..300 {
            f.append(&edge(i, i + 1, 1.0));
        }
        let before = io;
        f.flush(&mut io);
        assert_eq!(io.since(&before).block_writes, 3);
        assert_eq!(f.block_count(), 3);
        assert_eq!(f.len(), 300);
    }

    #[test]
    fn flush_is_idempotent() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        f.append(&edge(0, 1, 1.0));
        f.flush(&mut io);
        let before = io;
        f.flush(&mut io);
        assert_eq!(io.since(&before).block_writes, 0);
    }

    #[test]
    fn read_slot_roundtrips_and_charges() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        f.append(&edge(7, 8, 2.5));
        f.flush(&mut io);
        let before = io;
        let t = f.read_slot(0, &mut io).unwrap();
        assert_eq!(t, edge(7, 8, 2.5));
        assert_eq!(io.since(&before).block_reads, 1);
    }

    #[test]
    fn read_out_of_range_fails() {
        let mut io = IoStats::new();
        let f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        assert!(matches!(f.read_slot(0, &mut io), Err(StorageError::SlotOutOfRange { .. })));
    }

    #[test]
    fn update_slot_charges_tuple_update() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        f.append(&edge(1, 2, 1.0));
        f.flush(&mut io);
        let before = io;
        f.update_slot(0, &mut io, |t| t.cost = 9.0).unwrap();
        assert_eq!(io.since(&before).tuple_updates, 1);
        assert_eq!(f.peek_slot(0).unwrap().cost, 9.0);
    }

    #[test]
    fn scan_charges_one_read_per_block() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        for i in 0..200 {
            f.append(&edge(i, i, 0.0));
        }
        f.flush(&mut io);
        let before = io;
        let mut seen = 0;
        f.scan(&mut io, |_, _| seen += 1);
        assert_eq!(seen, 200);
        assert_eq!(io.since(&before).block_reads, 2); // 200/128 -> 2 blocks
    }

    #[test]
    fn scan_range_charges_touched_blocks_only() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        for i in 0..512 {
            f.append(&edge(i, i, 0.0));
        }
        f.flush(&mut io);
        let before = io;
        let mut seen = vec![];
        f.scan_range(100, 104, &mut io, |s, _| seen.push(s));
        assert_eq!(seen, vec![100, 101, 102, 103]);
        assert_eq!(io.since(&before).block_reads, 1);
        // A range spanning a block boundary charges 2 reads.
        let before = io;
        f.scan_range(126, 130, &mut io, |_, _| {});
        assert_eq!(io.since(&before).block_reads, 2);
    }

    #[test]
    fn scan_range_is_clamped() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        f.append(&edge(0, 0, 0.0));
        f.flush(&mut io);
        let mut seen = 0;
        f.scan_range(0, 100, &mut io, |_, _| seen += 1);
        assert_eq!(seen, 1);
        // Empty range charges nothing.
        let before = io;
        f.scan_range(5, 5, &mut io, |_, _| unreachable!());
        assert_eq!(io.since(&before).block_reads, 0);
    }

    #[test]
    fn rewrite_charges_updates_for_dirty_blocks() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        for i in 0..256 {
            f.append(&edge(i, i, 1.0));
        }
        f.flush(&mut io); // 2 blocks
        let before = io;
        // Touch only tuples in the first block.
        f.rewrite(&mut io, |s, t| {
            if s < 10 {
                t.cost = 2.0;
                true
            } else {
                false
            }
        });
        let d = io.since(&before);
        // One dirty block (one t_update = its read+write), one clean block
        // (one read).
        assert_eq!(d.block_reads, 1);
        assert_eq!(d.tuple_updates, 1);
        assert_eq!(f.peek_slot(5).unwrap().cost, 2.0);
        assert_eq!(f.peek_slot(200).unwrap().cost, 1.0);
    }

    #[test]
    fn clear_charges_deletion() {
        let mut io = IoStats::new();
        let mut f: HeapFile<EdgeTuple> = HeapFile::create(&mut io);
        f.append(&edge(0, 1, 1.0));
        f.clear(&mut io);
        assert_eq!(io.relations_deleted, 1);
        assert!(f.is_empty());
        assert_eq!(f.block_count(), 0);
    }
}
