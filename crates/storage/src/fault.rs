//! Deterministic fault injection for the storage engine.
//!
//! A [`FaultPlan`] describes *which* physical block operations should
//! misbehave; a [`FaultState`] (shared between all relations of one
//! database via [`SharedFaults`]) counts physical reads and writes and
//! consults the plan on every one. Faults come in three flavours:
//!
//! * **Transient read/write failures** — the op returns
//!   [`StorageError::IoFailed`]; nothing is
//!   corrupted, and a retry of the whole query usually succeeds because the
//!   op counters have advanced past the planned failure.
//! * **Per-block read failures** — every read of one specific block fails
//!   with a given probability, modelling a flaky sector.
//! * **Torn writes** — the write "succeeds" but the stored bytes differ
//!   from the intended content by one flipped byte. The heap file keeps a
//!   per-block checksum of the *intended* content, so the corruption is
//!   detected as [`StorageError::CorruptBlock`]
//!   on the next read of the block — persistent until the block is
//!   rewritten.
//! * **Read latency** — every physical block read stalls the calling
//!   thread for a fixed duration, modelling the seek/transfer time of the
//!   disk-resident map database the paper assumes. Unlike the failure
//!   flavours this never changes a result, only wall-clock time; the
//!   serving benchmark uses it to measure worker-pool scaling on an
//!   I/O-bound workload. Per-read charges accumulate as debt and are
//!   served in [`STALL_QUANTUM`] sleeps *outside* the shared fault lock,
//!   so concurrent readers overlap their waits exactly as they would on
//!   real hardware with independent requests in flight.
//!
//! Every decision is a pure function of `(seed, op kind, op index)`, so a
//! run under a given plan is exactly reproducible: same plan, same query,
//! same faults. With no plan attached the engine's behaviour and its
//! [`IoStats`](crate::IoStats) counters are bit-identical to a build
//! without this module — checksums are only maintained once
//! `attach_faults` is called.

use crate::error::StorageError;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Pseudo-block number base for ISAM index levels, so fault events on
/// index probes are distinguishable from heap-block events in a
/// [`FaultState::log`].
pub const INDEX_BLOCK_BASE: usize = 1 << 32;

/// splitmix64 — the same finaliser the graph generators use; good enough
/// to decorrelate the per-op decision streams.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic Bernoulli draw for op `counter` on decision `stream`.
fn decide(seed: u64, stream: u64, counter: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    let h = splitmix64(seed ^ splitmix64(stream.wrapping_mul(0x9e37_79b9) ^ counter));
    // Compare against p scaled to the full u64 range.
    (h as f64) < p * (u64::MAX as f64)
}

/// A reproducible fault schedule. All fields default to "never fire";
/// combine builder calls to mix fault kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// Fail exactly the `n`th physical block read (1-based).
    pub fail_nth_read: Option<u64>,
    /// Fail exactly the `n`th physical block write (1-based).
    pub fail_nth_write: Option<u64>,
    /// Probability that any physical read fails transiently.
    pub read_failure_rate: f64,
    /// Probability that any physical write fails transiently.
    pub write_failure_rate: f64,
    /// `(block, p)`: every read of `block` fails with probability `p`.
    pub fail_block_reads: Option<(usize, f64)>,
    /// `(first, last, p)`: reads whose 1-based op index falls inside
    /// `first..=last` fail with probability `p` — an I/O *brownout* that
    /// begins and, crucially, **ends** at deterministic points in the op
    /// stream. Circuit-breaker tests rely on the ending: after `last` the
    /// device is healthy again and a breaker can observe recovery.
    pub read_failure_window: Option<(u64, u64, f64)>,
    /// Probability that a write is torn (stored corrupted, detected on the
    /// next read of the block).
    pub torn_write_rate: f64,
    /// Simulated device latency charged per physical block read,
    /// accumulated as debt and slept in [`STALL_QUANTUM`] chunks *after*
    /// releasing the shared fault lock, so concurrent readers overlap
    /// their stalls.
    pub read_latency: Duration,
}

impl FaultPlan {
    /// A plan that never fires (useful to prove injection plumbing is
    /// inert).
    pub fn inert(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            fail_nth_read: None,
            fail_nth_write: None,
            read_failure_rate: 0.0,
            write_failure_rate: 0.0,
            fail_block_reads: None,
            read_failure_window: None,
            torn_write_rate: 0.0,
            read_latency: Duration::ZERO,
        }
    }

    /// A mixed chaos plan derived from `seed`: low-rate transient read and
    /// write failures, an occasional torn write, and one planned hard
    /// failure — the mixture the chaos sweep in `tests/fault_injection.rs`
    /// drives across many seeds.
    pub fn chaos(seed: u64) -> FaultPlan {
        let h = splitmix64(seed);
        FaultPlan {
            seed,
            // One planned hard failure somewhere in the first ~200 ops.
            fail_nth_read: Some(1 + h % 200),
            fail_nth_write: None,
            read_failure_rate: 0.002 * ((h >> 8) % 4) as f64,
            write_failure_rate: 0.002 * ((h >> 10) % 3) as f64,
            fail_block_reads: None,
            read_failure_window: None,
            torn_write_rate: 0.001 * ((h >> 12) % 3) as f64,
            read_latency: Duration::ZERO,
        }
    }

    /// Fails the `n`th physical read (1-based).
    pub fn with_fail_nth_read(mut self, n: u64) -> FaultPlan {
        self.fail_nth_read = Some(n);
        self
    }

    /// Fails the `n`th physical write (1-based).
    pub fn with_fail_nth_write(mut self, n: u64) -> FaultPlan {
        self.fail_nth_write = Some(n);
        self
    }

    /// Sets the transient read-failure probability.
    pub fn with_read_failure_rate(mut self, p: f64) -> FaultPlan {
        self.read_failure_rate = p;
        self
    }

    /// Sets the transient write-failure probability.
    pub fn with_write_failure_rate(mut self, p: f64) -> FaultPlan {
        self.write_failure_rate = p;
        self
    }

    /// Every read of `block` fails with probability `p`.
    pub fn with_fail_block_reads(mut self, block: usize, p: f64) -> FaultPlan {
        self.fail_block_reads = Some((block, p));
        self
    }

    /// Reads with 1-based op index in `first..=last` fail with
    /// probability `p` — a brownout with a deterministic end, after which
    /// the device behaves normally again.
    pub fn with_read_failure_window(mut self, first: u64, last: u64, p: f64) -> FaultPlan {
        self.read_failure_window = Some((first, last, p));
        self
    }

    /// Sets the torn-write probability.
    pub fn with_torn_write_rate(mut self, p: f64) -> FaultPlan {
        self.torn_write_rate = p;
        self
    }

    /// Stalls every physical block read by `latency` (a slow-disk model;
    /// results are unaffected, only wall-clock time). Per-read charges are
    /// accumulated and served in [`STALL_QUANTUM`] sleeps, so latencies far
    /// below the OS timer resolution still add up accurately.
    pub fn with_read_latency(mut self, latency: Duration) -> FaultPlan {
        self.read_latency = latency;
        self
    }

    /// Whether this plan can silently corrupt stored bytes. Heap files
    /// maintain (and verify) per-block checksums only when it can — the
    /// checksum work is pure overhead under plans that merely fail or
    /// stall reads.
    pub fn can_tear(&self) -> bool {
        self.torn_write_rate > 0.0
    }

    /// Wraps the plan in a fresh shared fault state.
    pub fn into_shared(self) -> SharedFaults {
        Arc::new(Mutex::new(FaultState::new(self)))
    }
}

/// What a consulted write should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Store the intended bytes.
    Clean,
    /// Store the intended bytes, then flip the byte at this block offset
    /// (the checksum still records the *intended* content, so the next
    /// read detects the tear).
    Torn(usize),
}

/// One injected fault, for post-mortem inspection in tests and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// `"read"` or `"write"`.
    pub op: &'static str,
    /// Block the op addressed (heap block, or `INDEX_BLOCK_BASE + level`
    /// for index probes).
    pub block: usize,
    /// 1-based index of the op within its counter stream.
    pub op_index: u64,
    /// Whether the op failed transiently (`IoFailed`) or tore silently.
    pub torn: bool,
}

/// How much read-latency debt accumulates before a thread actually
/// sleeps. Real per-block latencies (hundreds of nanoseconds to a few
/// microseconds for the simulated device) are far below what
/// `thread::sleep` can deliver per call, so the stall is served in
/// millisecond quanta: aggregate stall time is exact to within one
/// quantum, and concurrent readers still overlap their waits.
pub const STALL_QUANTUM: Duration = Duration::from_millis(1);

/// Mutable fault-injection state: the plan plus op counters, accumulated
/// read-latency debt, and a log of every fault that fired.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    reads: u64,
    writes: u64,
    stall_debt: Duration,
    /// Every fault that fired, in order.
    pub log: Vec<FaultEvent>,
}

/// A fault state shared by all relations of one database (`Arc<Mutex<…>>`
/// mirroring [`SharedBuffer`](crate::buffer::SharedBuffer)).
pub type SharedFaults = Arc<Mutex<FaultState>>;

impl FaultState {
    /// Fresh state for a plan: counters at zero, empty log.
    pub fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            plan,
            reads: 0,
            writes: 0,
            stall_debt: Duration::ZERO,
            log: Vec::new(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Physical reads consulted so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Physical writes consulted so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Consults the plan for a physical read of `block`.
    ///
    /// # Errors
    /// [`StorageError::IoFailed`] when the plan says this read fails.
    pub fn on_read(&mut self, block: usize) -> Result<(), StorageError> {
        self.reads += 1;
        self.stall_debt += self.plan.read_latency;
        let idx = self.reads;
        let planned = self.plan.fail_nth_read == Some(idx);
        let flaky_block = matches!(
            self.plan.fail_block_reads,
            Some((b, p)) if b == block && decide(self.plan.seed, 1, idx, p)
        );
        let transient = decide(self.plan.seed, 2, idx, self.plan.read_failure_rate);
        let brownout = matches!(
            self.plan.read_failure_window,
            Some((first, last, p)) if (first..=last).contains(&idx) && decide(self.plan.seed, 5, idx, p)
        );
        if planned || flaky_block || transient || brownout {
            self.log.push(FaultEvent {
                op: "read",
                block,
                op_index: idx,
                torn: false,
            });
            return Err(StorageError::IoFailed {
                op: "read",
                block,
                op_index: idx,
            });
        }
        Ok(())
    }

    /// Consults the plan for a physical write of `block`.
    ///
    /// # Errors
    /// [`StorageError::IoFailed`] when the plan says this write fails
    /// outright; `Ok(WriteMode::Torn(_))` when it should tear silently.
    pub fn on_write(&mut self, block: usize) -> Result<WriteMode, StorageError> {
        self.writes += 1;
        let idx = self.writes;
        if self.plan.fail_nth_write == Some(idx)
            || decide(self.plan.seed, 3, idx, self.plan.write_failure_rate)
        {
            self.log.push(FaultEvent {
                op: "write",
                block,
                op_index: idx,
                torn: false,
            });
            return Err(StorageError::IoFailed {
                op: "write",
                block,
                op_index: idx,
            });
        }
        if decide(self.plan.seed, 4, idx, self.plan.torn_write_rate) {
            self.log.push(FaultEvent {
                op: "write",
                block,
                op_index: idx,
                torn: true,
            });
            let offset =
                (splitmix64(self.plan.seed ^ idx) % crate::block::BLOCK_SIZE as u64) as usize;
            return Ok(WriteMode::Torn(offset));
        }
        Ok(WriteMode::Clean)
    }

    /// Drains the accumulated read-latency debt once it reaches
    /// [`STALL_QUANTUM`]. The caller sleeps the returned duration *after*
    /// releasing the lock; `Duration::ZERO` means the debt is still below
    /// the quantum and is carried forward.
    pub fn take_stall(&mut self) -> Duration {
        if self.stall_debt >= STALL_QUANTUM {
            std::mem::take(&mut self.stall_debt)
        } else {
            Duration::ZERO
        }
    }
}

/// Serves a stall drained by [`FaultState::take_stall`]. The storage
/// layer calls this *after* releasing the shared fault lock, so
/// concurrent readers sleep in parallel rather than queueing.
pub(crate) fn stall(debt: Duration) {
    if debt > Duration::ZERO {
        std::thread::sleep(debt);
    }
}

/// FNV-1a over a block's bytes — the per-block checksum heap files keep
/// while faults are attached.
pub(crate) fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires() {
        let mut st = FaultState::new(FaultPlan::inert(7));
        for b in 0..1000 {
            st.on_read(b).unwrap();
            assert_eq!(st.on_write(b).unwrap(), WriteMode::Clean);
        }
        assert!(st.log.is_empty());
        assert_eq!(st.reads(), 1000);
        assert_eq!(st.writes(), 1000);
    }

    #[test]
    fn nth_read_fails_exactly_once() {
        let mut st = FaultState::new(FaultPlan::inert(1).with_fail_nth_read(3));
        st.on_read(0).unwrap();
        st.on_read(0).unwrap();
        let err = st.on_read(9).unwrap_err();
        assert_eq!(
            err,
            StorageError::IoFailed {
                op: "read",
                block: 9,
                op_index: 3
            }
        );
        st.on_read(9).unwrap();
        assert_eq!(st.log.len(), 1);
    }

    #[test]
    fn nth_write_fails_exactly_once() {
        let mut st = FaultState::new(FaultPlan::inert(1).with_fail_nth_write(2));
        st.on_write(0).unwrap();
        assert!(matches!(
            st.on_write(5),
            Err(StorageError::IoFailed { op: "write", .. })
        ));
        st.on_write(5).unwrap();
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let run = |seed| {
            let mut st = FaultState::new(FaultPlan::inert(seed).with_read_failure_rate(0.3));
            (0..200).map(|b| st.on_read(b).is_err()).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ somewhere");
    }

    #[test]
    fn failure_rate_is_roughly_honoured() {
        let mut st = FaultState::new(FaultPlan::inert(9).with_read_failure_rate(0.25));
        let failures = (0..4000).filter(|&b| st.on_read(b).is_err()).count();
        assert!(
            (800..1200).contains(&failures),
            "{failures} failures out of 4000"
        );
    }

    #[test]
    fn flaky_block_only_affects_that_block() {
        let plan = FaultPlan::inert(3).with_fail_block_reads(7, 1.0);
        let mut st = FaultState::new(plan);
        st.on_read(6).unwrap();
        assert!(st.on_read(7).is_err());
        st.on_read(8).unwrap();
        assert!(st.on_read(7).is_err());
    }

    #[test]
    fn read_failure_window_starts_and_ends_deterministically() {
        let plan = FaultPlan::inert(17).with_read_failure_window(4, 6, 1.0);
        let mut st = FaultState::new(plan);
        for b in 0..3 {
            st.on_read(b).unwrap();
        }
        for b in 3..6 {
            assert!(
                st.on_read(b).is_err(),
                "read {} is inside the brownout",
                b + 1
            );
        }
        for b in 6..50 {
            st.on_read(b).unwrap();
        }
        assert_eq!(st.log.len(), 3, "only the windowed reads failed");
    }

    #[test]
    fn partial_rate_brownout_is_deterministic_and_bounded() {
        let run = |seed| {
            let mut st =
                FaultState::new(FaultPlan::inert(seed).with_read_failure_window(1, 400, 0.5));
            (0..600).map(|b| st.on_read(b).is_err()).collect::<Vec<_>>()
        };
        let a = run(23);
        assert_eq!(a, run(23));
        let failures = a.iter().filter(|&&f| f).count();
        assert!((120..280).contains(&failures), "{failures} of 400 at p=0.5");
        assert!(
            a.iter().skip(400).all(|&f| !f),
            "no failures after the window closes"
        );
    }

    #[test]
    fn torn_writes_report_an_offset_in_range() {
        let mut st = FaultState::new(FaultPlan::inert(5).with_torn_write_rate(1.0));
        match st.on_write(0).unwrap() {
            WriteMode::Torn(off) => assert!(off < crate::block::BLOCK_SIZE),
            WriteMode::Clean => panic!("torn rate 1.0 must tear"),
        }
        assert!(st.log[0].torn);
    }

    #[test]
    fn read_latency_defaults_to_zero_and_never_affects_decisions() {
        assert_eq!(FaultPlan::inert(1).read_latency, Duration::ZERO);
        assert_eq!(FaultPlan::chaos(1).read_latency, Duration::ZERO);
        let slow = FaultPlan::inert(1).with_read_latency(Duration::from_micros(250));
        assert_eq!(slow.read_latency, Duration::from_micros(250));
        // Latency is pure wall-clock: the decision stream is unchanged.
        let mut fast = FaultState::new(FaultPlan::inert(9).with_read_failure_rate(0.25));
        let mut slow = FaultState::new(
            FaultPlan::inert(9)
                .with_read_failure_rate(0.25)
                .with_read_latency(Duration::ZERO),
        );
        for b in 0..500 {
            assert_eq!(fast.on_read(b).is_err(), slow.on_read(b).is_err());
        }
    }

    #[test]
    fn stall_debt_accumulates_to_the_quantum_then_drains() {
        let latency = STALL_QUANTUM / 4;
        let mut st = FaultState::new(FaultPlan::inert(1).with_read_latency(latency));
        for _ in 0..3 {
            st.on_read(0).unwrap();
            assert_eq!(
                st.take_stall(),
                Duration::ZERO,
                "debt below the quantum is carried"
            );
        }
        st.on_read(0).unwrap();
        assert_eq!(
            st.take_stall(),
            STALL_QUANTUM,
            "the fourth charge reaches the quantum"
        );
        assert_eq!(st.take_stall(), Duration::ZERO, "draining resets the debt");
        // Zero-latency plans never accumulate anything.
        let mut inert = FaultState::new(FaultPlan::inert(1));
        for b in 0..100 {
            inert.on_read(b).unwrap();
        }
        assert_eq!(inert.take_stall(), Duration::ZERO);
    }

    #[test]
    fn chaos_plans_differ_by_seed_but_are_stable() {
        assert_eq!(FaultPlan::chaos(11), FaultPlan::chaos(11));
        assert_ne!(
            FaultPlan::chaos(11).fail_nth_read,
            FaultPlan::chaos(12).fail_nth_read
        );
    }

    #[test]
    fn checksum_detects_single_byte_flips() {
        let mut bytes = vec![0u8; 4096];
        bytes[100] = 7;
        let sum = checksum(&bytes);
        bytes[2000] ^= 0x5a;
        assert_ne!(checksum(&bytes), sum);
    }
}
