//! Fixed-width tuple codecs for the edge relation `S` and node relation `R`.
//!
//! Table 4A fixes the physical layout this crate honours exactly:
//!
//! * `T_s = 32` bytes per `S` tuple → `Bf_s = 4096 / 32 = 128` tuples/block;
//! * `T_r = 16` bytes per `R` tuple → `Bf_r = 4096 / 16 = 256` tuples/block;
//! * `Bf_rs = 4096 / (16 + 32) = 85` joined tuples/block (the paper rounds
//!   to 86; we follow the byte arithmetic and document the off-by-one).
//!
//! `R`'s logical schema is (node-id, x, y, status, path, path-cost). The
//! node-id is the ISAM key; ids are dense, so the tuple's *slot position*
//! encodes it and the 16 payload bytes carry the remaining attributes at
//! full `f32` precision. `path` is the predecessor pointer ("The complete
//! path to the source node can be constructed by traversing this pointer",
//! Section 4); [`NO_PRED`] marks null.
//!
//! # Node-id width
//!
//! The paper's largest network has 1089 nodes, so the original layout kept
//! 16-bit ids. Metro-scale networks (100k–1M nodes, see `atis-graph`'s
//! `metro` module and `SCALING.md`) need wider ids *without* changing the
//! tuple sizes the whole cost model is calibrated on. Ids are therefore
//! stored as **24-bit** integers: the low 16 bits stay where the original
//! layout put them and the high 8 bits occupy a previously-zero pad byte,
//! so pre-widening images decode unchanged. [`MAX_NODE_ID`] is the largest
//! encodable id; [`NO_PRED`] is the all-ones 24-bit sentinel.

use crate::relations::NodeStatus;

/// Largest node id the 24-bit on-disk encoding can carry (the all-ones
/// value is reserved for [`NO_PRED`]).
pub const MAX_NODE_ID: u32 = 0x00FF_FFFE;

/// Sentinel for a null `path` pointer in a node tuple (all ones in the
/// 24-bit id encoding).
pub const NO_PRED: u32 = 0x00FF_FFFF;

/// A fixed-width tuple that can be stored in a heap file.
pub trait FixedTuple: Clone {
    /// Encoded size in bytes; must divide evenly into useful block space.
    const SIZE: usize;
    /// Writes the tuple into `buf` (`buf.len() == SIZE`).
    fn encode(&self, buf: &mut [u8]);
    /// Reads a tuple back from `buf` (`buf.len() == SIZE`).
    fn decode(buf: &[u8]) -> Self;
}

/// A tuple of the edge relation `S = (Begin-node, End-node, Edge-cost)`
/// plus the segment attributes of the Minneapolis data (Section 5.2: "The
/// data about each segment includes x and y position of the two nodes,
/// average speed for the segment, average occupancy, and road type"). The
/// end-node position lets A\* version 1 discover coordinates for nodes it
/// has not yet appended to its resultant relation.
///
/// Layout (32 bytes): begin-lo `u16`, end-lo `u16`, cost `f64`, class
/// `u8`, begin-hi `u8`, end-hi `u8`, 1 pad, occupancy `f32`, end_x `f32`,
/// end_y `f32`, 4 reserved. (`begin`/`end` are 24-bit ids; see the module
/// docs.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeTuple {
    /// `Begin-node` — the hash-clustering key (≤ [`MAX_NODE_ID`]).
    pub begin: u32,
    /// `End-node` (≤ [`MAX_NODE_ID`]).
    pub end: u32,
    /// `Edge-cost`.
    pub cost: f64,
    /// Road class discriminant (0 street, 1 highway, 2 freeway).
    pub class: u8,
    /// Average occupancy in `[0, 1]`.
    pub occupancy: f32,
    /// x position of the end node.
    pub end_x: f32,
    /// y position of the end node.
    pub end_y: f32,
}

impl FixedTuple for EdgeTuple {
    const SIZE: usize = 32;

    fn encode(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), Self::SIZE);
        debug_assert!(self.begin <= NO_PRED && self.end <= NO_PRED);
        buf[0..2].copy_from_slice(&(self.begin as u16).to_le_bytes());
        buf[2..4].copy_from_slice(&(self.end as u16).to_le_bytes());
        buf[4..12].copy_from_slice(&self.cost.to_le_bytes());
        buf[12] = self.class;
        buf[13] = (self.begin >> 16) as u8;
        buf[14] = (self.end >> 16) as u8;
        buf[15] = 0;
        buf[16..20].copy_from_slice(&self.occupancy.to_le_bytes());
        buf[20..24].copy_from_slice(&self.end_x.to_le_bytes());
        buf[24..28].copy_from_slice(&self.end_y.to_le_bytes());
        buf[28..32].fill(0);
    }

    fn decode(buf: &[u8]) -> Self {
        debug_assert_eq!(buf.len(), Self::SIZE);
        EdgeTuple {
            begin: u16::from_le_bytes([buf[0], buf[1]]) as u32 | ((buf[13] as u32) << 16),
            end: u16::from_le_bytes([buf[2], buf[3]]) as u32 | ((buf[14] as u32) << 16),
            cost: f64::from_le_bytes(buf[4..12].try_into().expect("8 bytes")),
            class: buf[12],
            occupancy: f32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")),
            end_x: f32::from_le_bytes(buf[20..24].try_into().expect("4 bytes")),
            end_y: f32::from_le_bytes(buf[24..28].try_into().expect("4 bytes")),
        }
    }
}

/// A tuple of the node relation `R` (16 payload bytes; the node-id is the
/// slot position).
///
/// Layout: x `f32`, y `f32`, status `u8`, path-hi `u8`, path-lo `u16`,
/// path-cost `f32`. (`path` is a 24-bit id; see the module docs.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeTuple {
    /// `x-coordinate` (for estimator functions).
    pub x: f32,
    /// `y-coordinate`.
    pub y: f32,
    /// frontier/explored membership: the paper's four-valued `status`
    /// attribute (Section 4).
    pub status: NodeStatus,
    /// Predecessor pointer on the best known path to the source
    /// ([`NO_PRED`] = null).
    pub path: u32,
    /// `path-cost` — cost of the best known path from the source.
    /// `f32::INFINITY` until the node is reached.
    pub path_cost: f32,
}

impl NodeTuple {
    /// A fresh, unreached node at `(x, y)`.
    pub fn unreached(x: f32, y: f32) -> Self {
        NodeTuple {
            x,
            y,
            status: NodeStatus::Null,
            path: NO_PRED,
            path_cost: f32::INFINITY,
        }
    }
}

impl FixedTuple for NodeTuple {
    const SIZE: usize = 16;

    fn encode(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), Self::SIZE);
        debug_assert!(self.path <= NO_PRED);
        buf[0..4].copy_from_slice(&self.x.to_le_bytes());
        buf[4..8].copy_from_slice(&self.y.to_le_bytes());
        buf[8] = self.status as u8;
        buf[9] = (self.path >> 16) as u8;
        buf[10..12].copy_from_slice(&(self.path as u16).to_le_bytes());
        buf[12..16].copy_from_slice(&self.path_cost.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        debug_assert_eq!(buf.len(), Self::SIZE);
        NodeTuple {
            x: f32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")),
            y: f32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")),
            status: NodeStatus::from_u8(buf[8]),
            path: u16::from_le_bytes([buf[10], buf[11]]) as u32 | ((buf[9] as u32) << 16),
            path_cost: f32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")),
        }
    }
}

/// Blocking factor for a tuple type — `Bf = B / T` (Table 4A).
pub const fn blocking_factor<T: FixedTuple>() -> usize {
    crate::block::BLOCK_SIZE / T::SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_factors_match_table_4a() {
        assert_eq!(blocking_factor::<EdgeTuple>(), 128); // Bf_s
        assert_eq!(blocking_factor::<NodeTuple>(), 256); // Bf_r
    }

    #[test]
    fn edge_tuple_roundtrip() {
        let t = EdgeTuple {
            begin: 17,
            end: 900,
            cost: 1.125,
            class: 2,
            occupancy: 0.75,
            end_x: 3.5,
            end_y: -8.25,
        };
        let mut buf = [0u8; 32];
        t.encode(&mut buf);
        assert_eq!(EdgeTuple::decode(&buf), t);
    }

    #[test]
    fn edge_tuple_roundtrips_metro_scale_ids() {
        // Ids above u16::MAX exercise the high byte of the 24-bit encoding.
        let t = EdgeTuple {
            begin: 734_003,
            end: MAX_NODE_ID,
            cost: 0.5,
            class: 2,
            occupancy: 0.0,
            end_x: 1.0,
            end_y: 2.0,
        };
        let mut buf = [0u8; 32];
        t.encode(&mut buf);
        let back = EdgeTuple::decode(&buf);
        assert_eq!(back.begin, 734_003);
        assert_eq!(back.end, MAX_NODE_ID);
    }

    #[test]
    fn node_tuple_roundtrip() {
        let t = NodeTuple {
            x: 12.5,
            y: -3.25,
            status: NodeStatus::Open,
            path: 42,
            path_cost: 7.5,
        };
        let mut buf = [0u8; 16];
        t.encode(&mut buf);
        assert_eq!(NodeTuple::decode(&buf), t);
    }

    #[test]
    fn node_tuple_roundtrips_metro_scale_path() {
        let t = NodeTuple {
            x: 0.0,
            y: 0.0,
            status: NodeStatus::Closed,
            path: 1_000_000,
            path_cost: 3.0,
        };
        let mut buf = [0u8; 16];
        t.encode(&mut buf);
        assert_eq!(NodeTuple::decode(&buf).path, 1_000_000);
    }

    #[test]
    fn small_ids_keep_the_legacy_byte_image() {
        // Ids ≤ u16::MAX must leave the former pad bytes zero, so the
        // widened codec is byte-identical to the original on the paper's
        // networks.
        let t = EdgeTuple {
            begin: 17,
            end: 900,
            cost: 1.0,
            class: 0,
            occupancy: 0.0,
            end_x: 0.0,
            end_y: 0.0,
        };
        let mut buf = [0u8; 32];
        t.encode(&mut buf);
        assert_eq!((buf[13], buf[14], buf[15]), (0, 0, 0));
    }

    #[test]
    fn unreached_node_is_null_with_infinite_cost() {
        let t = NodeTuple::unreached(1.0, 2.0);
        assert_eq!(t.status, NodeStatus::Null);
        assert_eq!(t.path, NO_PRED);
        assert!(t.path_cost.is_infinite());
        // Infinity survives the codec.
        let mut buf = [0u8; 16];
        t.encode(&mut buf);
        assert!(NodeTuple::decode(&buf).path_cost.is_infinite());
    }

    #[test]
    fn all_statuses_roundtrip() {
        for s in [
            NodeStatus::Null,
            NodeStatus::Open,
            NodeStatus::Closed,
            NodeStatus::Current,
        ] {
            let t = NodeTuple {
                x: 0.0,
                y: 0.0,
                status: s,
                path: 0,
                path_cost: 0.0,
            };
            let mut buf = [0u8; 16];
            t.encode(&mut buf);
            assert_eq!(NodeTuple::decode(&buf).status, s);
        }
    }
}
