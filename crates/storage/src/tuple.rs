//! Fixed-width tuple codecs for the edge relation `S` and node relation `R`.
//!
//! Table 4A fixes the physical layout this crate honours exactly:
//!
//! * `T_s = 32` bytes per `S` tuple → `Bf_s = 4096 / 32 = 128` tuples/block;
//! * `T_r = 16` bytes per `R` tuple → `Bf_r = 4096 / 16 = 256` tuples/block;
//! * `Bf_rs = 4096 / (16 + 32) = 85` joined tuples/block (the paper rounds
//!   to 86; we follow the byte arithmetic and document the off-by-one).
//!
//! `R`'s logical schema is (node-id, x, y, status, path, path-cost). The
//! node-id is the ISAM key; ids are dense, so the tuple's *slot position*
//! encodes it and the 16 payload bytes carry the remaining attributes at
//! full `f32` precision. `path` is the predecessor pointer ("The complete
//! path to the source node can be constructed by traversing this pointer",
//! Section 4); [`NO_PRED`] marks null.

use crate::relations::NodeStatus;

/// Sentinel for a null `path` pointer in a node tuple.
pub const NO_PRED: u16 = u16::MAX;

/// A fixed-width tuple that can be stored in a heap file.
pub trait FixedTuple: Clone {
    /// Encoded size in bytes; must divide evenly into useful block space.
    const SIZE: usize;
    /// Writes the tuple into `buf` (`buf.len() == SIZE`).
    fn encode(&self, buf: &mut [u8]);
    /// Reads a tuple back from `buf` (`buf.len() == SIZE`).
    fn decode(buf: &[u8]) -> Self;
}

/// A tuple of the edge relation `S = (Begin-node, End-node, Edge-cost)`
/// plus the segment attributes of the Minneapolis data (Section 5.2: "The
/// data about each segment includes x and y position of the two nodes,
/// average speed for the segment, average occupancy, and road type"). The
/// end-node position lets A\* version 1 discover coordinates for nodes it
/// has not yet appended to its resultant relation.
///
/// Layout (32 bytes): begin `u16`, end `u16`, cost `f64`, class `u8`,
/// 3 pad, occupancy `f32`, end_x `f32`, end_y `f32`, 4 reserved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeTuple {
    /// `Begin-node` — the hash-clustering key.
    pub begin: u16,
    /// `End-node`.
    pub end: u16,
    /// `Edge-cost`.
    pub cost: f64,
    /// Road class discriminant (0 street, 1 highway, 2 freeway).
    pub class: u8,
    /// Average occupancy in `[0, 1]`.
    pub occupancy: f32,
    /// x position of the end node.
    pub end_x: f32,
    /// y position of the end node.
    pub end_y: f32,
}

impl FixedTuple for EdgeTuple {
    const SIZE: usize = 32;

    fn encode(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), Self::SIZE);
        buf[0..2].copy_from_slice(&self.begin.to_le_bytes());
        buf[2..4].copy_from_slice(&self.end.to_le_bytes());
        buf[4..12].copy_from_slice(&self.cost.to_le_bytes());
        buf[12] = self.class;
        buf[13..16].fill(0);
        buf[16..20].copy_from_slice(&self.occupancy.to_le_bytes());
        buf[20..24].copy_from_slice(&self.end_x.to_le_bytes());
        buf[24..28].copy_from_slice(&self.end_y.to_le_bytes());
        buf[28..32].fill(0);
    }

    fn decode(buf: &[u8]) -> Self {
        debug_assert_eq!(buf.len(), Self::SIZE);
        EdgeTuple {
            begin: u16::from_le_bytes([buf[0], buf[1]]),
            end: u16::from_le_bytes([buf[2], buf[3]]),
            cost: f64::from_le_bytes(buf[4..12].try_into().expect("8 bytes")),
            class: buf[12],
            occupancy: f32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")),
            end_x: f32::from_le_bytes(buf[20..24].try_into().expect("4 bytes")),
            end_y: f32::from_le_bytes(buf[24..28].try_into().expect("4 bytes")),
        }
    }
}

/// A tuple of the node relation `R` (16 payload bytes; the node-id is the
/// slot position).
///
/// Layout: x `f32`, y `f32`, status `u8`, 1 pad, path `u16`, path-cost
/// `f32`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeTuple {
    /// `x-coordinate` (for estimator functions).
    pub x: f32,
    /// `y-coordinate`.
    pub y: f32,
    /// frontier/explored membership: the paper's four-valued `status`
    /// attribute (Section 4).
    pub status: NodeStatus,
    /// Predecessor pointer on the best known path to the source
    /// ([`NO_PRED`] = null).
    pub path: u16,
    /// `path-cost` — cost of the best known path from the source.
    /// `f32::INFINITY` until the node is reached.
    pub path_cost: f32,
}

impl NodeTuple {
    /// A fresh, unreached node at `(x, y)`.
    pub fn unreached(x: f32, y: f32) -> Self {
        NodeTuple {
            x,
            y,
            status: NodeStatus::Null,
            path: NO_PRED,
            path_cost: f32::INFINITY,
        }
    }
}

impl FixedTuple for NodeTuple {
    const SIZE: usize = 16;

    fn encode(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), Self::SIZE);
        buf[0..4].copy_from_slice(&self.x.to_le_bytes());
        buf[4..8].copy_from_slice(&self.y.to_le_bytes());
        buf[8] = self.status as u8;
        buf[9] = 0;
        buf[10..12].copy_from_slice(&self.path.to_le_bytes());
        buf[12..16].copy_from_slice(&self.path_cost.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        debug_assert_eq!(buf.len(), Self::SIZE);
        NodeTuple {
            x: f32::from_le_bytes(buf[0..4].try_into().expect("4 bytes")),
            y: f32::from_le_bytes(buf[4..8].try_into().expect("4 bytes")),
            status: NodeStatus::from_u8(buf[8]),
            path: u16::from_le_bytes([buf[10], buf[11]]),
            path_cost: f32::from_le_bytes(buf[12..16].try_into().expect("4 bytes")),
        }
    }
}

/// Blocking factor for a tuple type — `Bf = B / T` (Table 4A).
pub const fn blocking_factor<T: FixedTuple>() -> usize {
    crate::block::BLOCK_SIZE / T::SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_factors_match_table_4a() {
        assert_eq!(blocking_factor::<EdgeTuple>(), 128); // Bf_s
        assert_eq!(blocking_factor::<NodeTuple>(), 256); // Bf_r
    }

    #[test]
    fn edge_tuple_roundtrip() {
        let t = EdgeTuple {
            begin: 17,
            end: 900,
            cost: 1.125,
            class: 2,
            occupancy: 0.75,
            end_x: 3.5,
            end_y: -8.25,
        };
        let mut buf = [0u8; 32];
        t.encode(&mut buf);
        assert_eq!(EdgeTuple::decode(&buf), t);
    }

    #[test]
    fn node_tuple_roundtrip() {
        let t = NodeTuple {
            x: 12.5,
            y: -3.25,
            status: NodeStatus::Open,
            path: 42,
            path_cost: 7.5,
        };
        let mut buf = [0u8; 16];
        t.encode(&mut buf);
        assert_eq!(NodeTuple::decode(&buf), t);
    }

    #[test]
    fn unreached_node_is_null_with_infinite_cost() {
        let t = NodeTuple::unreached(1.0, 2.0);
        assert_eq!(t.status, NodeStatus::Null);
        assert_eq!(t.path, NO_PRED);
        assert!(t.path_cost.is_infinite());
        // Infinity survives the codec.
        let mut buf = [0u8; 16];
        t.encode(&mut buf);
        assert!(NodeTuple::decode(&buf).path_cost.is_infinite());
    }

    #[test]
    fn all_statuses_roundtrip() {
        for s in [
            NodeStatus::Null,
            NodeStatus::Open,
            NodeStatus::Closed,
            NodeStatus::Current,
        ] {
            let t = NodeTuple {
                x: 0.0,
                y: 0.0,
                status: s,
                path: 0,
                path_cost: 0.0,
            };
            let mut buf = [0u8; 16];
            t.encode(&mut buf);
            assert_eq!(NodeTuple::decode(&buf).status, s);
        }
    }
}
