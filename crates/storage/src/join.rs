//! The four join strategies of Section 4 and the cost chooser `F(B1, B2, B3)`.
//!
//! Step 6/7 of every algorithm joins the *current* node(s) with the edge
//! relation `S` on `Begin-node` to fetch adjacency lists. "The function
//! uses the input parameters to choose the cheapest join strategy from
//! among four viable choices: (1) Hash Join, (2) Nested-Loop Join,
//! (3) Sort-Merge Join, and (4) Primary Key Join."
//!
//! All four strategies compute the same relation; what differs is the I/O
//! they charge — exactly how the paper's own "query optimizer simulation"
//! treats them. The charging formulas (with `B1` = outer blocks, `B2` =
//! inner blocks, `B3` = result blocks):
//!
//! * **Nested-loop**: `B1·t_read + B1·B2·t_read + B3·t_write` — the form
//!   the paper spells out in Section 4.3.
//! * **Hash**: `(B1 + B2)·t_read + B3·t_write` — build the smaller side in
//!   memory, stream the larger.
//! * **Sort-merge**: `(B1·⌈log2 B1⌉ + B2·⌈log2 B2⌉)·t_update +
//!   (B1 + B2)·t_read + B3·t_write` — external sorts then a merge pass.
//! * **Primary-key**: one hash-bucket probe of `S` per outer *tuple* plus
//!   the result write: `|C|·t_read + B3·t_write` (a probe touches the
//!   bucket's blocks, at least one).
//!
//! Note the paper's Table 4B example *forces* nested-loop ("we assume that
//! all the algorithms choose the nested-join approach"), which is why
//! [`JoinPolicy::default`] is `Force(NestedLoop)`; the cost-based chooser
//! is exercised by the `join_strategies` ablation bench.

use crate::io::{CostParams, IoStats};
use crate::relations::EdgeRelation;
use crate::tuple::{EdgeTuple, FixedTuple, NodeTuple};

/// `Bf_rs` — blocking factor of the `R × S` join result. The byte
/// arithmetic gives `4096 / (16 + 32) = 85`; Table 4A prints 86 (the paper
/// rounded up). We follow the bytes.
pub const JOIN_BLOCKING: usize = crate::block::BLOCK_SIZE / (NodeTuple::SIZE + EdgeTuple::SIZE);

/// Outer-side blocking: current nodes carry `R`'s 16-byte schema.
const OUTER_BLOCKING: usize = crate::block::BLOCK_SIZE / NodeTuple::SIZE;

/// One of the four join strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinStrategy {
    /// Block nested-loop join.
    NestedLoop,
    /// In-memory hash join.
    Hash,
    /// Sort-merge join.
    SortMerge,
    /// Index (primary-key) join through `S`'s hash clustering.
    PrimaryKey,
}

impl JoinStrategy {
    /// All four strategies, in the paper's listing order.
    pub const ALL: [JoinStrategy; 4] = [
        JoinStrategy::Hash,
        JoinStrategy::NestedLoop,
        JoinStrategy::SortMerge,
        JoinStrategy::PrimaryKey,
    ];

    /// Human-readable name.
    pub fn label(&self) -> &'static str {
        match self {
            JoinStrategy::NestedLoop => "nested-loop",
            JoinStrategy::Hash => "hash",
            JoinStrategy::SortMerge => "sort-merge",
            JoinStrategy::PrimaryKey => "primary-key",
        }
    }
}

/// How the engine picks the strategy for each join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinPolicy {
    /// Always use one strategy. The paper's worked example (Table 4B)
    /// forces `NestedLoop`.
    Force(JoinStrategy),
    /// Choose the cheapest by estimated cost — the paper's
    /// "query optimizer simulation in C".
    CostBased,
}

impl Default for JoinPolicy {
    fn default() -> Self {
        JoinPolicy::Force(JoinStrategy::NestedLoop)
    }
}

/// Estimated cost of a strategy for `outer_tuples` outer tuples over an
/// inner relation of `b_inner` blocks producing `b_join` result blocks.
pub fn estimate_cost(
    strategy: JoinStrategy,
    outer_tuples: usize,
    b_inner: usize,
    b_join: usize,
    params: &CostParams,
) -> f64 {
    let b_outer = outer_tuples.div_ceil(OUTER_BLOCKING).max(1) as f64;
    let b_inner = b_inner.max(1) as f64;
    let b_join = b_join as f64;
    let log2 = |b: f64| b.log2().ceil().max(0.0);
    match strategy {
        JoinStrategy::NestedLoop => {
            (b_outer + b_outer * b_inner) * params.t_read + b_join * params.t_write
        }
        JoinStrategy::Hash => (b_outer + b_inner) * params.t_read + b_join * params.t_write,
        JoinStrategy::SortMerge => {
            (b_outer * log2(b_outer) + b_inner * log2(b_inner)) * params.t_update
                + (b_outer + b_inner) * params.t_read
                + b_join * params.t_write
        }
        JoinStrategy::PrimaryKey => outer_tuples as f64 * params.t_read + b_join * params.t_write,
    }
}

/// The chooser behind `F(B1, B2, B3)`: the cheapest strategy for the given
/// shape, by the estimates above. Ties resolve in [`JoinStrategy::ALL`]
/// order.
pub fn choose_strategy(
    outer_tuples: usize,
    b_inner: usize,
    est_b_join: usize,
    params: &CostParams,
) -> JoinStrategy {
    let mut best = JoinStrategy::ALL[0];
    let mut best_cost = f64::INFINITY;
    for s in JoinStrategy::ALL {
        let c = estimate_cost(s, outer_tuples, b_inner, est_b_join, params);
        if c < best_cost {
            best = s;
            best_cost = c;
        }
    }
    best
}

/// Joins the current node set with `S` on begin-node, returning
/// `(begin, edge)` pairs grouped per current node in input order, and the
/// strategy charged.
///
/// Charging: the strategy's I/O formula over the *actual* result size plus
/// the result-materialisation writes (`B_join`). The join output is a
/// temporary relation; its creation cost `I` is charged once per algorithm
/// run (step `C1`), not here, matching Table 2/3's step structure.
///
/// # Errors
/// Surfaces injected read failures and checksum mismatches from `S`.
pub fn join_adjacency(
    current: &[(u32, NodeTuple)],
    edges: &EdgeRelation,
    policy: JoinPolicy,
    params: &CostParams,
    io: &mut IoStats,
) -> Result<(Vec<(u32, EdgeTuple)>, JoinStrategy), crate::error::StorageError> {
    if current.is_empty() {
        return Ok((Vec::new(), JoinStrategy::PrimaryKey));
    }
    let est_result = ((current.len() as f64 * edges.average_degree()).ceil() as usize).max(1);
    let est_b_join = est_result.div_ceil(JOIN_BLOCKING).max(1);
    let strategy = match policy {
        JoinPolicy::Force(s) => s,
        JoinPolicy::CostBased => {
            choose_strategy(current.len(), edges.block_count(), est_b_join, params)
        }
    };

    // Canonical result: adjacency of each current node, input order. All
    // four strategies produce this same relation.
    let mut result = Vec::with_capacity(est_result);
    for &(id, _) in current {
        edges.peek_adjacency(id, |e| result.push((id, *e)))?;
    }

    // Charging. Reads of `S` go through the relation's (possibly
    // buffered) heap; the outer side is an unbuffered in-flight temporary.
    let b_outer = current.len().div_ceil(OUTER_BLOCKING).max(1) as u64;
    let b_inner = edges.block_count().max(1) as u64;
    let b_join = result.len().div_ceil(JOIN_BLOCKING).max(1) as u64;
    match strategy {
        JoinStrategy::NestedLoop => {
            io.read_blocks(b_outer);
            for _ in 0..b_outer {
                edges.charge_scan(io)?; // one full rescan of S per outer block
            }
            io.write_blocks(b_join);
        }
        JoinStrategy::Hash => {
            io.read_blocks(b_outer);
            edges.charge_scan(io)?;
            io.write_blocks(b_join);
        }
        JoinStrategy::SortMerge => {
            let log2 = |b: u64| ((b as f64).log2().ceil().max(0.0)) as u64;
            io.update_tuples(b_outer * log2(b_outer) + b_inner * log2(b_inner));
            io.read_blocks(b_outer);
            edges.charge_scan(io)?;
            io.write_blocks(b_join);
        }
        JoinStrategy::PrimaryKey => {
            for &(id, _) in current {
                edges.charge_probe(id, io)?;
            }
            io.write_blocks(b_join);
        }
    }
    Ok((result, strategy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relations::NodeStatus;
    use atis_graph::graph::graph_from_arcs;
    use atis_graph::Graph;

    fn graph() -> Graph {
        graph_from_arcs(
            5,
            &[
                (0, 1, 1.0),
                (0, 2, 1.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
                (3, 4, 1.0),
                (4, 0, 1.0),
            ],
        )
        .unwrap()
    }

    fn current(ids: &[u32]) -> Vec<(u32, NodeTuple)> {
        ids.iter()
            .map(|&id| {
                (
                    id,
                    NodeTuple {
                        x: 0.0,
                        y: 0.0,
                        status: NodeStatus::Current,
                        path: crate::tuple::NO_PRED,
                        path_cost: 0.0,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn join_blocking_factor_is_85() {
        assert_eq!(JOIN_BLOCKING, 85);
    }

    #[test]
    fn all_strategies_produce_the_same_relation() {
        let g = graph();
        let mut io = IoStats::new();
        let s = EdgeRelation::load(&g, &mut io).unwrap();
        let cur = current(&[0, 1]);
        let p = CostParams::default();
        let mut results = Vec::new();
        for strat in JoinStrategy::ALL {
            let (r, used) =
                join_adjacency(&cur, &s, JoinPolicy::Force(strat), &p, &mut IoStats::new())
                    .unwrap();
            assert_eq!(used, strat);
            results.push(r);
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        let pairs: Vec<(u32, u32)> = results[0].iter().map(|(f, e)| (*f, e.end)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2), (1, 3)]);
    }

    #[test]
    fn nested_loop_charges_quadratic_reads() {
        let g = graph();
        let mut io = IoStats::new();
        let s = EdgeRelation::load(&g, &mut io).unwrap();
        let cur = current(&[0]);
        let p = CostParams::default();
        let mut io2 = IoStats::new();
        let _ = join_adjacency(
            &cur,
            &s,
            JoinPolicy::Force(JoinStrategy::NestedLoop),
            &p,
            &mut io2,
        )
        .unwrap();
        // B1 = 1, B2 = 1: 1 + 1*1 = 2 reads, 1 result write.
        assert_eq!(io2.block_reads, 2);
        assert_eq!(io2.block_writes, 1);
    }

    #[test]
    fn primary_key_charges_per_probe() {
        let g = graph();
        let mut io = IoStats::new();
        let s = EdgeRelation::load(&g, &mut io).unwrap();
        let cur = current(&[0, 1, 2]);
        let p = CostParams::default();
        let mut io2 = IoStats::new();
        let _ = join_adjacency(
            &cur,
            &s,
            JoinPolicy::Force(JoinStrategy::PrimaryKey),
            &p,
            &mut io2,
        )
        .unwrap();
        // One bucket block per current node (adjacencies fit one block).
        assert_eq!(io2.block_reads, 3);
        assert_eq!(io2.block_writes, 1);
    }

    #[test]
    fn chooser_picks_primary_key_for_single_current_node() {
        // The shape of Dijkstra/A* iterations: |C| = 1 against a large S.
        let p = CostParams::default();
        let s = choose_strategy(1, 28, 1, &p);
        assert_eq!(s, JoinStrategy::PrimaryKey);
    }

    #[test]
    fn chooser_avoids_nested_loop_for_large_outer() {
        let p = CostParams::default();
        // 1000 outer tuples (4 blocks) x 100 inner blocks: nested loop is
        // 4 + 400 reads; hash is 104.
        let s = choose_strategy(1000, 100, 10, &p);
        assert_ne!(s, JoinStrategy::NestedLoop);
    }

    #[test]
    fn estimates_match_formulas() {
        let p = CostParams::default();
        // B1 = 1 (200 tuples fit 1 block at 256/block), B2 = 28, B3 = 1.
        let nl = estimate_cost(JoinStrategy::NestedLoop, 200, 28, 1, &p);
        assert!((nl - ((1.0 + 28.0) * 0.035 + 0.05)).abs() < 1e-12);
        let h = estimate_cost(JoinStrategy::Hash, 200, 28, 1, &p);
        assert!((h - (29.0 * 0.035 + 0.05)).abs() < 1e-12);
        let pk = estimate_cost(JoinStrategy::PrimaryKey, 200, 28, 1, &p);
        assert!((pk - (200.0 * 0.035 + 0.05)).abs() < 1e-12);
    }

    #[test]
    fn empty_current_set_joins_to_nothing() {
        let g = graph();
        let mut io = IoStats::new();
        let s = EdgeRelation::load(&g, &mut io).unwrap();
        let p = CostParams::default();
        let before = io;
        let (r, _) = join_adjacency(&[], &s, JoinPolicy::CostBased, &p, &mut io).unwrap();
        assert!(r.is_empty());
        assert_eq!(io.since(&before), IoStats::default());
    }

    #[test]
    fn sort_merge_charges_sort_updates() {
        let g = graph();
        let mut io = IoStats::new();
        let s = EdgeRelation::load(&g, &mut io).unwrap();
        let cur = current(&[0]);
        let p = CostParams::default();
        let mut io2 = IoStats::new();
        let _ = join_adjacency(
            &cur,
            &s,
            JoinPolicy::Force(JoinStrategy::SortMerge),
            &p,
            &mut io2,
        )
        .unwrap();
        // log2(1) = 0 for both single-block sides: no sort updates, just
        // the merge reads and result write.
        assert_eq!(io2.tuple_updates, 0);
        assert_eq!(io2.block_reads, 2);
    }
}
