//! A small QUEL interpreter over the paged storage engine.
//!
//! The paper's algorithms were "implemented in EQUEL" — QUEL embedded in a
//! host language — and Section 5.3 reasons about the relative costs of the
//! QUEL operations `APPEND`, `DELETE` and `REPLACE`. This module provides
//! the QUEL side of that pairing: a typed, interpreted subset of the
//! language executing against dynamically-schema'd relations stored in the
//! same 4096-byte blocks, charged through the same [`crate::IoStats`]
//! meter as the native engine.
//!
//! Supported statements (see [`parser`] for the grammar):
//!
//! ```quel
//! CREATE nodes (id = int, cost = float, status = string) KEY id
//! RANGE OF n IS nodes
//! APPEND TO nodes (id = 0, cost = 0.0, status = "open")
//! RETRIEVE (n.id, n.cost) WHERE n.status = "open" AND n.cost < 10.0
//! REPLACE n (status = "closed") WHERE n.id = 0
//! DELETE n WHERE n.cost > 100.0
//! RETRIEVE (MIN(n.cost)) WHERE n.status = "open"
//! RETRIEVE UNIQUE (n.status) SORT BY n.status
//! RETRIEVE INTO open_ids (id = n.id) WHERE n.status = "open"
//! DROP nodes
//! ```
//!
//! `examples/quel_session.rs` (workspace root) drives a full Dijkstra run
//! through this interface, mirroring the paper's EQUEL programs.

pub mod ast;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod relation;
pub mod value;

pub use ast::Statement;
pub use engine::{QuelEngine, QuelOutput};
pub use parser::parse;
pub use relation::DynRelation;
pub use value::{Value, ValueType};

use std::fmt;

/// Errors from parsing or executing QUEL.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QuelError {
    /// Lexical error at a byte offset.
    Lex(usize, String),
    /// Parse error.
    Parse(String),
    /// Unknown relation name.
    UnknownRelation(String),
    /// Unknown range variable.
    UnknownRange(String),
    /// Unknown column.
    UnknownColumn(String),
    /// A value had the wrong type for its column or operator.
    Type(String),
    /// Relation already exists.
    DuplicateRelation(String),
    /// Duplicate key on APPEND into a keyed relation.
    DuplicateKey(String),
    /// Storage-level failure.
    Storage(crate::StorageError),
}

impl fmt::Display for QuelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuelError::Lex(pos, msg) => write!(f, "lex error at byte {pos}: {msg}"),
            QuelError::Parse(msg) => write!(f, "parse error: {msg}"),
            QuelError::UnknownRelation(n) => write!(f, "unknown relation '{n}'"),
            QuelError::UnknownRange(n) => write!(f, "unknown range variable '{n}'"),
            QuelError::UnknownColumn(n) => write!(f, "unknown column '{n}'"),
            QuelError::Type(msg) => write!(f, "type error: {msg}"),
            QuelError::DuplicateRelation(n) => write!(f, "relation '{n}' already exists"),
            QuelError::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            QuelError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for QuelError {}

impl From<crate::StorageError> for QuelError {
    fn from(e: crate::StorageError) -> Self {
        QuelError::Storage(e)
    }
}
