//! Abstract syntax of the QUEL subset.

use super::value::{Value, ValueType};

/// A column reference `range_var.column` (or `range_var.ALL` in targets).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    /// The range variable.
    pub range_var: String,
    /// The column name (lower-cased).
    pub column: String,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Expressions over one bound row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column of the current row.
    Column(ColumnRef),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation `NOT e`.
    Not(Box<Expr>),
    /// Arithmetic negation `-e`.
    Neg(Box<Expr>),
    /// `ABS(e)`.
    Abs(Box<Expr>),
}

/// A retrieve target.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// `x.column`.
    Column(ColumnRef),
    /// `x.ALL` — every column of the range variable.
    All(String),
    /// `MIN(expr)` aggregate over the qualifying rows.
    Min(Expr),
    /// `MAX(expr)`.
    Max(Expr),
    /// `COUNT(expr)` — number of qualifying rows; the expression supplies
    /// the range binding (e.g. `COUNT(n.id)`), as in QUEL.
    Count(Expr),
    /// `SUM(expr)`.
    Sum(Expr),
}

/// One `column = expr` assignment (APPEND / REPLACE).
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Column name.
    pub column: String,
    /// Value expression.
    pub expr: Expr,
}

/// A QUEL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `EXPLAIN <statement>` — describe the access path without executing
    /// (an extension; the paper's optimizer-simulation decisions, made
    /// visible).
    Explain(Box<Statement>),
    /// `CREATE name (col = type, ...) [KEY col]`.
    Create {
        /// Relation name.
        name: String,
        /// Columns in declaration order.
        columns: Vec<(String, ValueType)>,
        /// Optional key column (gets an index with maintenance charges).
        key: Option<String>,
    },
    /// `DROP name`.
    Drop {
        /// Relation name.
        name: String,
    },
    /// `RANGE OF var IS name`.
    Range {
        /// The range variable.
        var: String,
        /// The relation it ranges over.
        relation: String,
    },
    /// `APPEND TO name (col = expr, ...)` — expressions must be constant.
    Append {
        /// Target relation.
        relation: String,
        /// Column assignments.
        assignments: Vec<Assignment>,
    },
    /// `RETRIEVE [UNIQUE] (targets) [WHERE pred] [SORT BY expr [DESC]]`.
    Retrieve {
        /// Targets (all plain or all aggregate).
        targets: Vec<Target>,
        /// Optional qualification.
        predicate: Option<Expr>,
        /// Drop duplicate result rows (QUEL's `RETRIEVE UNIQUE`).
        unique: bool,
        /// Optional sort key and direction (`true` = descending).
        sort: Option<(Expr, bool)>,
    },
    /// `RETRIEVE INTO name (col = expr, ...) [WHERE pred]` — materialise
    /// a query's result as a new relation (QUEL's workspace-relation
    /// idiom).
    RetrieveInto {
        /// Name of the relation to create.
        name: String,
        /// Projected columns: name = expression over the range variables.
        assignments: Vec<Assignment>,
        /// Optional qualification.
        predicate: Option<Expr>,
    },
    /// `REPLACE var (col = expr, ...) [WHERE pred]`.
    Replace {
        /// Range variable of the rows to update.
        var: String,
        /// Column assignments (may reference the current row).
        assignments: Vec<Assignment>,
        /// Optional qualification.
        predicate: Option<Expr>,
    },
    /// `DELETE var [WHERE pred]`.
    Delete {
        /// Range variable of the rows to delete.
        var: String,
        /// Optional qualification.
        predicate: Option<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for binary nodes.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }
}
