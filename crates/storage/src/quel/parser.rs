//! Recursive-descent parser for the QUEL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement   := create | drop | range | append | retrieve | replace | delete
//! create      := CREATE ident '(' coldef (',' coldef)* ')' [KEY ident]
//! coldef      := ident '=' ('int' | 'float' | 'string')
//! drop        := DROP ident
//! range       := RANGE OF ident IS ident
//! append      := APPEND TO ident '(' assign (',' assign)* ')'
//! retrieve    := RETRIEVE [UNIQUE] '(' target (',' target)* ')'
//!                [WHERE expr] [SORT BY expr [ASC|DESC]]
//!              | RETRIEVE INTO ident '(' assign (',' assign)* ')' [WHERE expr]
//! target      := ident '.' (ident | ALL) | MIN '(' expr ')' | MAX '(' expr ')'
//!              | SUM '(' expr ')' | COUNT '(' expr ')'
//! replace     := REPLACE ident '(' assign (',' assign)* ')' [WHERE expr]
//! delete      := DELETE ident [WHERE expr]
//! assign      := ident '=' expr
//! expr        := or_expr
//! or_expr     := and_expr (OR and_expr)*
//! and_expr    := not_expr (AND not_expr)*
//! not_expr    := NOT not_expr | comparison
//! comparison  := additive [('=' | '!=' | '<' | '<=' | '>' | '>=') additive]
//! additive    := term (('+' | '-') term)*
//! term        := factor (('*' | '/') factor)*
//! factor      := literal | ident '.' ident | ABS '(' expr ')'
//!              | '-' factor | '(' expr ')'
//! ```

use super::ast::{Assignment, BinOp, ColumnRef, Expr, Statement, Target};
use super::lexer::{lex, Token};
use super::value::{Value, ValueType};
use super::QuelError;

/// Parses one QUEL statement.
pub fn parse(input: &str) -> Result<Statement, QuelError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    if p.pos != p.tokens.len() {
        return Err(QuelError::Parse(format!(
            "trailing tokens after statement: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, QuelError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| QuelError::Parse("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, tok: &Token) -> Result<(), QuelError> {
        let t = self.next()?;
        if &t == tok {
            Ok(())
        } else {
            Err(QuelError::Parse(format!("expected {tok:?}, found {t:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, QuelError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(QuelError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), QuelError> {
        let id = self.ident()?;
        if id == kw {
            Ok(())
        } else {
            Err(QuelError::Parse(format!(
                "expected keyword '{kw}', found '{id}'"
            )))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn statement(&mut self) -> Result<Statement, QuelError> {
        let head = self.ident()?;
        match head.as_str() {
            "explain" => Ok(Statement::Explain(Box::new(self.statement()?))),
            "create" => self.create(),
            "drop" => Ok(Statement::Drop {
                name: self.ident()?,
            }),
            "range" => self.range(),
            "append" => self.append(),
            "retrieve" => self.retrieve(),
            "replace" => self.replace(),
            "delete" => self.delete(),
            other => Err(QuelError::Parse(format!("unknown statement '{other}'"))),
        }
    }

    fn create(&mut self) -> Result<Statement, QuelError> {
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            let ty = match self.ident()?.as_str() {
                "int" => ValueType::Int,
                "float" => ValueType::Float,
                "string" => ValueType::Str,
                other => return Err(QuelError::Parse(format!("unknown column type '{other}'"))),
            };
            columns.push((col, ty));
            match self.next()? {
                Token::Comma => continue,
                Token::RParen => break,
                other => {
                    return Err(QuelError::Parse(format!(
                        "expected ',' or ')', found {other:?}"
                    )))
                }
            }
        }
        let key = if self.peek_keyword("key") {
            self.pos += 1;
            Some(self.ident()?)
        } else {
            None
        };
        Ok(Statement::Create { name, columns, key })
    }

    fn range(&mut self) -> Result<Statement, QuelError> {
        self.keyword("of")?;
        let var = self.ident()?;
        self.keyword("is")?;
        let relation = self.ident()?;
        Ok(Statement::Range { var, relation })
    }

    fn append(&mut self) -> Result<Statement, QuelError> {
        self.keyword("to")?;
        let relation = self.ident()?;
        let assignments = self.assignments()?;
        Ok(Statement::Append {
            relation,
            assignments,
        })
    }

    fn assignments(&mut self) -> Result<Vec<Assignment>, QuelError> {
        self.expect(&Token::LParen)?;
        let mut out = Vec::new();
        loop {
            let column = self.ident()?;
            self.expect(&Token::Eq)?;
            let expr = self.expr()?;
            out.push(Assignment { column, expr });
            match self.next()? {
                Token::Comma => continue,
                Token::RParen => break,
                other => {
                    return Err(QuelError::Parse(format!(
                        "expected ',' or ')', found {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }

    fn retrieve(&mut self) -> Result<Statement, QuelError> {
        if self.peek_keyword("into") {
            self.pos += 1;
            let name = self.ident()?;
            let assignments = self.assignments()?;
            let predicate = self.optional_where()?;
            return Ok(Statement::RetrieveInto {
                name,
                assignments,
                predicate,
            });
        }
        let unique = if self.peek_keyword("unique") {
            self.pos += 1;
            true
        } else {
            false
        };
        self.expect(&Token::LParen)?;
        let mut targets = Vec::new();
        loop {
            targets.push(self.target()?);
            match self.next()? {
                Token::Comma => continue,
                Token::RParen => break,
                other => {
                    return Err(QuelError::Parse(format!(
                        "expected ',' or ')', found {other:?}"
                    )))
                }
            }
        }
        let predicate = self.optional_where()?;
        let sort = if self.peek_keyword("sort") {
            self.pos += 1;
            self.keyword("by")?;
            let key = self.expr()?;
            let desc = if self.peek_keyword("desc") {
                self.pos += 1;
                true
            } else {
                if self.peek_keyword("asc") {
                    self.pos += 1;
                }
                false
            };
            Some((key, desc))
        } else {
            None
        };
        Ok(Statement::Retrieve {
            targets,
            predicate,
            unique,
            sort,
        })
    }

    fn target(&mut self) -> Result<Target, QuelError> {
        let first = self.ident()?;
        match first.as_str() {
            "min" | "max" | "sum" => {
                self.expect(&Token::LParen)?;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(match first.as_str() {
                    "min" => Target::Min(e),
                    "max" => Target::Max(e),
                    _ => Target::Sum(e),
                })
            }
            "count" => {
                self.expect(&Token::LParen)?;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(Target::Count(e))
            }
            var => {
                self.expect(&Token::Dot)?;
                let col = self.ident()?;
                if col == "all" {
                    Ok(Target::All(var.to_string()))
                } else {
                    Ok(Target::Column(ColumnRef {
                        range_var: var.to_string(),
                        column: col,
                    }))
                }
            }
        }
    }

    fn replace(&mut self) -> Result<Statement, QuelError> {
        let var = self.ident()?;
        let assignments = self.assignments()?;
        let predicate = self.optional_where()?;
        Ok(Statement::Replace {
            var,
            assignments,
            predicate,
        })
    }

    fn delete(&mut self) -> Result<Statement, QuelError> {
        let var = self.ident()?;
        let predicate = self.optional_where()?;
        Ok(Statement::Delete { var, predicate })
    }

    fn optional_where(&mut self) -> Result<Option<Expr>, QuelError> {
        if self.peek_keyword("where") {
            self.pos += 1;
            Ok(Some(self.expr()?))
        } else {
            Ok(None)
        }
    }

    // --- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, QuelError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, QuelError> {
        let mut lhs = self.and_expr()?;
        while self.peek_keyword("or") {
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, QuelError> {
        let mut lhs = self.not_expr()?;
        while self.peek_keyword("and") {
            self.pos += 1;
            let rhs = self.not_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, QuelError> {
        if self.peek_keyword("not") {
            self.pos += 1;
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, QuelError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            Ok(Expr::binary(op, lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn additive(&mut self) -> Result<Expr, QuelError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, QuelError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, QuelError> {
        match self.next()? {
            Token::Int(i) => Ok(Expr::Literal(Value::Int(i))),
            Token::Float(f) => Ok(Expr::Literal(Value::Float(f))),
            Token::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            Token::Minus => Ok(Expr::Neg(Box::new(self.factor()?))),
            Token::LParen => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(id) if id == "abs" => {
                self.expect(&Token::LParen)?;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Abs(Box::new(e)))
            }
            Token::Ident(var) => {
                self.expect(&Token::Dot)?;
                let column = self.ident()?;
                Ok(Expr::Column(ColumnRef {
                    range_var: var,
                    column,
                }))
            }
            other => Err(QuelError::Parse(format!(
                "unexpected token {other:?} in expression"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_with_key() {
        let s = parse("CREATE nodes (id = int, cost = float, status = string) KEY id").unwrap();
        match s {
            Statement::Create { name, columns, key } => {
                assert_eq!(name, "nodes");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[1], ("cost".into(), ValueType::Float));
                assert_eq!(key, Some("id".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_range() {
        let s = parse("RANGE OF n IS nodes").unwrap();
        assert_eq!(
            s,
            Statement::Range {
                var: "n".into(),
                relation: "nodes".into()
            }
        );
    }

    #[test]
    fn parses_append() {
        let s = parse("APPEND TO nodes (id = 3, cost = 1.5 + 2.0, status = \"open\")").unwrap();
        match s {
            Statement::Append {
                relation,
                assignments,
            } => {
                assert_eq!(relation, "nodes");
                assert_eq!(assignments.len(), 3);
                assert_eq!(assignments[0].column, "id");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_retrieve_with_where() {
        let s = parse("RETRIEVE (n.id, n.cost) WHERE n.status = \"open\" AND n.cost < 5").unwrap();
        match s {
            Statement::Retrieve {
                targets, predicate, ..
            } => {
                assert_eq!(targets.len(), 2);
                assert!(predicate.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_aggregates_and_all() {
        let s = parse("RETRIEVE (MIN(n.cost + 1), COUNT(n.id), n.all)").unwrap();
        match s {
            Statement::Retrieve { targets, .. } => {
                assert!(matches!(targets[0], Target::Min(_)));
                assert!(matches!(targets[1], Target::Count(_)));
                assert_eq!(targets[2], Target::All("n".into()));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_replace() {
        let s = parse("REPLACE n (status = \"closed\", cost = n.cost * 2) WHERE n.id = 7").unwrap();
        match s {
            Statement::Replace {
                var,
                assignments,
                predicate,
            } => {
                assert_eq!(var, "n");
                assert_eq!(assignments.len(), 2);
                assert!(predicate.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_delete_without_where() {
        let s = parse("DELETE f").unwrap();
        assert_eq!(
            s,
            Statement::Delete {
                var: "f".into(),
                predicate: None
            }
        );
    }

    #[test]
    fn operator_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3).
        let s = parse("RETRIEVE (MIN(1 + 2 * 3))").unwrap();
        let Statement::Retrieve { targets, .. } = s else {
            panic!()
        };
        let Target::Min(Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        }) = &targets[0]
        else {
            panic!("{targets:?}")
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let s = parse("DELETE f WHERE f.a = 1 OR f.b = 2 AND f.c = 3").unwrap();
        let Statement::Delete {
            predicate: Some(Expr::Binary { op, .. }),
            ..
        } = s
        else {
            panic!()
        };
        assert_eq!(op, BinOp::Or);
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(matches!(parse("DROP x y"), Err(QuelError::Parse(_))));
    }

    #[test]
    fn rejects_unknown_statement() {
        assert!(matches!(parse("SELECT 1"), Err(QuelError::Parse(_))));
    }

    #[test]
    fn parses_negation_and_abs() {
        let s = parse("RETRIEVE (MIN(ABS(-n.cost)))").unwrap();
        let Statement::Retrieve { targets, .. } = s else {
            panic!()
        };
        assert!(matches!(&targets[0], Target::Min(Expr::Abs(_))));
    }
}
