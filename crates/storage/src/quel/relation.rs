//! Dynamically-schema'd relations for the QUEL interpreter.
//!
//! A [`DynRelation`] is a paged heap of fixed-width rows whose layout
//! comes from a runtime [`Schema`] instead of a compile-time tuple type.
//! Charging matches the native engine exactly: scans pay one block read
//! per block (tombstoned slots included), appends pay one block write plus
//! index adjustment when the relation is keyed, keyed probes pay `I_l`
//! index reads, and in-place updates pay one tuple update.

use super::value::{Value, ValueType};
use super::QuelError;
use crate::block::{Block, BLOCK_SIZE};
use crate::io::IoStats;
use std::collections::HashMap;

/// A runtime schema: named, typed, fixed-width columns.
#[derive(Debug, Clone)]
pub struct Schema {
    columns: Vec<(String, ValueType)>,
    offsets: Vec<usize>,
    row_size: usize,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Errors
    /// Fails on duplicate column names or rows wider than a block.
    pub fn new(columns: Vec<(String, ValueType)>) -> Result<Schema, QuelError> {
        let mut offsets = Vec::with_capacity(columns.len());
        let mut off = 0;
        for (i, (name, ty)) in columns.iter().enumerate() {
            if columns[..i].iter().any(|(n, _)| n == name) {
                return Err(QuelError::Parse(format!("duplicate column '{name}'")));
            }
            offsets.push(off);
            off += ty.width();
        }
        if off == 0 || off > BLOCK_SIZE {
            return Err(QuelError::Type(format!("row size {off} invalid")));
        }
        Ok(Schema {
            columns,
            offsets,
            row_size: off,
        })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Encoded row width in bytes.
    pub fn row_size(&self) -> usize {
        self.row_size
    }

    /// Rows per 4096-byte block.
    pub fn rows_per_block(&self) -> usize {
        BLOCK_SIZE / self.row_size
    }

    /// Column names in order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    /// Index and type of a named column.
    pub fn column(&self, name: &str) -> Result<(usize, ValueType), QuelError> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| (i, self.columns[i].1))
            .ok_or_else(|| QuelError::UnknownColumn(name.to_string()))
    }

    /// Type of column `i`.
    pub fn column_type(&self, i: usize) -> ValueType {
        self.columns[i].1
    }

    fn encode_row(&self, row: &[Value], buf: &mut [u8]) {
        for (i, v) in row.iter().enumerate() {
            let w = self.columns[i].1.width();
            v.encode(&mut buf[self.offsets[i]..self.offsets[i] + w]);
        }
    }

    fn decode_row(&self, buf: &[u8]) -> Vec<Value> {
        self.columns
            .iter()
            .enumerate()
            .map(|(i, (_, ty))| {
                let w = ty.width();
                Value::decode(*ty, &buf[self.offsets[i]..self.offsets[i] + w])
            })
            .collect()
    }
}

/// Hashable key values (float keys are disallowed at CREATE time).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyVal {
    Int(i64),
    Str(String),
}

impl KeyVal {
    fn from_value(v: &Value) -> Result<KeyVal, QuelError> {
        match v {
            Value::Int(i) => Ok(KeyVal::Int(*i)),
            Value::Str(s) => Ok(KeyVal::Str(s.clone())),
            Value::Float(_) => Err(QuelError::Type("float keys are not supported".into())),
        }
    }
}

/// A paged relation with runtime schema, optional key index, and
/// tombstoning deletes (heap space is not reclaimed mid-session, like the
/// native temp relations).
#[derive(Debug, Clone)]
pub struct DynRelation {
    schema: Schema,
    blocks: Vec<Block>,
    live: Vec<bool>,
    len: usize,
    live_count: usize,
    key_column: Option<usize>,
    directory: HashMap<KeyVal, usize>,
    index_levels: u64,
}

impl DynRelation {
    /// Creates an empty relation (charges the creation cost `I`).
    ///
    /// # Errors
    /// Fails if the key column is missing or float-typed.
    pub fn create(
        schema: Schema,
        key: Option<&str>,
        index_levels: u64,
        io: &mut IoStats,
    ) -> Result<DynRelation, QuelError> {
        io.create_relation();
        let key_column = match key {
            None => None,
            Some(name) => {
                let (idx, ty) = schema.column(name)?;
                if ty == ValueType::Float {
                    return Err(QuelError::Type("float keys are not supported".into()));
                }
                Some(idx)
            }
        };
        Ok(DynRelation {
            schema,
            blocks: Vec::new(),
            live: Vec::new(),
            len: 0,
            live_count: 0,
            key_column,
            directory: HashMap::new(),
            index_levels,
        })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Live row count (`len` excludes tombstones; the raw slot count is
    /// an internal detail).
    #[allow(clippy::misnamed_getters)]
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether no live rows remain.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Occupied blocks (tombstones included) — what scans pay for.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the relation has a key index.
    pub fn is_keyed(&self) -> bool {
        self.key_column.is_some()
    }

    /// The key column index, if keyed.
    pub fn key_column(&self) -> Option<usize> {
        self.key_column
    }

    fn locate(&self, slot: usize) -> (usize, usize) {
        let rpb = self.schema.rows_per_block();
        (slot / rpb, (slot % rpb) * self.schema.row_size())
    }

    /// Appends a typed row (QUEL `APPEND`): one block write plus `I_l`
    /// index adjustments when keyed.
    ///
    /// # Errors
    /// Fails on arity/type mismatch or duplicate key.
    pub fn append(&mut self, row: Vec<Value>, io: &mut IoStats) -> Result<(), QuelError> {
        if row.len() != self.schema.arity() {
            return Err(QuelError::Type(format!(
                "expected {} values, got {}",
                self.schema.arity(),
                row.len()
            )));
        }
        let row: Vec<Value> = row
            .into_iter()
            .enumerate()
            .map(|(i, v)| v.coerce(self.schema.column_type(i)))
            .collect::<Result<_, _>>()?;
        if let Some(kc) = self.key_column {
            let key = KeyVal::from_value(&row[kc])?;
            if self.directory.contains_key(&key) {
                return Err(QuelError::DuplicateKey(format!("{:?}", row[kc])));
            }
            self.directory.insert(key, self.len);
        }
        let slot = self.len;
        let (b, off) = self.locate(slot);
        if b == self.blocks.len() {
            self.blocks.push(Block::new());
        }
        let size = self.schema.row_size();
        self.schema
            .encode_row(&row, self.blocks[b].bytes_mut(off, size));
        self.live.push(true);
        self.len += 1;
        self.live_count += 1;
        io.write_blocks(1);
        if self.key_column.is_some() {
            io.adjust_index(self.index_levels);
        }
        Ok(())
    }

    /// Full scan over live rows (one read per block).
    pub fn scan(&self, io: &mut IoStats, mut visit: impl FnMut(usize, Vec<Value>)) {
        io.read_blocks(self.blocks.len() as u64);
        for slot in 0..self.len {
            if self.live[slot] {
                let (b, off) = self.locate(slot);
                visit(
                    slot,
                    self.schema
                        .decode_row(self.blocks[b].bytes(off, self.schema.row_size())),
                );
            }
        }
    }

    /// Keyed probe (charges `I_l` index reads plus one data read).
    /// Returns `None` for absent keys.
    pub fn probe(
        &self,
        key: &Value,
        io: &mut IoStats,
    ) -> Result<Option<(usize, Vec<Value>)>, QuelError> {
        io.read_blocks(self.index_levels);
        let Some(kc) = self.key_column else {
            return Err(QuelError::Type("relation has no key".into()));
        };
        let coerced = key.clone().coerce(self.schema.column_type(kc))?;
        let key = KeyVal::from_value(&coerced)?;
        match self.directory.get(&key) {
            None => Ok(None),
            Some(&slot) => {
                io.read_blocks(1);
                let (b, off) = self.locate(slot);
                Ok(Some((
                    slot,
                    self.schema
                        .decode_row(self.blocks[b].bytes(off, self.schema.row_size())),
                )))
            }
        }
    }

    /// In-place update of one slot (one tuple update). Maintains the key
    /// directory if the key changes.
    ///
    /// # Errors
    /// Fails on type mismatch or a key collision.
    pub fn update_slot(
        &mut self,
        slot: usize,
        row: Vec<Value>,
        io: &mut IoStats,
    ) -> Result<(), QuelError> {
        debug_assert!(slot < self.len && self.live[slot]);
        let row: Vec<Value> = row
            .into_iter()
            .enumerate()
            .map(|(i, v)| v.coerce(self.schema.column_type(i)))
            .collect::<Result<_, _>>()?;
        if let Some(kc) = self.key_column {
            let (b, off) = self.locate(slot);
            let old = self
                .schema
                .decode_row(self.blocks[b].bytes(off, self.schema.row_size()));
            let old_key = KeyVal::from_value(&old[kc])?;
            let new_key = KeyVal::from_value(&row[kc])?;
            if old_key != new_key {
                if self.directory.contains_key(&new_key) {
                    return Err(QuelError::DuplicateKey(format!("{:?}", row[kc])));
                }
                self.directory.remove(&old_key);
                self.directory.insert(new_key, slot);
                io.adjust_index(self.index_levels);
            }
        }
        let size = self.schema.row_size();
        let (b, off) = self.locate(slot);
        self.schema
            .encode_row(&row, self.blocks[b].bytes_mut(off, size));
        io.update_tuples(1);
        Ok(())
    }

    /// Tombstones one slot (one tuple update plus index adjustment when
    /// keyed).
    pub fn delete_slot(&mut self, slot: usize, io: &mut IoStats) -> Result<(), QuelError> {
        debug_assert!(slot < self.len && self.live[slot]);
        if let Some(kc) = self.key_column {
            let (b, off) = self.locate(slot);
            let row = self
                .schema
                .decode_row(self.blocks[b].bytes(off, self.schema.row_size()));
            self.directory.remove(&KeyVal::from_value(&row[kc])?);
            io.adjust_index(self.index_levels);
        }
        self.live[slot] = false;
        self.live_count -= 1;
        io.update_tuples(1);
        Ok(())
    }

    /// Drops all contents (charges `D_t`).
    pub fn clear(&mut self, io: &mut IoStats) {
        io.delete_relation();
        self.blocks.clear();
        self.live.clear();
        self.directory.clear();
        self.len = 0;
        self.live_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id".into(), ValueType::Int),
            ("cost".into(), ValueType::Float),
            ("status".into(), ValueType::Str),
        ])
        .unwrap()
    }

    fn row(id: i64, cost: f64, status: &str) -> Vec<Value> {
        vec![
            Value::Int(id),
            Value::Float(cost),
            Value::Str(status.into()),
        ]
    }

    #[test]
    fn schema_layout() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.row_size(), 8 + 8 + 16);
        assert_eq!(s.rows_per_block(), 128);
        assert_eq!(s.column("cost").unwrap(), (1, ValueType::Float));
        assert!(s.column("missing").is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        assert!(Schema::new(vec![
            ("a".into(), ValueType::Int),
            ("a".into(), ValueType::Int)
        ])
        .is_err());
    }

    #[test]
    fn append_scan_roundtrip() {
        let mut io = IoStats::new();
        let mut r = DynRelation::create(schema(), Some("id"), 3, &mut io).unwrap();
        r.append(row(1, 0.5, "open"), &mut io).unwrap();
        r.append(row(2, 1.5, "closed"), &mut io).unwrap();
        let mut seen = Vec::new();
        r.scan(&mut io, |_, row| seen.push(row));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0][0], Value::Int(1));
        assert_eq!(seen[1][2], Value::Str("closed".into()));
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut io = IoStats::new();
        let mut r = DynRelation::create(schema(), Some("id"), 3, &mut io).unwrap();
        r.append(row(1, 0.5, "open"), &mut io).unwrap();
        assert!(matches!(
            r.append(row(1, 9.0, "open"), &mut io),
            Err(QuelError::DuplicateKey(_))
        ));
    }

    #[test]
    fn probe_hits_and_misses() {
        let mut io = IoStats::new();
        let mut r = DynRelation::create(schema(), Some("id"), 3, &mut io).unwrap();
        r.append(row(7, 2.0, "open"), &mut io).unwrap();
        let before = io;
        let hit = r.probe(&Value::Int(7), &mut io).unwrap();
        assert!(hit.is_some());
        assert_eq!(io.since(&before).block_reads, 4); // 3 index + 1 data
        assert!(r.probe(&Value::Int(8), &mut io).unwrap().is_none());
    }

    #[test]
    fn delete_tombstones() {
        let mut io = IoStats::new();
        let mut r = DynRelation::create(schema(), Some("id"), 3, &mut io).unwrap();
        r.append(row(1, 0.5, "open"), &mut io).unwrap();
        r.append(row(2, 1.5, "open"), &mut io).unwrap();
        r.delete_slot(0, &mut io).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.probe(&Value::Int(1), &mut io).unwrap().is_none());
        let mut ids = Vec::new();
        r.scan(&mut io, |_, row| ids.push(row[0].clone()));
        assert_eq!(ids, vec![Value::Int(2)]);
        // Blocks are not reclaimed.
        assert_eq!(r.block_count(), 1);
    }

    #[test]
    fn update_slot_can_move_key() {
        let mut io = IoStats::new();
        let mut r = DynRelation::create(schema(), Some("id"), 3, &mut io).unwrap();
        r.append(row(1, 0.5, "open"), &mut io).unwrap();
        r.update_slot(0, row(9, 0.5, "open"), &mut io).unwrap();
        assert!(r.probe(&Value::Int(1), &mut io).unwrap().is_none());
        assert!(r.probe(&Value::Int(9), &mut io).unwrap().is_some());
    }

    #[test]
    fn float_key_rejected() {
        let mut io = IoStats::new();
        let s = Schema::new(vec![("x".into(), ValueType::Float)]).unwrap();
        assert!(DynRelation::create(s, Some("x"), 3, &mut io).is_err());
    }

    #[test]
    fn type_coercion_on_append() {
        let mut io = IoStats::new();
        let mut r = DynRelation::create(schema(), None, 3, &mut io).unwrap();
        // Int literal into the float column widens.
        r.append(
            vec![Value::Int(1), Value::Int(2), Value::Str("x".into())],
            &mut io,
        )
        .unwrap();
        let mut seen = Vec::new();
        r.scan(&mut io, |_, row| seen.push(row));
        assert_eq!(seen[0][1], Value::Float(2.0));
        // String into int fails.
        assert!(r
            .append(
                vec![
                    Value::Str("no".into()),
                    Value::Float(0.0),
                    Value::Str("x".into())
                ],
                &mut io
            )
            .is_err());
    }
}
