//! Statement execution for the QUEL subset.

use super::ast::{Assignment, BinOp, ColumnRef, Expr, Statement, Target};
use super::parser::parse;
use super::relation::{DynRelation, Schema};
use super::value::Value;
use super::QuelError;
use crate::io::IoStats;
use std::collections::HashMap;

/// The result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QuelOutput {
    /// DDL / range statements produce no data.
    None,
    /// `RETRIEVE` output: column headers and rows.
    Rows {
        /// Column headers.
        columns: Vec<String>,
        /// Result rows.
        rows: Vec<Vec<Value>>,
    },
    /// `APPEND` / `REPLACE` / `DELETE`: how many tuples were touched.
    Affected(usize),
}

impl QuelOutput {
    /// The rows of a `Rows` output (empty otherwise).
    pub fn rows(&self) -> &[Vec<Value>] {
        match self {
            QuelOutput::Rows { rows, .. } => rows,
            _ => &[],
        }
    }

    /// The single value of a one-row, one-column result (aggregates).
    pub fn scalar(&self) -> Option<&Value> {
        match self {
            QuelOutput::Rows { rows, .. } if rows.len() == 1 && rows[0].len() == 1 => {
                Some(&rows[0][0])
            }
            _ => None,
        }
    }
}

/// An interpreted QUEL session: named relations, range bindings, and an
/// I/O meter shared with the rest of the engine.
///
/// ```
/// use atis_storage::quel::{QuelEngine, Value};
///
/// let mut quel = QuelEngine::new();
/// quel.run("CREATE nodes (id = int, cost = float) KEY id").unwrap();
/// quel.run("RANGE OF n IS nodes").unwrap();
/// quel.run("APPEND TO nodes (id = 7, cost = 2.5)").unwrap();
/// let out = quel.run("RETRIEVE (MIN(n.cost))").unwrap();
/// assert_eq!(out.scalar(), Some(&Value::Float(2.5)));
/// ```
#[derive(Debug, Default)]
pub struct QuelEngine {
    relations: HashMap<String, DynRelation>,
    ranges: HashMap<String, String>,
    /// The session's I/O meter; inspect or reset between statements to
    /// meter QUEL programs exactly like native runs.
    pub io: IoStats,
    index_levels: u64,
}

impl QuelEngine {
    /// A fresh session with the Table 4A ISAM depth.
    pub fn new() -> QuelEngine {
        QuelEngine {
            index_levels: 3,
            ..QuelEngine::default()
        }
    }

    /// Parses and executes one statement.
    ///
    /// # Errors
    /// Propagates lexing, parsing, typing and storage errors.
    pub fn run(&mut self, src: &str) -> Result<QuelOutput, QuelError> {
        let stmt = parse(src)?;
        self.execute(&stmt)
    }

    /// Runs a semicolon-free script: one statement per non-empty,
    /// non-comment (`--`) line. Returns the last statement's output.
    ///
    /// # Errors
    /// Stops at the first failing statement.
    pub fn run_script(&mut self, src: &str) -> Result<QuelOutput, QuelError> {
        let mut last = QuelOutput::None;
        for line in src.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with("--") {
                continue;
            }
            last = self.run(line)?;
        }
        Ok(last)
    }

    /// Direct access to a relation (tests and host programs).
    pub fn relation(&self, name: &str) -> Option<&DynRelation> {
        self.relations.get(name)
    }

    /// Executes a parsed statement.
    ///
    /// # Errors
    /// Propagates typing and storage errors.
    pub fn execute(&mut self, stmt: &Statement) -> Result<QuelOutput, QuelError> {
        match stmt {
            Statement::Explain(inner) => self.explain(inner),
            Statement::Create { name, columns, key } => {
                if self.relations.contains_key(name) {
                    return Err(QuelError::DuplicateRelation(name.clone()));
                }
                let schema = Schema::new(columns.clone())?;
                let rel =
                    DynRelation::create(schema, key.as_deref(), self.index_levels, &mut self.io)?;
                self.relations.insert(name.clone(), rel);
                Ok(QuelOutput::None)
            }
            Statement::Drop { name } => {
                let mut rel = self
                    .relations
                    .remove(name)
                    .ok_or_else(|| QuelError::UnknownRelation(name.clone()))?;
                rel.clear(&mut self.io);
                self.ranges.retain(|_, r| r != name);
                Ok(QuelOutput::None)
            }
            Statement::Range { var, relation } => {
                if !self.relations.contains_key(relation) {
                    return Err(QuelError::UnknownRelation(relation.clone()));
                }
                self.ranges.insert(var.clone(), relation.clone());
                Ok(QuelOutput::None)
            }
            Statement::Append {
                relation,
                assignments,
            } => self.exec_append(relation, assignments),
            Statement::Retrieve {
                targets,
                predicate,
                unique,
                sort,
            } => self.exec_retrieve(targets, predicate.as_ref(), *unique, sort.as_ref()),
            Statement::RetrieveInto {
                name,
                assignments,
                predicate,
            } => self.exec_retrieve_into(name, assignments, predicate.as_ref()),
            Statement::Replace {
                var,
                assignments,
                predicate,
            } => self.exec_replace(var, assignments, predicate.as_ref()),
            Statement::Delete { var, predicate } => self.exec_delete(var, predicate.as_ref()),
        }
    }

    /// Produces a textual access-path plan without executing or charging
    /// any I/O — the optimizer's decisions, made visible.
    fn explain(&self, stmt: &Statement) -> Result<QuelOutput, QuelError> {
        let mut lines: Vec<String> = Vec::new();
        match stmt {
            Statement::Explain(inner) => return self.explain(inner),
            Statement::Create { name, columns, key } => {
                lines.push(format!(
                    "CREATE {name}: {} column(s){}",
                    columns.len(),
                    match key {
                        Some(k) => format!(", keyed on '{k}' (index maintained per APPEND/DELETE)"),
                        None => ", heap only".to_string(),
                    }
                ));
            }
            Statement::Drop { name } => lines.push(format!("DROP {name}: charge D_t")),
            Statement::Range { var, relation } => {
                lines.push(format!(
                    "RANGE: bind '{var}' over '{relation}' (catalog only)"
                ));
            }
            Statement::Append { relation, .. } => {
                let keyed = self
                    .relations
                    .get(relation)
                    .ok_or_else(|| QuelError::UnknownRelation(relation.clone()))?
                    .is_keyed();
                lines.push(format!(
                    "APPEND {relation}: 1 block write{}",
                    if keyed {
                        " + I_l index adjustments"
                    } else {
                        ""
                    }
                ));
            }
            Statement::Retrieve { predicate, .. } | Statement::RetrieveInto { predicate, .. } => {
                // Which range variables participate.
                let mut vars: Vec<String> = Vec::new();
                let mut note = |v: &str| {
                    if !vars.iter().any(|x| x == v) {
                        vars.push(v.to_string());
                    }
                };
                match stmt {
                    Statement::Retrieve { targets, .. } => {
                        for t in targets {
                            match t {
                                Target::Column(c) => note(&c.range_var),
                                Target::All(v) => note(v),
                                Target::Min(e)
                                | Target::Max(e)
                                | Target::Sum(e)
                                | Target::Count(e) => collect_vars(e, &mut note),
                            }
                        }
                    }
                    Statement::RetrieveInto { assignments, .. } => {
                        for a in assignments {
                            collect_vars(&a.expr, &mut note);
                        }
                    }
                    _ => unreachable!(),
                }
                if let Some(p) = predicate {
                    collect_vars(p, &mut note);
                }
                if vars.is_empty() {
                    lines.push("RETRIEVE: constant projection, no relation access".into());
                }
                for (i, v) in vars.iter().enumerate() {
                    let rel_name = self.relation_of_var(v)?;
                    let rel = &self.relations[rel_name];
                    if i == 0 {
                        lines.push(format!(
                            "scan '{rel_name}' as {v}: {} block(s), {} live row(s)",
                            rel.block_count(),
                            rel.len()
                        ));
                    } else {
                        lines.push(format!(
                            "nested-loop join '{rel_name}' as {v}: rescan {} block(s) per outer block",
                            rel.block_count()
                        ));
                    }
                }
                if let Statement::RetrieveInto { name, .. } = stmt {
                    lines.push(format!("materialise into '{name}': 1 block write per row"));
                }
            }
            Statement::Replace { var, predicate, .. } | Statement::Delete { var, predicate } => {
                let rel_name = self.relation_of_var(var)?;
                let rel = &self.relations[rel_name];
                let op = if matches!(stmt, Statement::Replace { .. }) {
                    "REPLACE"
                } else {
                    "DELETE"
                };
                // Mirror the executor's keyed-point detection.
                let keyed_point = match (rel.key_column(), predicate) {
                    (
                        Some(kc),
                        Some(Expr::Binary {
                            op: BinOp::Eq,
                            lhs,
                            rhs,
                        }),
                    ) => {
                        let key_name = rel
                            .schema()
                            .column_names()
                            .nth(kc)
                            .expect("key column exists")
                            .to_string();
                        matches!(
                            (&**lhs, &**rhs),
                            (Expr::Column(c), Expr::Literal(_)) | (Expr::Literal(_), Expr::Column(c))
                                if c.range_var == *var && c.column == key_name
                        )
                    }
                    _ => false,
                };
                if keyed_point {
                    lines.push(format!(
                        "{op} '{rel_name}': keyed point access — I_l index reads + 1 tuple update"
                    ));
                } else {
                    lines.push(format!(
                        "{op} '{rel_name}': full scan of {} block(s), update qualifying rows",
                        rel.block_count()
                    ));
                }
            }
        }
        Ok(QuelOutput::Rows {
            columns: vec!["plan".to_string()],
            rows: lines.into_iter().map(|l| vec![Value::Str(l)]).collect(),
        })
    }

    fn relation_of_var(&self, var: &str) -> Result<&str, QuelError> {
        self.ranges
            .get(var)
            .map(String::as_str)
            .ok_or_else(|| QuelError::UnknownRange(var.to_string()))
    }

    fn exec_append(
        &mut self,
        relation: &str,
        assignments: &[Assignment],
    ) -> Result<QuelOutput, QuelError> {
        // Constant-fold the assignments first (no range variables in an
        // APPEND), then build the row in schema order.
        let env = Environment::empty();
        let mut values: HashMap<&str, Value> = HashMap::new();
        for a in assignments {
            values.insert(a.column.as_str(), eval(&a.expr, &env)?);
        }
        let rel = self
            .relations
            .get_mut(relation)
            .ok_or_else(|| QuelError::UnknownRelation(relation.to_string()))?;
        let mut row = Vec::with_capacity(rel.schema().arity());
        for name in rel
            .schema()
            .column_names()
            .map(str::to_owned)
            .collect::<Vec<_>>()
        {
            let v = values
                .remove(name.as_str())
                .ok_or_else(|| QuelError::Type(format!("missing value for column '{name}'")))?;
            row.push(v);
        }
        if let Some(extra) = values.keys().next() {
            return Err(QuelError::UnknownColumn(extra.to_string()));
        }
        rel.append(row, &mut self.io)?;
        Ok(QuelOutput::Affected(1))
    }

    fn exec_retrieve(
        &mut self,
        targets: &[Target],
        predicate: Option<&Expr>,
        unique: bool,
        sort: Option<&(Expr, bool)>,
    ) -> Result<QuelOutput, QuelError> {
        // Which range variables participate, in order of first mention.
        let mut vars: Vec<String> = Vec::new();
        let mut note = |v: &str| {
            if !vars.iter().any(|x| x == v) {
                vars.push(v.to_string());
            }
        };
        for t in targets {
            match t {
                Target::Column(c) => note(&c.range_var),
                Target::All(v) => note(v),
                Target::Min(e) | Target::Max(e) | Target::Sum(e) | Target::Count(e) => {
                    collect_vars(e, &mut note)
                }
            }
        }
        if let Some(p) = predicate {
            collect_vars(p, &mut note);
        }
        if let Some((key, _)) = sort {
            collect_vars(key, &mut note);
        }
        if vars.is_empty() {
            // Pure-constant retrieve (e.g. RETRIEVE (MIN(1+2))): evaluate
            // over a single empty binding.
            let env = Environment::empty();
            let mut row = Vec::new();
            let mut columns = Vec::new();
            for (i, t) in targets.iter().enumerate() {
                match t {
                    Target::Min(e) | Target::Max(e) | Target::Sum(e) => {
                        row.push(eval(e, &env)?);
                        columns.push(format!("agg{i}"));
                    }
                    Target::Count(_) => {
                        row.push(Value::Int(1));
                        columns.push("count".into());
                    }
                    _ => return Err(QuelError::Type("column target without range".into())),
                }
            }
            return Ok(QuelOutput::Rows {
                columns,
                rows: vec![row],
            });
        }

        // Materialise each participating relation with one charged scan,
        // then evaluate the (block-)nested-loop cross product, charging
        // the nested-loop formula for the joins beyond the first scan.
        let mut scans: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
        for v in &vars {
            let rel_name = self.relation_of_var(v)?.to_string();
            let rel = self
                .relations
                .get(&rel_name)
                .ok_or_else(|| QuelError::UnknownRelation(rel_name.clone()))?;
            let mut rows = Vec::with_capacity(rel.len());
            rel.scan(&mut self.io, |_, row| rows.push(row));
            scans.push((v.clone(), rows));
        }
        // Nested-loop re-scan charges: the inner relation is re-read once
        // per outer block (B1·B2, extended left-to-right for k-way).
        if vars.len() > 1 {
            let mut outer_blocks = 1u64;
            for (i, v) in vars.iter().enumerate() {
                let rel = &self.relations[self.relation_of_var(v)?];
                let b = rel.block_count().max(1) as u64;
                if i > 0 {
                    self.io
                        .read_blocks(outer_blocks.saturating_mul(b).saturating_sub(b));
                }
                outer_blocks = outer_blocks.saturating_mul(b);
            }
        }

        let aggregates = targets.iter().any(|t| {
            matches!(
                t,
                Target::Min(_) | Target::Max(_) | Target::Sum(_) | Target::Count(_)
            )
        });
        let plain = targets
            .iter()
            .any(|t| matches!(t, Target::Column(_) | Target::All(_)));
        if aggregates && plain {
            return Err(QuelError::Type(
                "cannot mix aggregate and plain targets".into(),
            ));
        }

        let mut columns = Vec::new();
        for (i, t) in targets.iter().enumerate() {
            match t {
                Target::Column(c) => columns.push(format!("{}.{}", c.range_var, c.column)),
                Target::All(v) => {
                    let rel = &self.relations[self.relation_of_var(v)?];
                    for name in rel.schema().column_names() {
                        columns.push(format!("{v}.{name}"));
                    }
                }
                Target::Min(_) => columns.push(format!("min{i}")),
                Target::Max(_) => columns.push(format!("max{i}")),
                Target::Sum(_) => columns.push(format!("sum{i}")),
                Target::Count(_) => columns.push("count".into()),
            }
        }

        let mut out_rows: Vec<Vec<Value>> = Vec::new();
        let mut sort_keys: Vec<Value> = Vec::new();
        let mut agg_state: Vec<Option<Value>> = vec![None; targets.len()];
        let mut count = 0u64;
        let schemas: Vec<&DynRelation> = vars
            .iter()
            .map(|v| Ok(&self.relations[self.relation_of_var(v)?]))
            .collect::<Result<_, QuelError>>()?;

        // Cross-product iteration (indices into each scan).
        let sizes: Vec<usize> = scans.iter().map(|(_, rows)| rows.len()).collect();
        if sizes.iter().all(|&s| s > 0) {
            let mut idx = vec![0usize; scans.len()];
            'outer: loop {
                let env = Environment {
                    bindings: vars
                        .iter()
                        .zip(&scans)
                        .zip(&idx)
                        .zip(schemas.iter())
                        .map(|(((v, (_, rows)), &i), rel)| (v.as_str(), &rows[i], rel.schema()))
                        .collect(),
                };
                let keep = match predicate {
                    None => true,
                    Some(p) => truthy(&eval(p, &env)?)?,
                };
                if keep {
                    count += 1;
                    if aggregates {
                        for (i, t) in targets.iter().enumerate() {
                            match t {
                                Target::Min(e) => {
                                    let v = eval(e, &env)?;
                                    agg_state[i] = Some(match agg_state[i].take() {
                                        None => v,
                                        Some(cur) => {
                                            if v.compare(&cur)? == std::cmp::Ordering::Less {
                                                v
                                            } else {
                                                cur
                                            }
                                        }
                                    });
                                }
                                Target::Max(e) => {
                                    let v = eval(e, &env)?;
                                    agg_state[i] = Some(match agg_state[i].take() {
                                        None => v,
                                        Some(cur) => {
                                            if v.compare(&cur)? == std::cmp::Ordering::Greater {
                                                v
                                            } else {
                                                cur
                                            }
                                        }
                                    });
                                }
                                Target::Sum(e) => {
                                    let v = eval(e, &env)?.as_f64()?;
                                    let cur = match &agg_state[i] {
                                        None => 0.0,
                                        Some(c) => c.as_f64()?,
                                    };
                                    agg_state[i] = Some(Value::Float(cur + v));
                                }
                                Target::Count(_) => {}
                                _ => unreachable!("mixed targets rejected above"),
                            }
                        }
                    } else {
                        let mut row = Vec::new();
                        for t in targets {
                            match t {
                                Target::Column(c) => row.push(env.column(c)?),
                                Target::All(v) => {
                                    let (_, bound, _) = env
                                        .bindings
                                        .iter()
                                        .find(|(name, _, _)| name == v)
                                        .ok_or_else(|| QuelError::UnknownRange(v.clone()))?;
                                    row.extend(bound.iter().cloned());
                                }
                                _ => unreachable!(),
                            }
                        }
                        if let Some((key, _)) = sort {
                            sort_keys.push(eval(key, &env)?);
                        }
                        out_rows.push(row);
                    }
                }
                // Advance the cross-product counter.
                for i in (0..idx.len()).rev() {
                    idx[i] += 1;
                    if idx[i] < sizes[i] {
                        continue 'outer;
                    }
                    idx[i] = 0;
                }
                break;
            }
        }

        if aggregates {
            let mut row = Vec::new();
            for (i, t) in targets.iter().enumerate() {
                match t {
                    Target::Count(_) => row.push(Value::Int(count as i64)),
                    Target::Sum(_) => row.push(agg_state[i].clone().unwrap_or(Value::Float(0.0))),
                    _ => match agg_state[i].clone() {
                        Some(v) => row.push(v),
                        None => {
                            return Ok(QuelOutput::Rows {
                                columns,
                                rows: vec![],
                            })
                        }
                    },
                }
            }
            Ok(QuelOutput::Rows {
                columns,
                rows: vec![row],
            })
        } else {
            let mut rows = out_rows;
            if let Some((_, desc)) = sort {
                let mut paired: Vec<(Value, Vec<Value>)> =
                    sort_keys.into_iter().zip(rows).collect();
                // Stable sort; comparison errors (mixed types) surface.
                let mut sort_err = None;
                paired.sort_by(|a, b| match a.0.compare(&b.0) {
                    Ok(o) => {
                        if *desc {
                            o.reverse()
                        } else {
                            o
                        }
                    }
                    Err(e) => {
                        sort_err.get_or_insert(e);
                        std::cmp::Ordering::Equal
                    }
                });
                if let Some(e) = sort_err {
                    return Err(e);
                }
                rows = paired.into_iter().map(|(_, r)| r).collect();
            }
            if unique {
                let mut seen: Vec<Vec<Value>> = Vec::new();
                rows.retain(|r| {
                    if seen.iter().any(|s| s == r) {
                        false
                    } else {
                        seen.push(r.clone());
                        true
                    }
                });
            }
            Ok(QuelOutput::Rows { columns, rows })
        }
    }

    /// `RETRIEVE INTO`: evaluate the projection over the (cross product
    /// of the) bound relations and materialise the qualifying rows as a
    /// new relation. Column types are inferred statically from the
    /// expressions.
    fn exec_retrieve_into(
        &mut self,
        name: &str,
        assignments: &[Assignment],
        predicate: Option<&Expr>,
    ) -> Result<QuelOutput, QuelError> {
        if self.relations.contains_key(name) {
            return Err(QuelError::DuplicateRelation(name.to_string()));
        }
        // Participating range variables, in order of first mention.
        let mut vars: Vec<String> = Vec::new();
        let mut note = |v: &str| {
            if !vars.iter().any(|x| x == v) {
                vars.push(v.to_string());
            }
        };
        for a in assignments {
            collect_vars(&a.expr, &mut note);
        }
        if let Some(p) = predicate {
            collect_vars(p, &mut note);
        }

        // Infer the schema.
        let schemas: Vec<(&str, &Schema)> = vars
            .iter()
            .map(|v| {
                let rel = self.relation_of_var(v)?;
                Ok((v.as_str(), self.relations[rel].schema()))
            })
            .collect::<Result<_, QuelError>>()?;
        let columns: Vec<(String, super::value::ValueType)> = assignments
            .iter()
            .map(|a| Ok((a.column.clone(), infer_type(&a.expr, &schemas)?)))
            .collect::<Result<_, QuelError>>()?;
        let schema = Schema::new(columns)?;

        // Materialise each participating relation with one charged scan.
        let mut scans: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
        for v in &vars {
            let rel_name = self.relation_of_var(v)?.to_string();
            let rel = &self.relations[&rel_name];
            let mut rows = Vec::with_capacity(rel.len());
            rel.scan(&mut self.io, |_, row| rows.push(row));
            scans.push((v.clone(), rows));
        }
        let rel_schemas: Vec<Schema> = vars
            .iter()
            .map(|v| {
                let rel = self.relation_of_var(v)?;
                Ok(self.relations[rel].schema().clone())
            })
            .collect::<Result<_, QuelError>>()?;

        let mut out = DynRelation::create(schema, None, self.index_levels, &mut self.io)?;
        let mut appended = 0usize;
        let sizes: Vec<usize> = scans.iter().map(|(_, rows)| rows.len()).collect();
        if (vars.is_empty() || sizes.iter().all(|&s| s > 0)) && !vars.is_empty() {
            let mut idx = vec![0usize; scans.len()];
            'outer: loop {
                let env = Environment {
                    bindings: vars
                        .iter()
                        .zip(&scans)
                        .zip(&idx)
                        .zip(rel_schemas.iter())
                        .map(|(((v, (_, rows)), &i), schema)| (v.as_str(), &rows[i], schema))
                        .collect(),
                };
                let keep = match predicate {
                    None => true,
                    Some(p) => truthy(&eval(p, &env)?)?,
                };
                if keep {
                    let row: Vec<Value> = assignments
                        .iter()
                        .map(|a| eval(&a.expr, &env))
                        .collect::<Result<_, QuelError>>()?;
                    out.append(row, &mut self.io)?;
                    appended += 1;
                }
                for i in (0..idx.len()).rev() {
                    idx[i] += 1;
                    if idx[i] < sizes[i] {
                        continue 'outer;
                    }
                    idx[i] = 0;
                }
                break;
            }
        } else if vars.is_empty() {
            // Constant projection: one row (subject to a constant WHERE).
            let env = Environment::empty();
            let keep = match predicate {
                None => true,
                Some(p) => truthy(&eval(p, &env)?)?,
            };
            if keep {
                let row: Vec<Value> = assignments
                    .iter()
                    .map(|a| eval(&a.expr, &env))
                    .collect::<Result<_, QuelError>>()?;
                out.append(row, &mut self.io)?;
                appended += 1;
            }
        }
        self.relations.insert(name.to_string(), out);
        Ok(QuelOutput::Affected(appended))
    }

    fn exec_replace(
        &mut self,
        var: &str,
        assignments: &[Assignment],
        predicate: Option<&Expr>,
    ) -> Result<QuelOutput, QuelError> {
        let rel_name = self.relation_of_var(var)?.to_string();
        let rel = self
            .relations
            .get(&rel_name)
            .ok_or_else(|| QuelError::UnknownRelation(rel_name.clone()))?;
        let schema = rel.schema().clone();

        // Fast path: keyed point update (`var.keycol = literal`).
        if let Some((slot, old_row)) = self.keyed_lookup(&rel_name, var, predicate)? {
            let new_row = apply_assignments(&schema, var, &old_row, assignments)?;
            let rel = self.relations.get_mut(&rel_name).expect("checked");
            rel.update_slot(slot, new_row, &mut self.io)?;
            return Ok(QuelOutput::Affected(1));
        }

        // General path: scan, qualify, update each matching slot.
        let rel = self.relations.get(&rel_name).expect("checked");
        let mut matches: Vec<(usize, Vec<Value>)> = Vec::new();
        let mut scan_err = None;
        rel.scan(&mut self.io, |slot, row| {
            if scan_err.is_some() {
                return;
            }
            let env = Environment::single(var, &row, &schema);
            match predicate.map(|p| eval(p, &env)).transpose() {
                Ok(v) => {
                    let keep = v.map(|v| truthy(&v)).transpose().unwrap_or(Some(true));
                    match keep {
                        Some(true) => matches.push((slot, row)),
                        Some(false) => {}
                        None => scan_err = Some(QuelError::Type("non-boolean predicate".into())),
                    }
                }
                Err(e) => scan_err = Some(e),
            }
        });
        if let Some(e) = scan_err {
            return Err(e);
        }
        let n = matches.len();
        for (slot, old_row) in matches {
            let new_row = apply_assignments(&schema, var, &old_row, assignments)?;
            let rel = self.relations.get_mut(&rel_name).expect("checked");
            rel.update_slot(slot, new_row, &mut self.io)?;
        }
        Ok(QuelOutput::Affected(n))
    }

    fn exec_delete(
        &mut self,
        var: &str,
        predicate: Option<&Expr>,
    ) -> Result<QuelOutput, QuelError> {
        let rel_name = self.relation_of_var(var)?.to_string();
        if let Some((slot, _)) = self.keyed_lookup(&rel_name, var, predicate)? {
            let rel = self.relations.get_mut(&rel_name).expect("checked");
            rel.delete_slot(slot, &mut self.io)?;
            return Ok(QuelOutput::Affected(1));
        }
        let rel = self
            .relations
            .get(&rel_name)
            .ok_or_else(|| QuelError::UnknownRelation(rel_name.clone()))?;
        let schema = rel.schema().clone();
        let mut slots = Vec::new();
        let mut scan_err = None;
        rel.scan(&mut self.io, |slot, row| {
            if scan_err.is_some() {
                return;
            }
            let env = Environment::single(var, &row, &schema);
            match predicate.map(|p| eval(p, &env)).transpose() {
                Ok(None) => slots.push(slot),
                Ok(Some(v)) => match truthy(&v) {
                    Ok(true) => slots.push(slot),
                    Ok(false) => {}
                    Err(e) => scan_err = Some(e),
                },
                Err(e) => scan_err = Some(e),
            }
        });
        if let Some(e) = scan_err {
            return Err(e);
        }
        let n = slots.len();
        let rel = self.relations.get_mut(&rel_name).expect("checked");
        for slot in slots {
            rel.delete_slot(slot, &mut self.io)?;
        }
        Ok(QuelOutput::Affected(n))
    }

    /// Detects the keyed point pattern `var.keycol = literal` (either
    /// side) and probes the index. Returns the slot and row on a hit;
    /// `None` means "use the scan path".
    fn keyed_lookup(
        &mut self,
        rel_name: &str,
        var: &str,
        predicate: Option<&Expr>,
    ) -> Result<Option<(usize, Vec<Value>)>, QuelError> {
        let Some(Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        }) = predicate
        else {
            return Ok(None);
        };
        let rel = self.relations.get(rel_name).expect("caller checked");
        let Some(key_col) = rel.key_column() else {
            return Ok(None);
        };
        let key_name = rel
            .schema()
            .column_names()
            .nth(key_col)
            .expect("key exists")
            .to_string();
        let (col, lit) = match (&**lhs, &**rhs) {
            (Expr::Column(c), Expr::Literal(v)) => (c, v),
            (Expr::Literal(v), Expr::Column(c)) => (c, v),
            _ => return Ok(None),
        };
        if col.range_var != var || col.column != key_name {
            return Ok(None);
        }
        let rel = self.relations.get(rel_name).expect("caller checked");
        rel.probe(lit, &mut self.io)
    }
}

/// Evaluation environment: `(range_var, row, schema)` bindings.
struct Environment<'a> {
    bindings: Vec<(&'a str, &'a Vec<Value>, &'a Schema)>,
}

impl<'a> Environment<'a> {
    fn empty() -> Environment<'static> {
        Environment {
            bindings: Vec::new(),
        }
    }

    fn single(var: &'a str, row: &'a Vec<Value>, schema: &'a Schema) -> Environment<'a> {
        Environment {
            bindings: vec![(var, row, schema)],
        }
    }

    fn column(&self, c: &ColumnRef) -> Result<Value, QuelError> {
        let (_, row, schema) = self
            .bindings
            .iter()
            .find(|(v, _, _)| *v == c.range_var)
            .ok_or_else(|| QuelError::UnknownRange(c.range_var.clone()))?;
        let (idx, _) = schema.column(&c.column)?;
        Ok(row[idx].clone())
    }
}

fn collect_vars(e: &Expr, note: &mut impl FnMut(&str)) {
    match e {
        Expr::Literal(_) => {}
        Expr::Column(c) => note(&c.range_var),
        Expr::Binary { lhs, rhs, .. } => {
            collect_vars(lhs, note);
            collect_vars(rhs, note);
        }
        Expr::Not(inner) | Expr::Neg(inner) | Expr::Abs(inner) => collect_vars(inner, note),
    }
}

/// Static type inference for `RETRIEVE INTO` schemas, consistent with
/// `eval`'s dynamic behaviour.
fn infer_type(e: &Expr, schemas: &[(&str, &Schema)]) -> Result<super::value::ValueType, QuelError> {
    use super::value::ValueType;
    Ok(match e {
        Expr::Literal(v) => v.value_type(),
        Expr::Column(c) => {
            let (_, schema) = schemas
                .iter()
                .find(|(v, _)| *v == c.range_var)
                .ok_or_else(|| QuelError::UnknownRange(c.range_var.clone()))?;
            schema.column(&c.column)?.1
        }
        Expr::Neg(_) | Expr::Abs(_) => ValueType::Float,
        Expr::Not(_) => ValueType::Int,
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let (l, r) = (infer_type(lhs, schemas)?, infer_type(rhs, schemas)?);
                if l == ValueType::Int && r == ValueType::Int {
                    ValueType::Int
                } else {
                    ValueType::Float
                }
            }
            _ => ValueType::Int, // comparisons and logic are 0/1
        },
    })
}

fn truthy(v: &Value) -> Result<bool, QuelError> {
    match v {
        Value::Int(i) => Ok(*i != 0),
        other => Err(QuelError::Type(format!(
            "predicate evaluated to non-boolean {other}"
        ))),
    }
}

fn bool_val(b: bool) -> Value {
    Value::Int(b as i64)
}

fn eval(e: &Expr, env: &Environment<'_>) -> Result<Value, QuelError> {
    match e {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(c) => env.column(c),
        Expr::Neg(inner) => Ok(Value::Float(-eval(inner, env)?.as_f64()?)),
        Expr::Abs(inner) => Ok(Value::Float(eval(inner, env)?.as_f64()?.abs())),
        Expr::Not(inner) => Ok(bool_val(!truthy(&eval(inner, env)?)?)),
        Expr::Binary { op, lhs, rhs } => {
            use std::cmp::Ordering::*;
            match op {
                BinOp::And => Ok(bool_val(
                    truthy(&eval(lhs, env)?)? && truthy(&eval(rhs, env)?)?,
                )),
                BinOp::Or => Ok(bool_val(
                    truthy(&eval(lhs, env)?)? || truthy(&eval(rhs, env)?)?,
                )),
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let l = eval(lhs, env)?;
                    let r = eval(rhs, env)?;
                    let ord = l.compare(&r)?;
                    Ok(bool_val(match op {
                        BinOp::Eq => ord == Equal,
                        BinOp::Ne => ord != Equal,
                        BinOp::Lt => ord == Less,
                        BinOp::Le => ord != Greater,
                        BinOp::Gt => ord == Greater,
                        BinOp::Ge => ord != Less,
                        _ => unreachable!(),
                    }))
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                    let l = eval(lhs, env)?;
                    let r = eval(rhs, env)?;
                    // Integer arithmetic stays integral; floats contaminate.
                    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
                        return Ok(match op {
                            BinOp::Add => Value::Int(a + b),
                            BinOp::Sub => Value::Int(a - b),
                            BinOp::Mul => Value::Int(a * b),
                            BinOp::Div => {
                                if *b == 0 {
                                    return Err(QuelError::Type("division by zero".into()));
                                }
                                Value::Int(a / b)
                            }
                            _ => unreachable!(),
                        });
                    }
                    let (a, b) = (l.as_f64()?, r.as_f64()?);
                    Ok(Value::Float(match op {
                        BinOp::Add => a + b,
                        BinOp::Sub => a - b,
                        BinOp::Mul => a * b,
                        BinOp::Div => {
                            if b == 0.0 {
                                return Err(QuelError::Type("division by zero".into()));
                            }
                            a / b
                        }
                        _ => unreachable!(),
                    }))
                }
            }
        }
    }
}

fn apply_assignments(
    schema: &Schema,
    var: &str,
    old_row: &Vec<Value>,
    assignments: &[Assignment],
) -> Result<Vec<Value>, QuelError> {
    let env = Environment::single(var, old_row, schema);
    let mut new_row = old_row.clone();
    for a in assignments {
        let (idx, _) = schema.column(&a.column)?;
        new_row[idx] = eval(&a.expr, &env)?;
    }
    Ok(new_row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with_nodes() -> QuelEngine {
        let mut e = QuelEngine::new();
        e.run("CREATE nodes (id = int, cost = float, status = string) KEY id")
            .unwrap();
        e.run("RANGE OF n IS nodes").unwrap();
        for (id, cost, status) in [(0, 0.0, "open"), (1, 2.5, "open"), (2, 1.5, "closed")] {
            e.run(&format!(
                "APPEND TO nodes (id = {id}, cost = {cost:?}, status = \"{status}\")"
            ))
            .unwrap();
        }
        e
    }

    #[test]
    fn create_append_retrieve() {
        let mut e = engine_with_nodes();
        let out = e
            .run("RETRIEVE (n.id, n.cost) WHERE n.status = \"open\"")
            .unwrap();
        assert_eq!(out.rows().len(), 2);
        assert_eq!(out.rows()[1], vec![Value::Int(1), Value::Float(2.5)]);
    }

    #[test]
    fn retrieve_all_expands_columns() {
        let mut e = engine_with_nodes();
        let out = e.run("RETRIEVE (n.all) WHERE n.id = 2").unwrap();
        let QuelOutput::Rows { columns, rows } = out else {
            panic!()
        };
        assert_eq!(columns, vec!["n.id", "n.cost", "n.status"]);
        assert_eq!(rows[0][2], Value::Str("closed".into()));
    }

    #[test]
    fn aggregates() {
        let mut e = engine_with_nodes();
        let min = e
            .run("RETRIEVE (MIN(n.cost)) WHERE n.status = \"open\"")
            .unwrap();
        assert_eq!(min.scalar(), Some(&Value::Float(0.0)));
        let count = e.run("RETRIEVE (COUNT(n.id))").unwrap();
        assert_eq!(count.scalar(), Some(&Value::Int(3)));
        let sum = e.run("RETRIEVE (SUM(n.cost))").unwrap();
        assert_eq!(sum.scalar(), Some(&Value::Float(4.0)));
        let max = e.run("RETRIEVE (MAX(n.cost))").unwrap();
        assert_eq!(max.scalar(), Some(&Value::Float(2.5)));
    }

    #[test]
    fn empty_min_returns_no_rows() {
        let mut e = engine_with_nodes();
        let out = e.run("RETRIEVE (MIN(n.cost)) WHERE n.cost > 100").unwrap();
        assert!(out.rows().is_empty());
    }

    #[test]
    fn replace_by_key_uses_probe() {
        let mut e = engine_with_nodes();
        let before = e.io;
        let out = e
            .run("REPLACE n (status = \"closed\") WHERE n.id = 1")
            .unwrap();
        assert_eq!(out, QuelOutput::Affected(1));
        let d = e.io.since(&before);
        // Probe (3 index + 1 data reads) + 1 update — no full scan.
        assert_eq!(d.block_reads, 4);
        assert_eq!(d.tuple_updates, 1);
        let check = e.run("RETRIEVE (n.status) WHERE n.id = 1").unwrap();
        assert_eq!(check.rows()[0][0], Value::Str("closed".into()));
    }

    #[test]
    fn replace_with_general_predicate_scans() {
        let mut e = engine_with_nodes();
        let out = e
            .run("REPLACE n (cost = n.cost + 1.0) WHERE n.status = \"open\"")
            .unwrap();
        assert_eq!(out, QuelOutput::Affected(2));
        let check = e
            .run("RETRIEVE (MIN(n.cost)) WHERE n.status = \"open\"")
            .unwrap();
        assert_eq!(check.scalar(), Some(&Value::Float(1.0)));
    }

    #[test]
    fn delete_by_key_and_by_predicate() {
        let mut e = engine_with_nodes();
        assert_eq!(
            e.run("DELETE n WHERE n.id = 0").unwrap(),
            QuelOutput::Affected(1)
        );
        assert_eq!(
            e.run("DELETE n WHERE n.status = \"open\"").unwrap(),
            QuelOutput::Affected(1)
        );
        let left = e.run("RETRIEVE (COUNT(n.id))").unwrap();
        assert_eq!(left.scalar(), Some(&Value::Int(1)));
    }

    #[test]
    fn two_variable_join() {
        let mut e = QuelEngine::new();
        e.run("CREATE edges (src = int, dst = int, w = float)")
            .unwrap();
        e.run("CREATE current (id = int) KEY id").unwrap();
        e.run("RANGE OF ed IS edges").unwrap();
        e.run("RANGE OF c IS current").unwrap();
        e.run("APPEND TO edges (src = 0, dst = 1, w = 1.0)")
            .unwrap();
        e.run("APPEND TO edges (src = 1, dst = 2, w = 2.0)")
            .unwrap();
        e.run("APPEND TO edges (src = 2, dst = 0, w = 3.0)")
            .unwrap();
        e.run("APPEND TO current (id = 1)").unwrap();
        let out = e
            .run("RETRIEVE (ed.dst, ed.w) WHERE ed.src = c.id")
            .unwrap();
        assert_eq!(out.rows(), &[vec![Value::Int(2), Value::Float(2.0)]]);
    }

    #[test]
    fn run_script_executes_lines() {
        let mut e = QuelEngine::new();
        let out = e
            .run_script(
                "-- a tiny session\n\
                 CREATE t (a = int)\n\
                 RANGE OF x IS t\n\
                 APPEND TO t (a = 5)\n\
                 \n\
                 RETRIEVE (x.a)",
            )
            .unwrap();
        assert_eq!(out.rows(), &[vec![Value::Int(5)]]);
    }

    #[test]
    fn drop_unbinds_ranges() {
        let mut e = engine_with_nodes();
        e.run("DROP nodes").unwrap();
        assert!(matches!(
            e.run("RETRIEVE (n.id)"),
            Err(QuelError::UnknownRange(_))
        ));
        assert!(e.relation("nodes").is_none());
    }

    #[test]
    fn errors_are_reported() {
        let mut e = engine_with_nodes();
        assert!(matches!(
            e.run("RETRIEVE (z.id)"),
            Err(QuelError::UnknownRange(_))
        ));
        assert!(matches!(
            e.run("RETRIEVE (n.bogus)"),
            Err(QuelError::UnknownColumn(_))
        ));
        assert!(matches!(
            e.run("APPEND TO nodes (id = 0, cost = 0.0, status = \"open\")"),
            Err(QuelError::DuplicateKey(_))
        ));
        assert!(matches!(
            e.run("RETRIEVE (n.id, MIN(n.cost))"),
            Err(QuelError::Type(_))
        ));
        assert!(matches!(
            e.run("CREATE nodes (x = int)"),
            Err(QuelError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn explain_shows_access_paths_without_executing() {
        let mut e = engine_with_nodes();
        let before = e.io;
        // Keyed point REPLACE -> index path.
        let plan = e
            .run("EXPLAIN REPLACE n (status = \"x\") WHERE n.id = 1")
            .unwrap();
        let text = format!("{:?}", plan.rows());
        assert!(text.contains("keyed point access"), "{text}");
        // Predicate REPLACE -> scan path.
        let plan = e
            .run("EXPLAIN REPLACE n (cost = 0.0) WHERE n.cost > 1")
            .unwrap();
        assert!(format!("{:?}", plan.rows()).contains("full scan"));
        // Join retrieve -> nested loop line.
        e.run("CREATE other (id = int)").unwrap();
        e.run("RANGE OF o IS other").unwrap();
        let plan = e.run("EXPLAIN RETRIEVE (n.id) WHERE n.id = o.id").unwrap();
        let text = format!("{:?}", plan.rows());
        assert!(text.contains("nested-loop join"), "{text}");
        // Nothing was charged or mutated.
        assert_eq!(e.io.since(&before).block_reads, 0);
        assert_eq!(e.io.since(&before).tuple_updates, 0);
        let check = e.run("RETRIEVE (n.status) WHERE n.id = 1").unwrap();
        assert_eq!(check.rows()[0][0], Value::Str("open".into()));
    }

    #[test]
    fn explain_retrieve_into_and_append() {
        let mut e = engine_with_nodes();
        let plan = e.run("EXPLAIN RETRIEVE INTO w (id = n.id)").unwrap();
        assert!(format!("{:?}", plan.rows()).contains("materialise into 'w'"));
        assert!(
            e.relation("w").is_none(),
            "EXPLAIN must not create the relation"
        );
        let plan = e
            .run("EXPLAIN APPEND TO nodes (id = 9, cost = 0.0, status = \"x\")")
            .unwrap();
        assert!(format!("{:?}", plan.rows()).contains("index adjustments"));
        let count = e.run("RETRIEVE (COUNT(n.id))").unwrap();
        assert_eq!(
            count.scalar(),
            Some(&Value::Int(3)),
            "EXPLAIN must not append"
        );
    }

    #[test]
    fn retrieve_into_materialises_a_projection() {
        let mut e = engine_with_nodes();
        let out = e
            .run("RETRIEVE INTO cheap (id = n.id, double = n.cost * 2) WHERE n.cost < 2.0")
            .unwrap();
        assert_eq!(out, QuelOutput::Affected(2));
        e.run("RANGE OF c IS cheap").unwrap();
        let rows = e.run("RETRIEVE (c.id, c.double) SORT BY c.id").unwrap();
        assert_eq!(
            rows.rows(),
            &[
                vec![Value::Int(0), Value::Float(0.0)],
                vec![Value::Int(2), Value::Float(3.0)]
            ]
        );
    }

    #[test]
    fn retrieve_into_joins_two_relations() {
        let mut e = QuelEngine::new();
        e.run("CREATE edges (src = int, dst = int, w = float)")
            .unwrap();
        e.run("CREATE cur (id = int) KEY id").unwrap();
        e.run("RANGE OF ed IS edges").unwrap();
        e.run("RANGE OF c IS cur").unwrap();
        e.run("APPEND TO edges (src = 0, dst = 1, w = 1.0)")
            .unwrap();
        e.run("APPEND TO edges (src = 1, dst = 2, w = 2.0)")
            .unwrap();
        e.run("APPEND TO cur (id = 1)").unwrap();
        let out = e
            .run("RETRIEVE INTO hop (node = ed.dst, cost = ed.w) WHERE ed.src = c.id")
            .unwrap();
        assert_eq!(out, QuelOutput::Affected(1));
        e.run("RANGE OF h IS hop").unwrap();
        let rows = e.run("RETRIEVE (h.node, h.cost)").unwrap();
        assert_eq!(rows.rows(), &[vec![Value::Int(2), Value::Float(2.0)]]);
    }

    #[test]
    fn retrieve_into_rejects_existing_relation() {
        let mut e = engine_with_nodes();
        assert!(matches!(
            e.run("RETRIEVE INTO nodes (id = n.id)"),
            Err(QuelError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn retrieve_into_with_constant_projection() {
        let mut e = QuelEngine::new();
        let out = e.run("RETRIEVE INTO one (v = 1 + 2)").unwrap();
        assert_eq!(out, QuelOutput::Affected(1));
        e.run("RANGE OF o IS one").unwrap();
        assert_eq!(
            e.run("RETRIEVE (o.v)").unwrap().rows(),
            &[vec![Value::Int(3)]]
        );
    }

    #[test]
    fn retrieve_into_type_inference() {
        let mut e = engine_with_nodes();
        e.run("RETRIEVE INTO typed (i = n.id + 1, f = n.cost + 1, s = n.status)")
            .unwrap();
        e.run("RANGE OF t2 IS typed").unwrap();
        let rows = e.run("RETRIEVE (t2.i, t2.f, t2.s) WHERE t2.i = 1").unwrap();
        assert_eq!(
            rows.rows(),
            &[vec![
                Value::Int(1),
                Value::Float(1.0),
                Value::Str("open".into())
            ]]
        );
    }

    #[test]
    fn sort_by_orders_results() {
        let mut e = engine_with_nodes();
        let out = e.run("RETRIEVE (n.id) SORT BY n.cost DESC").unwrap();
        let ids: Vec<_> = out.rows().iter().map(|r| r[0].clone()).collect();
        assert_eq!(ids, vec![Value::Int(1), Value::Int(2), Value::Int(0)]);
        let out = e.run("RETRIEVE (n.id) SORT BY n.cost").unwrap();
        let ids: Vec<_> = out.rows().iter().map(|r| r[0].clone()).collect();
        assert_eq!(ids, vec![Value::Int(0), Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn unique_deduplicates_rows() {
        let mut e = engine_with_nodes();
        let dup = e.run("RETRIEVE (n.status)").unwrap();
        assert_eq!(dup.rows().len(), 3);
        let uniq = e.run("RETRIEVE UNIQUE (n.status)").unwrap();
        assert_eq!(uniq.rows().len(), 2); // open, closed
    }

    #[test]
    fn unique_sorted_retrieve_combines() {
        let mut e = engine_with_nodes();
        let out = e
            .run("RETRIEVE UNIQUE (n.status) SORT BY n.status")
            .unwrap();
        let vals: Vec<_> = out.rows().iter().map(|r| r[0].clone()).collect();
        assert_eq!(
            vals,
            vec![Value::Str("closed".into()), Value::Str("open".into())]
        );
    }

    #[test]
    fn sort_by_expression() {
        let mut e = engine_with_nodes();
        // Sort by distance from cost 2.0: ids 1 and 2 tie at 0.5 (stable
        // sort keeps scan order), id 0 is 2.0 away.
        let out = e.run("RETRIEVE (n.id) SORT BY ABS(n.cost - 2.0)").unwrap();
        let ids: Vec<_> = out.rows().iter().map(|r| r[0].clone()).collect();
        assert_eq!(ids, vec![Value::Int(1), Value::Int(2), Value::Int(0)]);
    }

    #[test]
    fn arithmetic_in_predicates() {
        let mut e = engine_with_nodes();
        let out = e
            .run("RETRIEVE (n.id) WHERE n.cost * 2 >= 3.0 AND NOT (n.id = 1)")
            .unwrap();
        assert_eq!(out.rows(), &[vec![Value::Int(2)]]);
        let div = e.run("RETRIEVE (n.id) WHERE n.cost / 0.0 > 1");
        assert!(matches!(div, Err(QuelError::Type(_))));
    }

    #[test]
    fn abs_and_negation() {
        let mut e = engine_with_nodes();
        let out = e.run("RETRIEVE (MIN(ABS(0 - n.cost)))").unwrap();
        assert_eq!(out.scalar(), Some(&Value::Float(0.0)));
    }
}
