//! Pretty-printing QUEL ASTs back to source — `parse(print(ast)) == ast`.
//!
//! Used by tooling (EXPLAIN output, error messages, tests) and verified by
//! a round-trip property test over generated statements.

use super::ast::{Assignment, BinOp, Expr, Statement, Target};
use super::value::Value;
use std::fmt;

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Expr {
    /// Fully parenthesised rendering: unambiguous under any precedence,
    /// which is what makes the round-trip exact.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(Value::Float(v)) => {
                // Keep a decimal point so the literal lexes as a float.
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column(c) => write!(f, "{}.{}", c.range_var, c.column),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Abs(e) => write!(f, "ABS({e})"),
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Column(c) => write!(f, "{}.{}", c.range_var, c.column),
            Target::All(v) => write!(f, "{v}.ALL"),
            Target::Min(e) => write!(f, "MIN({e})"),
            Target::Max(e) => write!(f, "MAX({e})"),
            Target::Sum(e) => write!(f, "SUM({e})"),
            Target::Count(e) => write!(f, "COUNT({e})"),
        }
    }
}

fn write_assignments(f: &mut fmt::Formatter<'_>, a: &[Assignment]) -> fmt::Result {
    write!(f, "(")?;
    for (i, x) in a.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{} = {}", x.column, x.expr)?;
    }
    write!(f, ")")
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Explain(inner) => write!(f, "EXPLAIN {inner}"),
            Statement::Create { name, columns, key } => {
                write!(f, "CREATE {name} (")?;
                for (i, (col, ty)) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{col} = {}", ty.keyword())?;
                }
                write!(f, ")")?;
                if let Some(k) = key {
                    write!(f, " KEY {k}")?;
                }
                Ok(())
            }
            Statement::Drop { name } => write!(f, "DROP {name}"),
            Statement::Range { var, relation } => write!(f, "RANGE OF {var} IS {relation}"),
            Statement::Append {
                relation,
                assignments,
            } => {
                write!(f, "APPEND TO {relation} ")?;
                write_assignments(f, assignments)
            }
            Statement::Retrieve {
                targets,
                predicate,
                unique,
                sort,
            } => {
                write!(f, "RETRIEVE ")?;
                if *unique {
                    write!(f, "UNIQUE ")?;
                }
                write!(f, "(")?;
                for (i, t) in targets.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")?;
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                if let Some((key, desc)) = sort {
                    write!(f, " SORT BY {key}")?;
                    if *desc {
                        write!(f, " DESC")?;
                    }
                }
                Ok(())
            }
            Statement::RetrieveInto {
                name,
                assignments,
                predicate,
            } => {
                write!(f, "RETRIEVE INTO {name} ")?;
                write_assignments(f, assignments)?;
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::Replace {
                var,
                assignments,
                predicate,
            } => {
                write!(f, "REPLACE {var} ")?;
                write_assignments(f, assignments)?;
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::Delete { var, predicate } => {
                write!(f, "DELETE {var}")?;
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::parse;

    fn roundtrip(src: &str) {
        let ast = parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let printed = ast.to_string();
        let reparsed =
            parse(&printed).unwrap_or_else(|e| panic!("printed {printed:?} failed: {e}"));
        assert_eq!(
            ast, reparsed,
            "roundtrip changed the AST for {src:?} -> {printed:?}"
        );
    }

    #[test]
    fn statements_roundtrip() {
        for src in [
            "CREATE nodes (id = int, cost = float, status = string) KEY id",
            "CREATE t (a = int)",
            "DROP nodes",
            "RANGE OF n IS nodes",
            "APPEND TO nodes (id = 1, cost = 2.5, status = \"open\")",
            "RETRIEVE (n.id, n.cost) WHERE n.status = \"open\" AND n.cost < 10.0",
            "RETRIEVE UNIQUE (n.status) SORT BY n.status DESC",
            "RETRIEVE (MIN(n.cost), MAX(n.cost), SUM(n.cost), COUNT(n.id))",
            "RETRIEVE (n.all)",
            "RETRIEVE INTO w (id = n.id, c = n.cost * 2.0) WHERE NOT (n.id = 3)",
            "REPLACE n (cost = n.cost + 1.0) WHERE n.id >= 2 OR n.id != 0",
            "DELETE n WHERE ABS(n.cost - 2.0) <= 0.5",
            "DELETE n",
            "EXPLAIN RETRIEVE (n.id) WHERE n.cost / 2.0 > 1.0",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn printed_form_is_stable() {
        // print(parse(print(parse(s)))) == print(parse(s)): pretty output
        // is a fixed point.
        let src = "RETRIEVE (n.id) WHERE n.a = 1 OR n.b = 2 AND n.c = 3";
        let once = parse(src).unwrap().to_string();
        let twice = parse(&once).unwrap().to_string();
        assert_eq!(once, twice);
    }

    #[test]
    fn parenthesisation_preserves_precedence() {
        // The printed form of a right-leaning OR/AND tree reparses to the
        // same tree even though the parser is left-associative.
        let src = "DELETE f WHERE f.a = 1 OR f.b = 2 AND f.c = 3";
        roundtrip(src);
    }

    #[test]
    fn float_literals_stay_floats() {
        let ast = parse("APPEND TO t (x = 3.0)").unwrap();
        let printed = ast.to_string();
        assert!(printed.contains("3.0"), "{printed}");
        roundtrip("APPEND TO t (x = 3.0)");
    }

    #[test]
    fn negative_numbers_roundtrip() {
        roundtrip("RETRIEVE (MIN(-n.cost))");
        roundtrip("REPLACE n (cost = 0.0 - 1.5) WHERE n.id = 1");
    }
}
