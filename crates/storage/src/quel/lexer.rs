//! Tokeniser for the QUEL subset.

use super::QuelError;

/// Lexical tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (lower-cased; keywords are matched by the
    /// parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

/// Tokenises a statement. Identifiers and keywords are case-insensitive
/// (lower-cased); string literals keep their case.
pub fn lex(input: &str) -> Result<Vec<Token>, QuelError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(QuelError::Lex(i, "expected '=' after '!'".into()));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(QuelError::Lex(i, "unterminated string literal".into()));
                }
                tokens.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() {
                    match bytes[j] as char {
                        '0'..='9' => j += 1,
                        '.' if !is_float && matches!(bytes.get(j + 1), Some(b'0'..=b'9')) => {
                            is_float = true;
                            j += 1;
                        }
                        _ => break,
                    }
                }
                // Optional exponent: e / E, optional sign, digits.
                if matches!(bytes.get(j), Some(b'e' | b'E')) {
                    let mut k = j + 1;
                    if matches!(bytes.get(k), Some(b'+' | b'-')) {
                        k += 1;
                    }
                    if matches!(bytes.get(k), Some(b'0'..=b'9')) {
                        while matches!(bytes.get(k), Some(b'0'..=b'9')) {
                            k += 1;
                        }
                        is_float = true;
                        j = k;
                    }
                }
                let text = &input[start..j];
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|e| QuelError::Lex(start, e.to_string()))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|e| QuelError::Lex(start, e.to_string()))?;
                    tokens.push(Token::Int(v));
                }
                i = j;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && matches!(bytes[j] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    j += 1;
                }
                tokens.push(Token::Ident(input[start..j].to_ascii_lowercase()));
                i = j;
            }
            other => {
                return Err(QuelError::Lex(i, format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_retrieve() {
        let toks = lex("RETRIEVE (n.id, n.cost) WHERE n.status = \"open\"").unwrap();
        assert_eq!(toks[0], Token::Ident("retrieve".into()));
        assert!(toks.contains(&Token::Str("open".into())));
        assert!(toks.contains(&Token::Dot));
        assert!(toks.contains(&Token::Eq));
    }

    #[test]
    fn numbers_and_operators() {
        let toks = lex("1 + 2.5 <= 10 != 3 >= 4 < 5 > 6").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(1),
                Token::Plus,
                Token::Float(2.5),
                Token::Le,
                Token::Int(10),
                Token::Ne,
                Token::Int(3),
                Token::Ge,
                Token::Int(4),
                Token::Lt,
                Token::Int(5),
                Token::Gt,
                Token::Int(6),
            ]
        );
    }

    #[test]
    fn identifiers_are_lowercased_strings_are_not() {
        let toks = lex("Replace N (Status = \"Closed\")").unwrap();
        assert_eq!(toks[0], Token::Ident("replace".into()));
        assert_eq!(toks[1], Token::Ident("n".into()));
        assert!(toks.contains(&Token::Str("Closed".into())));
    }

    #[test]
    fn unterminated_string_fails() {
        assert!(matches!(lex("x = \"oops"), Err(QuelError::Lex(_, _))));
    }

    #[test]
    fn bang_without_eq_fails() {
        assert!(matches!(lex("a ! b"), Err(QuelError::Lex(_, _))));
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(lex("1e18").unwrap(), vec![Token::Float(1e18)]);
        assert_eq!(lex("2.5E-3").unwrap(), vec![Token::Float(2.5e-3)]);
        assert_eq!(lex("3e+2").unwrap(), vec![Token::Float(300.0)]);
        // A bare 'e' suffix stays an identifier boundary, not an exponent.
        assert_eq!(
            lex("7 east").unwrap(),
            vec![Token::Int(7), Token::Ident("east".into())]
        );
    }

    #[test]
    fn dot_in_range_expression_vs_float() {
        // `n.5` must lex as Ident Dot Int, while `0.5` is a float.
        let toks = lex("n.cost 0.5").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("n".into()),
                Token::Dot,
                Token::Ident("cost".into()),
                Token::Float(0.5)
            ]
        );
    }

    #[test]
    fn unexpected_character_reports_position() {
        match lex("a ; b") {
            Err(QuelError::Lex(pos, _)) => assert_eq!(pos, 2),
            other => panic!("expected lex error, got {other:?}"),
        }
    }
}
