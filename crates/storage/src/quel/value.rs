//! Typed values and their fixed-width on-page encoding.

use super::QuelError;
use std::fmt;

/// The column types of the QUEL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    /// 64-bit signed integer (`int`).
    Int,
    /// 64-bit float (`float`).
    Float,
    /// Short string, at most [`STRING_CAPACITY`] bytes (`string`) —
    /// INGRES-era fixed-width character columns.
    Str,
}

/// Maximum encoded length of a string value.
pub const STRING_CAPACITY: usize = 15;

impl ValueType {
    /// Encoded width in bytes.
    pub fn width(self) -> usize {
        match self {
            ValueType::Int | ValueType::Float => 8,
            ValueType::Str => STRING_CAPACITY + 1, // length prefix
        }
    }

    /// The keyword used in `CREATE` statements.
    pub fn keyword(self) -> &'static str {
        match self {
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "string",
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Short string.
    Str(String),
}

impl Value {
    /// The value's type.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
        }
    }

    /// Numeric view: ints widen to floats (QUEL's arithmetic coercion).
    pub fn as_f64(&self) -> Result<f64, QuelError> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Str(s) => Err(QuelError::Type(format!("'{s}' is not numeric"))),
        }
    }

    /// Coerces into a column of type `ty` (int → float allowed).
    pub fn coerce(self, ty: ValueType) -> Result<Value, QuelError> {
        match (self, ty) {
            (v @ Value::Int(_), ValueType::Int) => Ok(v),
            (v @ Value::Float(_), ValueType::Float) => Ok(v),
            (Value::Int(i), ValueType::Float) => Ok(Value::Float(i as f64)),
            (Value::Float(f), ValueType::Int) if f.fract() == 0.0 => Ok(Value::Int(f as i64)),
            (Value::Str(s), ValueType::Str) => {
                if s.len() > STRING_CAPACITY {
                    Err(QuelError::Type(format!(
                        "string '{s}' exceeds {STRING_CAPACITY} bytes"
                    )))
                } else {
                    Ok(Value::Str(s))
                }
            }
            (v, ty) => Err(QuelError::Type(format!(
                "cannot store {:?} into a {} column",
                v,
                ty.keyword()
            ))),
        }
    }

    /// Encodes into exactly `ty.width()` bytes.
    pub fn encode(&self, buf: &mut [u8]) {
        match self {
            Value::Int(i) => buf[..8].copy_from_slice(&i.to_le_bytes()),
            Value::Float(f) => buf[..8].copy_from_slice(&f.to_le_bytes()),
            Value::Str(s) => {
                let bytes = s.as_bytes();
                buf[0] = bytes.len() as u8;
                buf[1..1 + bytes.len()].copy_from_slice(bytes);
                buf[1 + bytes.len()..].fill(0);
            }
        }
    }

    /// Decodes a value of type `ty` from `buf`.
    pub fn decode(ty: ValueType, buf: &[u8]) -> Value {
        match ty {
            ValueType::Int => Value::Int(i64::from_le_bytes(buf[..8].try_into().expect("8 bytes"))),
            ValueType::Float => {
                Value::Float(f64::from_le_bytes(buf[..8].try_into().expect("8 bytes")))
            }
            ValueType::Str => {
                let len = (buf[0] as usize).min(STRING_CAPACITY);
                Value::Str(String::from_utf8_lossy(&buf[1..1 + len]).into_owned())
            }
        }
    }

    /// QUEL comparison: numeric across int/float, lexicographic for
    /// strings; mixed string/number comparisons are type errors.
    pub fn compare(&self, other: &Value) -> Result<std::cmp::Ordering, QuelError> {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
            (Value::Str(_), _) | (_, Value::Str(_)) => {
                Err(QuelError::Type("cannot compare string with number".into()))
            }
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
                    .ok_or_else(|| QuelError::Type("NaN comparison".into()))
                    .map(|o| {
                        if o == Ordering::Equal {
                            Ordering::Equal
                        } else {
                            o
                        }
                    })
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(ValueType::Int.width(), 8);
        assert_eq!(ValueType::Float.width(), 8);
        assert_eq!(ValueType::Str.width(), 16);
    }

    #[test]
    fn int_roundtrip() {
        let mut buf = [0u8; 8];
        Value::Int(-42).encode(&mut buf);
        assert_eq!(Value::decode(ValueType::Int, &buf), Value::Int(-42));
    }

    #[test]
    fn float_roundtrip() {
        let mut buf = [0u8; 8];
        Value::Float(1.5e-3).encode(&mut buf);
        assert_eq!(Value::decode(ValueType::Float, &buf), Value::Float(1.5e-3));
    }

    #[test]
    fn string_roundtrip() {
        let mut buf = [0u8; 16];
        Value::Str("open".into()).encode(&mut buf);
        assert_eq!(
            Value::decode(ValueType::Str, &buf),
            Value::Str("open".into())
        );
    }

    #[test]
    fn long_string_rejected_by_coercion() {
        let long = "x".repeat(16);
        assert!(Value::Str(long).coerce(ValueType::Str).is_err());
    }

    #[test]
    fn int_widens_to_float() {
        assert_eq!(
            Value::Int(3).coerce(ValueType::Float).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn fractional_float_does_not_narrow() {
        assert!(Value::Float(3.5).coerce(ValueType::Int).is_err());
        assert_eq!(
            Value::Float(3.0).coerce(ValueType::Int).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn comparisons() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(2).compare(&Value::Float(2.5)).unwrap(), Less);
        assert_eq!(
            Value::Str("a".into())
                .compare(&Value::Str("b".into()))
                .unwrap(),
            Less
        );
        assert!(Value::Str("a".into()).compare(&Value::Int(1)).is_err());
    }

    #[test]
    fn string_cannot_be_numeric() {
        assert!(Value::Str("open".into()).as_f64().is_err());
    }
}
