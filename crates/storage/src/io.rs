//! I/O metering and the Table 4A unit-cost parameters.
//!
//! Every storage operation charges its block touches to an [`IoStats`]
//! borrowed from the caller. [`CostParams`] converts the counters into the
//! paper's abstract cost units (`t_read = 0.035`, `t_write = 0.05`,
//! `t_update = 0.085`, …), which is the "execution time" reported by the
//! experiments (Figures 5–12) and estimated by Table 4B.

use std::ops::{Add, AddAssign};

/// The parameter values of Table 4A.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// `t_read` — time to read one block from disk (0.035 units).
    pub t_read: f64,
    /// `t_write` — time to write one block to disk (0.05 units).
    pub t_write: f64,
    /// `t_update` — time to update one tuple, `t_read + t_write`
    /// (0.085 units).
    pub t_update: f64,
    /// `I` — I/O cost of creating a temporary relation (0.5 units).
    pub t_create: f64,
    /// `D_t` — cost of deleting all tuples in a relation (0.5 units).
    pub t_delete: f64,
    /// `I_l` — number of ISAM index levels (3).
    pub isam_levels: u64,
}

impl Default for CostParams {
    /// The exact Table 4A values.
    fn default() -> Self {
        CostParams {
            t_read: 0.035,
            t_write: 0.05,
            t_update: 0.085,
            t_create: 0.5,
            t_delete: 0.5,
            isam_levels: 3,
        }
    }
}

impl CostParams {
    /// The canonical Table 4A parameter set.
    pub const fn table_4a() -> Self {
        CostParams {
            t_read: 0.035,
            t_write: 0.05,
            t_update: 0.085,
            t_create: 0.5,
            t_delete: 0.5,
            isam_levels: 3,
        }
    }
}

/// Counters of physical storage work.
///
/// *Block reads/writes* are whole-page transfers; a *tuple update* is the
/// in-place read-modify-write of one tuple's block (`t_update = t_read +
/// t_write`, Table 4A). Relation creation/deletion are the `I` and `D_t`
/// fixed costs. Index-maintenance work (splitting/adjusting the index on
/// APPEND/DELETE, Section 5.3.1) is charged as tuple updates by the index
/// code and also tracked separately in `index_adjustments` for ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Whole blocks read.
    pub block_reads: u64,
    /// Whole blocks written.
    pub block_writes: u64,
    /// In-place tuple updates (read + write of the tuple's block).
    pub tuple_updates: u64,
    /// Temporary relations created (`I` each).
    pub relations_created: u64,
    /// Relations dropped / cleared (`D_t` each).
    pub relations_deleted: u64,
    /// Subset of `tuple_updates` spent maintaining indexes.
    pub index_adjustments: u64,
}

impl IoStats {
    /// A zeroed meter.
    pub fn new() -> Self {
        IoStats::default()
    }

    /// Charges `n` block reads.
    #[inline]
    pub fn read_blocks(&mut self, n: u64) {
        self.block_reads += n;
    }

    /// Charges `n` block writes.
    #[inline]
    pub fn write_blocks(&mut self, n: u64) {
        self.block_writes += n;
    }

    /// Charges `n` tuple updates.
    #[inline]
    pub fn update_tuples(&mut self, n: u64) {
        self.tuple_updates += n;
    }

    /// Charges `n` index-maintenance tuple updates.
    #[inline]
    pub fn adjust_index(&mut self, n: u64) {
        self.tuple_updates += n;
        self.index_adjustments += n;
    }

    /// Charges one relation creation.
    #[inline]
    pub fn create_relation(&mut self) {
        self.relations_created += 1;
    }

    /// Charges one relation deletion.
    #[inline]
    pub fn delete_relation(&mut self) {
        self.relations_deleted += 1;
    }

    /// Converts the counters to cost units under `params` — the paper's
    /// "execution time".
    pub fn cost(&self, params: &CostParams) -> f64 {
        self.block_reads as f64 * params.t_read
            + self.block_writes as f64 * params.t_write
            + self.tuple_updates as f64 * params.t_update
            + self.relations_created as f64 * params.t_create
            + self.relations_deleted as f64 * params.t_delete
    }

    /// The difference `self - earlier`, for metering a span of operations.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is not a prefix of `self`.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        debug_assert!(self.block_reads >= earlier.block_reads);
        debug_assert!(self.block_writes >= earlier.block_writes);
        debug_assert!(self.tuple_updates >= earlier.tuple_updates);
        debug_assert!(self.relations_created >= earlier.relations_created);
        debug_assert!(self.relations_deleted >= earlier.relations_deleted);
        debug_assert!(self.index_adjustments >= earlier.index_adjustments);
        IoStats {
            block_reads: self.block_reads - earlier.block_reads,
            block_writes: self.block_writes - earlier.block_writes,
            tuple_updates: self.tuple_updates - earlier.tuple_updates,
            relations_created: self.relations_created - earlier.relations_created,
            relations_deleted: self.relations_deleted - earlier.relations_deleted,
            index_adjustments: self.index_adjustments - earlier.index_adjustments,
        }
    }
}

impl std::fmt::Display for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} reads, {} writes, {} updates ({} index), {} created, {} dropped",
            self.block_reads,
            self.block_writes,
            self.tuple_updates,
            self.index_adjustments,
            self.relations_created,
            self.relations_deleted
        )
    }
}

impl Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            block_reads: self.block_reads + rhs.block_reads,
            block_writes: self.block_writes + rhs.block_writes,
            tuple_updates: self.tuple_updates + rhs.tuple_updates,
            relations_created: self.relations_created + rhs.relations_created,
            relations_deleted: self.relations_deleted + rhs.relations_deleted,
            index_adjustments: self.index_adjustments + rhs.index_adjustments,
        }
    }
}

impl AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_4a_defaults() {
        let p = CostParams::default();
        assert_eq!(p.t_read, 0.035);
        assert_eq!(p.t_write, 0.05);
        assert_eq!(p.t_update, 0.085);
        assert_eq!(p.isam_levels, 3);
        // t_update = t_read + t_write (Table 4A definition).
        assert!((p.t_update - (p.t_read + p.t_write)).abs() < 1e-12);
    }

    #[test]
    fn cost_is_linear_in_counters() {
        let mut io = IoStats::new();
        io.read_blocks(10);
        io.write_blocks(4);
        io.update_tuples(2);
        io.create_relation();
        let p = CostParams::default();
        let expect = 10.0 * 0.035 + 4.0 * 0.05 + 2.0 * 0.085 + 0.5;
        assert!((io.cost(&p) - expect).abs() < 1e-12);
    }

    #[test]
    fn since_subtracts() {
        let mut io = IoStats::new();
        io.read_blocks(5);
        let mark = io;
        io.read_blocks(3);
        io.update_tuples(1);
        let d = io.since(&mark);
        assert_eq!(d.block_reads, 3);
        assert_eq!(d.tuple_updates, 1);
    }

    #[test]
    fn add_accumulates() {
        let mut a = IoStats::new();
        a.read_blocks(1);
        let mut b = IoStats::new();
        b.write_blocks(2);
        let c = a + b;
        assert_eq!(c.block_reads, 1);
        assert_eq!(c.block_writes, 2);
    }

    #[test]
    fn display_summarises_counters() {
        let mut io = IoStats::new();
        io.read_blocks(3);
        io.write_blocks(1);
        io.adjust_index(2);
        let text = io.to_string();
        assert!(text.contains("3 reads"));
        assert!(text.contains("1 writes"));
        assert!(text.contains("2 updates (2 index)"));
    }

    #[test]
    fn index_adjustments_count_as_updates() {
        let mut io = IoStats::new();
        io.adjust_index(3);
        assert_eq!(io.tuple_updates, 3);
        assert_eq!(io.index_adjustments, 3);
    }
}
