//! Fixed-size disk blocks.

/// Disk block size in bytes — `B = 4096` in Table 4A.
pub const BLOCK_SIZE: usize = 4096;

/// A 4096-byte page. Tuples are stored at fixed-width slots; the slot
/// layout is owned by [`crate::heapfile::HeapFile`].
#[derive(Clone)]
pub struct Block {
    data: Box<[u8; BLOCK_SIZE]>,
}

impl Block {
    /// A zeroed block.
    pub fn new() -> Self {
        Block {
            data: Box::new([0u8; BLOCK_SIZE]),
        }
    }

    /// Immutable view of a byte range.
    ///
    /// # Panics
    /// Panics if the range exceeds the block.
    #[inline]
    pub fn bytes(&self, offset: usize, len: usize) -> &[u8] {
        &self.data[offset..offset + len]
    }

    /// Mutable view of a byte range.
    ///
    /// # Panics
    /// Panics if the range exceeds the block.
    #[inline]
    pub fn bytes_mut(&mut self, offset: usize, len: usize) -> &mut [u8] {
        &mut self.data[offset..offset + len]
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

impl std::fmt::Debug for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Block[{BLOCK_SIZE}B]")
    }
}

/// Number of blocks needed for `tuples` tuples at `per_block` tuples per
/// block — the `B_x = |X| / Bf_x` (rounded up) of the cost model.
#[inline]
pub fn blocks_for(tuples: usize, per_block: usize) -> usize {
    tuples.div_ceil(per_block)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_block_is_zeroed() {
        let b = Block::new();
        assert!(b.bytes(0, BLOCK_SIZE).iter().all(|&x| x == 0));
    }

    #[test]
    fn write_then_read() {
        let mut b = Block::new();
        b.bytes_mut(100, 4).copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(b.bytes(100, 4), &[1, 2, 3, 4]);
        assert_eq!(b.bytes(99, 1), &[0]);
    }

    #[test]
    fn blocks_for_rounds_up() {
        assert_eq!(blocks_for(0, 256), 0);
        assert_eq!(blocks_for(1, 256), 1);
        assert_eq!(blocks_for(256, 256), 1);
        assert_eq!(blocks_for(257, 256), 2);
        // Table 4A: |R| = 900 nodes at 256/block -> 4 blocks.
        assert_eq!(blocks_for(900, 256), 4);
        // |S| = 3480 edges at 128/block -> 28 blocks.
        assert_eq!(blocks_for(3480, 128), 28);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let b = Block::new();
        let _ = b.bytes(BLOCK_SIZE - 1, 2);
    }
}
