//! Storage-layer errors.

use std::fmt;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StorageError {
    /// A keyed lookup missed (node id not present in the relation).
    KeyNotFound(u32),
    /// A slot index was outside the heap file.
    SlotOutOfRange {
        /// The requested slot.
        slot: usize,
        /// The number of slots in the file.
        len: usize,
    },
    /// A supplied value was invalid for the operation (e.g. a negative
    /// edge cost).
    InvalidValue(&'static str),
    /// A graph was too large for the fixed-width tuple encodings.
    CapacityExceeded {
        /// What overflowed (e.g. "node id").
        what: &'static str,
        /// The offending value.
        value: usize,
        /// The encoding's maximum.
        max: usize,
    },
    /// A physical block operation failed transiently (injected by a
    /// [`FaultPlan`](crate::FaultPlan); retrying the query may succeed).
    IoFailed {
        /// `"read"` or `"write"`.
        op: &'static str,
        /// The block the operation addressed.
        block: usize,
        /// 1-based index of the operation within its counter stream.
        op_index: u64,
    },
    /// A block's checksum did not match its recorded content — a torn
    /// write was detected. Persistent until the block is rewritten.
    CorruptBlock {
        /// The corrupt block.
        block: usize,
    },
}

impl StorageError {
    /// Whether retrying the failed operation (or the whole query) can
    /// plausibly succeed. Transient I/O failures are retryable; detected
    /// corruption and logical errors are not.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::IoFailed { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::KeyNotFound(k) => write!(f, "key {k} not found"),
            StorageError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
            StorageError::SlotOutOfRange { slot, len } => {
                write!(f, "slot {slot} out of range (len {len})")
            }
            StorageError::CapacityExceeded { what, value, max } => {
                write!(f, "{what} {value} exceeds encoding maximum {max}")
            }
            StorageError::IoFailed {
                op,
                block,
                op_index,
            } => {
                write!(f, "block {op} of block {block} failed (op #{op_index})")
            }
            StorageError::CorruptBlock { block } => {
                write!(f, "block {block} is corrupt (checksum mismatch)")
            }
        }
    }
}

impl std::error::Error for StorageError {}
