//! Storage-layer errors.

use std::fmt;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A keyed lookup missed (node id not present in the relation).
    KeyNotFound(u32),
    /// A slot index was outside the heap file.
    SlotOutOfRange {
        /// The requested slot.
        slot: usize,
        /// The number of slots in the file.
        len: usize,
    },
    /// A supplied value was invalid for the operation (e.g. a negative
    /// edge cost).
    InvalidValue(&'static str),
    /// A graph was too large for the fixed-width tuple encodings.
    CapacityExceeded {
        /// What overflowed (e.g. "node id").
        what: &'static str,
        /// The offending value.
        value: usize,
        /// The encoding's maximum.
        max: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::KeyNotFound(k) => write!(f, "key {k} not found"),
            StorageError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
            StorageError::SlotOutOfRange { slot, len } => {
                write!(f, "slot {slot} out of range (len {len})")
            }
            StorageError::CapacityExceeded { what, value, max } => {
                write!(f, "{what} {value} exceeds encoding maximum {max}")
            }
        }
    }
}

impl std::error::Error for StorageError {}
